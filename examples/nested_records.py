"""Linearization and mapping on the paper's Figure 6/7/8 data structure.

Builds the exact nested structure of Figure 6::

    record A { a1: [1..m] real; a2: int; }
    record B { b1: [1..n] A;    b2: int; }
    data: [1..t] B;

linearizes it (Algorithms 1 and 2), prints the Figure 6 metadata the
compiler collects (levels, unitSize[], unitOffset[][], position[][]), and
demonstrates the Figure 8 equivalence: the triple loop over the nested view
and the computeIndex-mapped loop over the dense buffer produce the same sum.

Run:  python examples/nested_records.py
"""

from repro.chapel.domains import Domain
from repro.chapel.types import INT, REAL, ArrayType, record
from repro.chapel.values import default_value
from repro.compiler import (
    collect_mapping_info,
    compute_index_chapel,
    contiguous_run,
    linearize_it,
)

T, N, M = 3, 4, 5  # t outer records, n inner records, m reals each


def main() -> None:
    # -- the Figure 6 types ---------------------------------------------------
    A = record("A", a1=ArrayType(Domain(M), REAL), a2=INT)
    B = record("B", b1=ArrayType(Domain(N), A), b2=INT)
    data_t = ArrayType(Domain(T), B)

    # -- fill the nested value through ordinary Chapel-style access ------------
    data = default_value(data_t)
    value = 0.0
    for i in range(1, T + 1):
        for j in range(1, N + 1):
            for k in range(1, M + 1):
                data[i].b1[j].a1[k] = value
                value += 1.0

    # -- Algorithm 1 + 2: linearize -------------------------------------------
    buf = linearize_it(data, data_t)
    print(f"linearized {buf.nbytes} bytes "
          f"(= t*sizeof(B) = {T} * {B.sizeof})")

    # -- the Figure 6 right-hand side: collected mapping information -----------
    info = collect_mapping_info(data_t, "[i].b1[j].a1[k]")
    print(f"\nlevels   = {info.levels}")
    print(f"unitSize = {list(info.unit_size)}"
          f"   # {{sizeof(B), sizeof(A), sizeof(real)}}")
    print(f"unitOffset tables = {[list(t[0]) if t else [] for t in info.unit_offset]}")
    print(f"position = {[list(p) for p in info.position]}"
          "   # b1 and a1 are both first members")

    # -- Figure 8: the two loops compute the same sum ---------------------------
    sum_nested = 0.0
    for i in range(1, T + 1):
        for j in range(1, N + 1):
            for k in range(1, M + 1):
                sum_nested += data[i].b1[j].a1[k]

    sum_linear = 0.0
    for i in range(1, T + 1):
        for j in range(1, N + 1):
            for k in range(1, M + 1):
                index = compute_index_chapel(info, (i, j, k))
                sum_linear += buf.read_scalar(index, REAL)

    print(f"\nnested-view sum  = {sum_nested}")
    print(f"linearized sum   = {sum_linear}")
    assert sum_nested == sum_linear

    # -- the opt-1 observation: the innermost level is contiguous ---------------
    base, count = contiguous_run(info, (0, 0))
    row = buf.typed_view(base, info.inner_dtype, count)
    print(f"\nfirst innermost run (opt-1 hoisted row): {row.tolist()}")


if __name__ == "__main__":
    main()
