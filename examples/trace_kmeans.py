"""Traced k-means — end-to-end observability walkthrough.

Runs the opt-2 compiled k-means under the ``threads`` executor with the
tracer enabled, writes a Chrome ``trace_event`` JSON (open it in Perfetto
or chrome://tracing), and prints the same per-phase / per-thread summary
that ``python -m repro.trace report <file>`` produces from the file.

Run:  PYTHONPATH=src python examples/trace_kmeans.py [out.json]

The trace contains compiler-phase spans (parse/lower/plan/codegen),
linearization spans, one ``engine.run`` span per k-means iteration, one
``split`` span per (split, attempt) with worker-thread attribution, and
local-combination spans — everything docs/OBSERVABILITY.md describes.
"""

import sys

from repro.apps import KmeansRunner
from repro.compiler.cache import clear_kernel_cache
from repro.data import initial_centroids, kmeans_points
from repro.obs import (
    format_report,
    summarize_trace,
    to_chrome_trace,
    tracing,
    write_chrome_trace,
)

N_POINTS, DIM, K, ITERATIONS = 4_000, 4, 8, 3


def main(out_path: str = "kmeans_trace.json") -> int:
    # start cold so the trace shows the full compile pipeline, not a cache hit
    clear_kernel_cache()
    points = kmeans_points(N_POINTS, DIM, num_blobs=K, seed=7)
    cents0 = initial_centroids(points, K, seed=8)

    with tracing() as tracer:
        runner = KmeansRunner(
            K,
            DIM,
            version="opt-2",
            num_threads=4,
            executor="threads",
            chunk_size=N_POINTS // 16,
        )
        result = runner.run(points, cents0, ITERATIONS)

    write_chrome_trace(
        out_path,
        tracer,
        metadata={
            "app": "kmeans",
            "version": "opt-2",
            "n_points": N_POINTS,
            "k": K,
            "iterations": ITERATIONS,
        },
    )
    print(f"converged in {ITERATIONS} iterations; inertia={result.inertia:.3f}")
    print(f"wrote {out_path} ({len(tracer.records())} records)\n")

    chrome = to_chrome_trace(tracer)
    print(format_report(summarize_trace(chrome["traceEvents"])))
    print(f"\nopen {out_path} in https://ui.perfetto.dev or run:")
    print(f"  python -m repro.trace report {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
