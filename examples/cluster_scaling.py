"""Cluster execution and the global combination phase (paper §III-A).

FREERIDE is a cluster middleware: after each node combines its threads'
reduction-object copies locally, "the results produced by all nodes in a
cluster are combined again to form the final result" — all-to-one for
small objects, parallel merge for large ones.

This example (1) runs a reduction *functionally* across simulated nodes on
the real engine and checks the result, and (2) uses the machine model to
show how the two global-combination strategies scale with node count for a
small (k-means) and a large (PCA covariance) reduction object.

Run:  python examples/cluster_scaling.py
"""

import numpy as np

from repro.compiler import compile_reduction
from repro.freeride import FreerideEngine
from repro.machine import ClusterCombinePhase, NetworkModel

SUM_SOURCE = """
class sumReduction : ReduceScanOp {
  def accumulate(x: real) { roAdd(0, 0, x); }
}
"""


def functional_cluster_run() -> None:
    data = np.arange(1_000_000, dtype=np.float64)
    comp = compile_reduction(SUM_SOURCE, {}, opt_level=2)
    bound = comp.bind(data)
    spec, idx = bound.make_spec([(1, "add")])
    for nodes in (1, 2, 4):
        engine = FreerideEngine(num_threads=2, num_nodes=nodes)
        result = engine.run(spec, idx)
        g = result.stats.global_combination
        print(f"nodes={nodes}: sum={result.ro.get(0, 0):.0f}  "
              f"global merges={g.merges if g else 0}")
        assert result.ro.get(0, 0) == data.sum()


def combination_strategy_model() -> None:
    print("\nglobal combination on the modeled cluster "
          "(1 Gb/s network, 2.33 GHz nodes):")
    print(f"{'nodes':>6} {'RO':>20} {'all-to-one':>12} {'tree merge':>12}")
    for elements, label in ((500, "k-means (4 KB)"), (1_000_000, "PCA cov (8 MB)")):
        for nodes in (2, 4, 8, 16, 32):
            times = {}
            for strategy in ("all_to_one", "parallel_merge"):
                phase = ClusterCombinePhase(
                    "g",
                    num_nodes=nodes,
                    ro_elements=elements,
                    ro_bytes=elements * 8,
                    cycles_per_element=2.0,
                    strategy=strategy,
                    network=NetworkModel(),
                )
                times[strategy] = phase.critical_path_seconds(2.33e9)
            print(f"{nodes:>6} {label:>20} "
                  f"{times['all_to_one'] * 1e3:>10.2f}ms "
                  f"{times['parallel_merge'] * 1e3:>10.2f}ms")


if __name__ == "__main__":
    functional_cluster_run()
    combination_strategy_model()
