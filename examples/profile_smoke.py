"""Profile store smoke — record, re-run profile-guided, detect regressions.

Runs k-means and histogram twice against a profile store:

1. **Cold runs** populate the store (the histogram's data-dependent bin
   index is statically colorable only into serial waves, so the engine
   falls back to replication and *observes* per-split footprints).
2. A snapshot of the cold store is taken for later comparison.
3. **Warm runs** repeat the same programs.  The histogram re-run must now
   color from the persisted footprints (``coloring source="profile"``)
   into genuinely parallel lock-free waves, bit-identical results.
4. ``python -m repro.profile diff`` compares the cold snapshot against
   the full store (expected: no regression), then against a doctored
   snapshot with a 100x injected slowdown (expected: exit 1).

Run:  PYTHONPATH=src python examples/profile_smoke.py [store-dir]

Exit status is non-zero if any of the above expectations fail.
"""

import json
import shutil
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.apps.histogram import HistogramRunner
from repro.apps.kmeans import KmeansRunner
from repro.data import initial_centroids, kmeans_points
from repro.profile import DIFF_OK, DIFF_REGRESSION
from repro.profile import main as profile_cli

BINS, N_HIST = 64, 65_536
N_POINTS, DIM, K = 4_000, 4, 8


def _hist_data() -> np.ndarray:
    # sorted integer-valued doubles: contiguous splits touch disjoint bin
    # ranges, so observed footprints color into wide waves on the re-run
    return np.sort(((np.arange(N_HIST) * 7919) % 256).astype(np.float64))


def _run_suite(store: Path) -> HistogramRunner:
    points = kmeans_points(N_POINTS, DIM, num_blobs=K, seed=7)
    cents0 = initial_centroids(points, K, seed=8)
    km = KmeansRunner(
        K, DIM, version="opt-2", num_threads=4, executor="threads",
        profile_store=store,
    )
    km.run(points, cents0, iterations=2)

    hist = HistogramRunner(
        bins=BINS, lo=0.0, hi=256.0, version="opt-2", num_threads=4,
        executor="threads", technique="auto", profile_store=store,
    )
    hist.run(_hist_data())
    return hist


def _inject_slowdown(src: Path, dst: Path, factor: float = 100.0) -> None:
    """Copy a store, multiplying every recorded wall time by ``factor``."""
    dst.mkdir(parents=True, exist_ok=True)
    for seg in sorted(src.glob("segment-*.jsonl")):
        out_lines = []
        for line in seg.read_text().splitlines():
            rec = json.loads(line)
            rec["wall_seconds"] = rec.get("wall_seconds", 0.0) * factor
            out_lines.append(json.dumps(rec))
        (dst / seg.name).write_text("\n".join(out_lines) + "\n")


def main(store_dir: str | None = None) -> int:
    root = Path(store_dir) if store_dir else Path(tempfile.mkdtemp()) / "store"
    if root.exists():
        shutil.rmtree(root)

    print(f"== cold runs (store: {root}) ==")
    cold_hist = _run_suite(root)
    cold_stats = cold_hist.last_run_stats
    print(
        f"histogram cold: technique={cold_stats.technique_effective.value} "
        f"decision source={cold_stats.technique_decision['source']}"
    )
    snapshot = root.parent / (root.name + "-cold")
    if snapshot.exists():
        shutil.rmtree(snapshot)
    shutil.copytree(root, snapshot)

    print("\n== warm runs (profile-guided) ==")
    warm_hist = _run_suite(root)
    stats = warm_hist.last_run_stats
    coloring = stats.coloring or {}
    decision = stats.technique_decision or {}
    print(
        f"histogram warm: technique={stats.technique_effective.value} "
        f"coloring source={coloring.get('source')} "
        f"max wave width={coloring.get('max_wave_width')}"
    )
    if coloring.get("source") != "profile":
        print("FAIL: warm histogram did not color from the profile store",
              file=sys.stderr)
        return 1
    if coloring.get("max_wave_width", 0) < 2:
        print("FAIL: profiled coloring is not genuinely parallel",
              file=sys.stderr)
        return 1
    if decision.get("source") != "profiled":
        print("FAIL: technique decision does not credit the profile store",
              file=sys.stderr)
        return 1

    print("\n== store report ==")
    profile_cli(["report", str(root)])

    print("\n== diff: cold snapshot vs full store (expect: ok) ==")
    code = profile_cli(["diff", str(snapshot), str(root), "--threshold", "10"])
    if code != DIFF_OK:
        print(f"FAIL: unexpected regression verdict (exit {code})",
              file=sys.stderr)
        return 1

    print("\n== diff vs doctored 100x-slower snapshot (expect: regression) ==")
    slow = root.parent / (root.name + "-slow")
    _inject_slowdown(snapshot, slow)
    code = profile_cli(["diff", str(snapshot), str(slow)])
    if code != DIFF_REGRESSION:
        print(f"FAIL: injected slowdown not flagged (exit {code})",
              file=sys.stderr)
        return 1

    print("\nprofile smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else None))
