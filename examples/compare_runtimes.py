"""FREERIDE vs Map-Reduce processing structure — the paper's Figure 4.

Runs the same generalized reduction (a histogram with per-bin counts and
sums) through both runtimes and prints the overheads unique to the
Map-Reduce structure: stored intermediate (key, value) pairs, their bytes,
and the sort/group comparisons — all of which FREERIDE's fused
process+reduce avoids.

Run:  python examples/compare_runtimes.py
"""

import numpy as np

from repro.mapreduce import GeneralizedReduction, compare_structures

N, BINS = 50_000, 32


def main() -> None:
    width = 1.0 / BINS

    def process(x):
        b = min(int(x / width), BINS - 1)
        return b, np.array([1.0, float(x)])  # (count, sum) per bin

    workload = GeneralizedReduction(
        name="histogram", process=process, num_groups=BINS, num_elems=2
    )
    data = np.random.default_rng(42).uniform(0, 1, N)

    for threads in (1, 4):
        cmp = compare_structures(workload, data, num_threads=threads)
        print(f"--- {threads} thread(s), n={N:,} ---")
        print(f"results match                    : {cmp.results_match}")
        print(f"FREERIDE reduction-object updates: {cmp.freeride_ro_updates:,}")
        print(f"FREERIDE intermediate pairs      : {cmp.freeride_intermediate_pairs:,}")
        print(f"Map-Reduce intermediate pairs    : {cmp.mapreduce_pairs:,}")
        print(f"Map-Reduce intermediate bytes    : {cmp.mapreduce_intermediate_bytes:,}")
        print(f"Map-Reduce sort comparisons      : {cmp.mapreduce_sort_comparisons:,}")
        print()

    with_combiner = compare_structures(
        workload, data, num_threads=4, use_combiner=True
    )
    print("with a map-side combiner, Map-Reduce still emits "
          f"{with_combiner.mapreduce_pairs:,} pairs before combining")


if __name__ == "__main__":
    main()
