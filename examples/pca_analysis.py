"""PCA through the FREERIDE reductions — the paper's second application.

Computes the mean vector and covariance matrix (the paper's two reduction
phases) via the compiled opt-2 kernels and the manual FR version, checks
them against numpy, and then actually *uses* the result: projects the data
onto its top principal components.

Run:  python examples/pca_analysis.py
"""

import numpy as np

from repro.apps import PcaRunner, pca_numpy_reference
from repro.data import pca_matrix

ROWS, COLS = 32, 2_000  # rows = dimensionality, cols = data elements


def main() -> None:
    matrix = pca_matrix(ROWS, COLS, rank=5, noise=0.05, seed=21)
    mean_ref, cov_ref = pca_numpy_reference(matrix)

    for version in ("opt-2", "manual"):
        runner = PcaRunner(ROWS, version=version, num_threads=4)
        result = runner.run(matrix)
        assert np.allclose(result.mean, mean_ref)
        assert np.allclose(result.covariance, cov_ref)
        print(f"[{version:>7}] mean vector and covariance match numpy "
              f"(elements processed: {int(result.counters.elements_processed)})")

    # Downstream use: dimensionality reduction with the top components.
    values, _ = result.principal_components(5)
    projected = result.project(matrix, k=5)
    explained = values.sum() / np.trace(result.covariance)
    print(f"\ntop-5 eigenvalues: {np.round(values, 2)}")
    print(f"variance explained by 5 of {ROWS} dims: {explained:.1%}")
    print(f"projected data shape: {projected.shape}  (was {matrix.shape})")


if __name__ == "__main__":
    main()
