"""User-defined reductions and reduce-expressions — the paper's §II.

Two more ways this library runs Chapel reduction forms:

1. The paper's Figure 2 class, verbatim: a ``ReduceScanOp`` subclass with
   ``accumulate``/``combine``/``generate``, parsed from source and executed
   with the two-stage (local accumulate, global combine) semantics of
   Figure 1.
2. The paper's §IV-B example ``min reduce A+B`` — a built-in reduction over
   an iterative expression — compiled onto FREERIDE with the leaves
   linearized, in both scalar (mapped per-element reads) and vectorized
   (typed views over the dense buffers) strategies.

Run:  python examples/userdefined_reductions.py
"""

import numpy as np

from repro.chapel import ArrayRef, reduce_expr, reduce_op_from_source
from repro.compiler import compile_reduce_expr
from repro.freeride import FreerideEngine

# -- 1. Figure 2, executable ---------------------------------------------------

FIGURE2_SUM = """
class SumReduceScanOp : ReduceScanOp {
  var value: real = 0.0;

  /* The local reduction function */
  def accumulate(x: real) {
    value = value + x;
  }

  /* The global reduction function */
  def combine(x: SumReduceScanOp) {
    value = value + x.value;
  }

  /* The function output the final result */
  def generate() {
    return value;
  }
}
"""


def demo_figure2() -> None:
    SumOp = reduce_op_from_source(FIGURE2_SUM)
    data = [float(i) for i in range(1, 101)]
    total = reduce_expr(SumOp, data, num_tasks=4)
    print(f"Figure 2 sum class, 4 tasks: {total:.0f}  (expected 5050)")

    # the stages are observable individually, as in Figure 1:
    left, right = SumOp(), SumOp()
    left.accumulate_many(data[:50])     # local reduction, task 1
    right.accumulate_many(data[50:])    # local reduction, task 2
    left.combine(right)                 # global reduction
    print(f"manual two-stage: {left.generate():.0f}")


# -- 2. min reduce A+B ----------------------------------------------------------


def demo_reduce_expr() -> None:
    rng = np.random.default_rng(13)
    A = rng.uniform(0, 100, 100_000)
    B = rng.uniform(0, 100, 100_000)

    job = compile_reduce_expr("min", ArrayRef(A) + ArrayRef(B))
    value = job.result_value(FreerideEngine(num_threads=4))
    print(f"\nmin reduce A+B (vectorized, 4 threads): {value:.4f}")
    print(f"numpy check:                            {(A + B).min():.4f}")

    scalar = compile_reduce_expr("min", ArrayRef(A) + ArrayRef(B), strategy="scalar")
    print(f"scalar-mapped strategy agrees:          "
          f"{scalar.result_value(FreerideEngine(num_threads=4)):.4f}")
    print(f"bytes linearized for the two leaves:    "
          f"{int(job.counters.bytes_linearized):,}")


if __name__ == "__main__":
    demo_figure2()
    demo_reduce_expr()
