"""Quickstart: compile a Chapel reduction and run it on FREERIDE.

This is the paper's whole pipeline in thirty lines: write a reduction class
in the mini-Chapel subset (the paper's Figure 2 sum), let the translator
generate a FREERIDE kernel at each optimization level, and execute it on
the middleware with several threads.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.compiler import compile_reduction
from repro.freeride import FreerideEngine

# The paper's Figure 2 reduction: sum (plus a count, to show multiple
# reduction-object elements).  roAdd(group, element, value) is the explicit
# reduction-object update of the FREERIDE model.
SUM_SOURCE = """
class sumReduction : ReduceScanOp {
  def accumulate(x: real) {
    roAdd(0, 0, x);      // running sum
    roAdd(0, 1, 1.0);    // element count
  }
}
"""


def main() -> None:
    data = np.arange(100_000, dtype=np.float64)

    for opt_level, name in [(0, "generated"), (1, "opt-1"), (2, "opt-2")]:
        compiled = compile_reduction(SUM_SOURCE, constants={}, opt_level=opt_level)

        # Bind to concrete data: this is where linearization (the paper's
        # Algorithm 2) happens and is charged to the counter ledger.
        bound = compiled.bind(data)

        # One reduction-object group of 2 additive elements: [sum, count].
        spec, index_range = bound.make_spec([(2, "add")])

        engine = FreerideEngine(num_threads=4)
        result = engine.run(spec, index_range)

        total = result.ro.get(0, 0)
        count = result.ro.get(0, 1)
        print(f"[{name:>9}] sum = {total:.0f}  count = {count:.0f}  "
              f"(expected {data.sum():.0f}, {len(data)})")
        assert total == data.sum() and count == len(data)

    # Inspect what the compiler produced (the C-like rendering of Fig. 8):
    print("\n--- generated C-like source (opt-1) ---")
    print(compile_reduction(SUM_SOURCE, {}, opt_level=1).c_source)


if __name__ == "__main__":
    main()
