"""K-means clustering end-to-end — the paper's first application.

Runs the full outer loop (assign points / merge / update centroids) for all
four §V versions — generated, opt-1, opt-2 and the hand-written manual FR —
verifies they produce identical clusterings, and prints the per-version
operation profiles that explain the paper's Figure 9.

Run:  python examples/kmeans_clustering.py
"""

import numpy as np

from repro.apps import KmeansRunner, kmeans_numpy_reference
from repro.data import initial_centroids, kmeans_points
from repro.machine.costmodel import XEON_E5345

N_POINTS, DIM, K, ITERATIONS = 2_000, 4, 8, 5


def main() -> None:
    points = kmeans_points(N_POINTS, DIM, num_blobs=K, seed=7)
    cents0 = initial_centroids(points, K, seed=8)

    expected, _ = kmeans_numpy_reference(points, cents0, ITERATIONS)

    print(f"k-means: n={N_POINTS}, dim={DIM}, k={K}, {ITERATIONS} iterations\n")
    print(f"{'version':>10} {'correct':>8} {'cycles/pt/iter':>15} {'vs manual':>10}")

    measured: dict[str, tuple[bool, float]] = {}
    for version in ("generated", "opt-1", "opt-2", "manual"):
        runner = KmeansRunner(K, DIM, version=version, num_threads=4)
        result = runner.run(points, cents0, ITERATIONS)
        ok = np.allclose(result.centroids, expected)

        # Price the measured operation mix on the modeled Xeon E5345.
        counters = result.counters.copy()
        counters.bytes_linearized = 0  # compute only
        cycles = XEON_E5345.cycles(counters) / (N_POINTS * ITERATIONS)
        measured[version] = (ok, cycles)

    baseline = measured["manual"][1]
    for version, (ok, cycles) in measured.items():
        print(f"{version:>10} {str(ok):>8} {cycles:>15.0f} "
              f"{cycles / baseline:>9.2f}x")

    print("\nfinal inertia:", f"{result.inertia:.2f}")
    print("cluster sizes:", result.counts.astype(int).tolist())


if __name__ == "__main__":
    main()
