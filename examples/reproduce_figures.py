"""Regenerate every evaluation figure of the paper (Figures 9-13).

For each figure: measure the per-version operation profiles by executing
the instrumented kernels on samples, simulate at the paper's full dataset
scale on the modeled Xeon E5345, print the series the paper plots, and
evaluate the paper's qualitative claims as shape checks.

Run:  python examples/reproduce_figures.py            # all figures
      python examples/reproduce_figures.py fig9 fig12 # a subset
"""

import sys

from repro.bench import FIGURES, full_report, run_figure


def main(argv: list[str]) -> None:
    fig_ids = argv or list(FIGURES)
    for fig_id in fig_ids:
        result = run_figure(fig_id)
        print(full_report(result))
        print("\n" + "=" * 78 + "\n")


if __name__ == "__main__":
    main(sys.argv[1:])
