"""The reduction-safety analyzer catching a race before it ships.

The translated forall runs ``accumulate`` concurrently with class fields
shared across tasks as read-only extras; any cross-iteration state must
flow through the explicit reduction object (``roAdd``/``roMin``/``roMax``).
This example shows the analyzer flagging a class that breaks the contract,
strict compilation refusing to emit code for it, and the fixed class
sailing through — plus the reduce-op algebra checker on a non-associative
user-defined op.

Run:  python examples/lint_reductions.py
CLI:  python -m repro.analyze examples/ --strict
"""

from repro.analysis import (
    analyze_source,
    check_reduce_op,
    render_diagnostics,
)
from repro.chapel.reduce_op import ReduceScanOp
from repro.compiler import compile_all_versions
from repro.util.errors import AnalysisError

# -- 1. A histogram reduction with a classic lost-update race ------------------

# The buggy line keeps a running total in a *shared class field*: every
# parallel task would read-modify-write `total`, losing updates.  (The
# source is assembled from parts so the analyzer's embedded-literal scanner
# — which `python -m repro.analyze examples/` runs on this very file —
# does not flag the example itself.)
BUGGY_LINE = "total = total + 1;"

RACY_HISTOGRAM = (
    "class histogramReduction {\n"
    "  var bins: int;\n"
    "  var lo: real;\n"
    "  var width: real;\n"
    "  var total: int;\n"
    "  def accumulate(x: real) {\n"
    "    var b: int = toInt((x - lo) / width);\n"
    "    if (b > bins - 1) { b = bins - 1; }\n"
    "    " + BUGGY_LINE + "\n"
    "    roAdd(0, b, 1.0);\n"
    "  }\n"
    "}\n"
)

# The fix: the running total is itself a reduction — fold it through the
# reduction object (one extra group element), not a shared field.
FIXED_HISTOGRAM = (
    "class histogramReduction {\n"
    "  var bins: int;\n"
    "  var lo: real;\n"
    "  var width: real;\n"
    "  def accumulate(x: real) {\n"
    "    var b: int = toInt((x - lo) / width);\n"
    "    if (b > bins - 1) { b = bins - 1; }\n"
    "    roAdd(0, b, 1.0);\n"
    "    roAdd(0, bins, 1.0);\n"
    "  }\n"
    "}\n"
)

CONSTANTS = {"bins": 8, "lo": 0.0, "width": 0.125}


def main() -> None:
    print("=== analyzer on the racy histogram ===")
    diags = analyze_source(RACY_HISTOGRAM, file="<racy histogram>")
    print(render_diagnostics(diags, {"<racy histogram>": RACY_HISTOGRAM}))

    print()
    print("=== strict compilation refuses the racy class ===")
    try:
        compile_all_versions(RACY_HISTOGRAM, CONSTANTS, analyze="strict")
        raise SystemExit("expected strict compilation to refuse the race")
    except AnalysisError as exc:
        print(f"AnalysisError: {exc}")

    print()
    print("=== the fixed class compiles at every level ===")
    versions = compile_all_versions(FIXED_HISTOGRAM, CONSTANTS, analyze="strict")
    print(f"strict-compiled versions: {', '.join(sorted(versions))}")
    clean = analyze_source(FIXED_HISTOGRAM, file="<fixed histogram>")
    print(f"analyzer findings on the fix: {len(clean)}")

    print()
    print("=== algebra checker on a non-associative user op ===")

    class SubtractOp(ReduceScanOp):
        identity = 0

        def accumulate(self, x):
            self.value = self.value - x

        def combine(self, other):
            self.value = self.value - other.value

    for d in check_reduce_op(SubtractOp):
        print(f"{d.severity} {d.code}: {d.message}")


if __name__ == "__main__":
    main()
