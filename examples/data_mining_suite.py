"""Extension applications: histogram, apriori, EM on the same middleware.

The paper's thesis is that FREERIDE's generalized-reduction structure
covers "a number of data mining algorithms".  Beyond the paper's k-means
and PCA, this example runs three more classic members of that family —
all through the same compile-or-handwrite-then-FREERIDE pipeline:

* histogram      — binned counts/sums (the simplest generalized reduction);
* apriori        — level-wise frequent-itemset mining, one FREERIDE
                   counting pass per level;
* EM (mixtures)  — iterative soft clustering, one reduction per E+M pass.

Run:  python examples/data_mining_suite.py
"""

import numpy as np

from repro.apps import AprioriRunner, EmRunner, HistogramRunner, generate_transactions
from repro.data import kmeans_points


def demo_histogram() -> None:
    data = np.random.default_rng(1).normal(0.5, 0.15, 5_000)
    result = HistogramRunner(
        bins=10, lo=0.0, hi=1.0, version="opt-2", num_threads=4
    ).run(data)
    print("histogram (10 bins of N(0.5, 0.15)):")
    peak = result.counts.max()
    for i, c in enumerate(result.counts.astype(int)):
        bar = "#" * int(40 * c / peak)
        print(f"  [{result.edges[i]:.1f}, {result.edges[i + 1]:.1f})  {c:>5}  {bar}")


def demo_apriori() -> None:
    tx = generate_transactions(1_000, 12, avg_basket=3, seed=2)
    result = AprioriRunner(
        12, min_support_frac=0.3, max_size=3, version="opt-2", num_threads=4
    ).run(tx)
    print(f"\napriori (1000 baskets, 12 items, min support "
          f"{result.min_support}, {result.passes} FREERIDE passes):")
    for size, level in result.frequent.items():
        top = sorted(level, key=lambda kv: -kv[1])[:4]
        rendered = ", ".join(f"{items}:{s}" for items, s in top)
        print(f"  size {size}: {len(level)} frequent itemsets, top: {rendered}")


def demo_em() -> None:
    points = kmeans_points(800, 2, num_blobs=3, spread=0.04, seed=3)
    result = EmRunner(3, 2, version="opt-2", num_threads=4).run(
        points, iterations=12, seed=4
    )
    print(f"\nEM Gaussian mixture (800 points, 3 components, 12 iterations):")
    print(f"  log-likelihood : {result.log_likelihood:.1f}")
    print(f"  weights        : {np.round(result.weights, 3)}")
    for c, (mu, var) in enumerate(zip(result.means, result.variances)):
        print(f"  component {c}: mean={np.round(mu, 3)}  var={np.round(var, 4)}")


if __name__ == "__main__":
    demo_histogram()
    demo_apriori()
    demo_em()
