"""``python -m repro.analyze`` — the reduction-safety analyzer CLI.

Usage::

    python -m repro.analyze <file|dir> [<file|dir> ...] [--strict] [--json]
                            [--effects] [--no-registry]

Analyzes mini-Chapel reduction classes in ``.chpl``/``.chapel`` files and
in string literals embedded in ``.py`` files, and (unless ``--no-registry``)
algebra-checks every builtin/registered ``ReduceScanOp``.  ``--effects``
additionally runs the symbolic effect analysis and reports its RS1xx
findings (RS100 provable out-of-bounds group index, RS101 dead accumulate,
RS102 non-affine unbounded group index).

Exit status (stable — scripts and CI may rely on these):

* ``0`` — analysis ran; without ``--strict`` always, with ``--strict`` only
  when no **error**-level diagnostic was reported (warnings and infos never
  fail the run — float-reduction nondeterminism is expected, not a defect);
* ``1`` — ``--strict`` and at least one error-level diagnostic;
* ``2`` — usage or I/O error: bad flags (via argparse) or a named path
  that does not exist.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis import (
    DiagnosticBag,
    analyze_path,
    check_registry,
    render_diagnostics,
    summarize,
)

__all__ = ["main"]


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Reduction-safety analyzer for mini-Chapel sources.",
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help="files or directories (.chpl/.chapel, or .py with embedded "
        "mini-Chapel string literals)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any error-level diagnostic is reported",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit diagnostics as a JSON array instead of rendered text",
    )
    parser.add_argument(
        "--effects",
        action="store_true",
        help="also run the symbolic effect analysis and report RS1xx "
        "findings (provable OOB group index, dead accumulate, non-affine "
        "group index)",
    )
    parser.add_argument(
        "--no-registry",
        action="store_true",
        help="skip the ReduceScanOp registry algebra checks",
    )
    args = parser.parse_args(argv)

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        for p in missing:
            print(f"error: no such file or directory: {p}", file=sys.stderr)
        return 2

    bag = DiagnosticBag()
    sources: dict[str, str] = {}
    scanned = 0
    for p in args.paths:
        report = analyze_path(p, effects=args.effects)
        scanned += report.files_scanned
        bag.extend(report.diagnostics)
        sources.update(report.sources)
    if not args.no_registry:
        bag.extend(check_registry())

    if args.json:
        print(json.dumps([d.to_dict() for d in bag.sorted()], indent=2))
    else:
        if len(bag):
            print(render_diagnostics(bag, sources))
        else:
            print(f"{scanned} file(s) scanned: no findings")
        if args.strict:
            print(f"strict mode: {'FAIL' if bag.has_errors else 'ok'}")

    if args.strict and bag.has_errors:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
