"""Principal Component Analysis — the paper's second application (Figs 12-13).

"PCA converts high-dimension data into the low-dimension one by calculating
the mean vector and the covariance matrix. ... There are two reduction
phases in PCA: calculating the mean vector and computing the covariance
matrix."

Each data *element* is one column of the data matrix (the paper: columns =
number of data elements, rows = dimensionality).  Phase 1 reduces columns
into per-dimension sums (the mean vector); phase 2 reduces centered outer
products into the (upper-triangular) covariance matrix.

The paper compares only ``opt-2`` and ``manual FR`` for PCA ("PCA ... does
not use complex or nested data structures in Chapel.  As a result, the
benefits of the two levels of optimizations ... are not significant"); we
nevertheless support all four versions — the benchmarks use the two the
paper shows, and the ablation tests confirm the paper's claim that the
levels barely differ here.

Reduction-object layouts:

* mean phase — group 0: ``m`` sums; group 1: 1 count;
* covariance phase — ``m`` groups of ``m`` elements (row ``a`` of the
  upper-triangular accumulation; entries below the diagonal stay zero).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Any

import numpy as np

from repro.compiler.cache import compile_cached
from repro.compiler.translate import BACKENDS, CompiledReduction, kernel_technique
from repro.freeride.reduction_object import ReductionObject
from repro.freeride.runtime import FreerideEngine, RunStats
from repro.freeride.spec import ReductionArgs, ReductionSpec
from repro.machine.counters import OpCounters
from repro.obs.profilestore import ProfileStore
from repro.obs.tracer import Tracer
from repro.util.errors import ReproError
from repro.util.validation import check_one_of, check_positive_int

__all__ = [
    "PCA_MEAN_SOURCE",
    "PCA_COV_SOURCE",
    "PcaResult",
    "PcaRunner",
    "pca_numpy_reference",
    "manual_mean_spec",
    "manual_cov_spec",
    "VERSIONS",
]

VERSIONS = ("generated", "opt-1", "opt-2", "manual")

#: Phase 1: the mean vector, as a Chapel reduction over columns.
PCA_MEAN_SOURCE = """
class pcaMeanReduction : ReduceScanOp {
  var m: int;

  def accumulate(col: [1..m] real) {
    for r in 1..m {
      roAdd(0, r - 1, col[r]);
    }
    roAdd(1, 0, 1.0);
  }
}
"""

#: Phase 2: the upper-triangular covariance accumulation.  The mean vector
#: computed by phase 1 is a class field (an *extra* for the translator).
PCA_COV_SOURCE = """
class pcaCovReduction : ReduceScanOp {
  var m: int;
  var mean: [1..m] real;

  def accumulate(col: [1..m] real) {
    for a in 1..m {
      var ca: real = col[a] - mean[a];
      for b in a..m {
        var cb: real = col[b] - mean[b];
        roAdd(a - 1, b - 1, ca * cb);
      }
    }
  }
}
"""


def mean_ro_layout(m: int) -> list[tuple[int, str]]:
    return [(m, "add"), (1, "add")]


def cov_ro_layout(m: int) -> list[tuple[int, str]]:
    return [(m, "add")] * m


def pca_numpy_reference(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Oracle: (mean vector, covariance matrix) over columns as elements."""
    mean = matrix.mean(axis=1)
    centered = matrix - mean[:, None]
    n = matrix.shape[1]
    cov = (centered @ centered.T) / (n - 1 if n > 1 else 1)
    return mean, cov


def manual_mean_spec(m: int, counters: OpCounters) -> ReductionSpec:
    """Hand-written FREERIDE mean-vector phase (vectorized over chunks)."""

    def setup(ro: ReductionObject) -> None:
        ro.alloc(m, "add")
        ro.alloc(1, "add")

    def reduction(args: ReductionArgs) -> None:
        chunk = np.asarray(args.data, dtype=np.float64)  # (n, m) columns-as-rows
        if chunk.size == 0:
            return
        args.ro.accumulate_group(0, chunk.sum(axis=0))
        args.ro.accumulate(1, 0, float(chunk.shape[0]))
        # Modeled C cost: per element, read and fold every dimension into
        # the reduction object (one update per dimension).
        n = chunk.shape[0]
        counters.elements_processed += n
        counters.linear_reads += n * m
        counters.flops += n * m
        counters.ro_updates += n * m

    return ReductionSpec(
        name="pca-mean-manual", setup_reduction_object=setup, reduction=reduction
    )


def manual_cov_spec(m: int, mean: np.ndarray, counters: OpCounters) -> ReductionSpec:
    """Hand-written FREERIDE covariance phase.

    Vectorized as a blocked ``centered @ centered.T``; cost is counted as the
    triangular per-column work a C implementation performs
    (``m*(m+1)/2`` multiply-adds plus the centering pass).
    """
    mean = np.ascontiguousarray(mean, dtype=np.float64)

    def setup(ro: ReductionObject) -> None:
        for _ in range(m):
            ro.alloc(m, "add")

    tri = m * (m + 1) // 2

    def reduction(args: ReductionArgs) -> None:
        chunk = np.asarray(args.data, dtype=np.float64)
        if chunk.size == 0:
            return
        centered = chunk - mean[None, :]
        block = centered.T @ centered  # (m, m) contribution of this chunk
        for a in range(m):
            vals = np.zeros(m)
            vals[a:] = block[a, a:]  # upper triangle only
            args.ro.accumulate_group(a, vals)
        # Modeled C cost per element: center every dimension (m reads +
        # m subtractions), then for each of the tri = m(m+1)/2 upper-triangle
        # pairs: two reads, multiply + add, one reduction-object update.
        n = chunk.shape[0]
        counters.elements_processed += n
        counters.linear_reads += n * (m + 2 * tri)
        counters.flops += n * (m + 3 * tri)
        counters.ro_updates += n * tri
    return ReductionSpec(
        name="pca-cov-manual", setup_reduction_object=setup, reduction=reduction
    )


@dataclass
class PcaResult:
    """Outcome of a full PCA run (both reduction phases)."""

    mean: np.ndarray
    covariance: np.ndarray
    version: str
    counters: OpCounters
    mean_stats: RunStats | None = None
    cov_stats: RunStats | None = None

    def principal_components(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Top-k eigenpairs of the covariance (descending eigenvalues)."""
        vals, vecs = np.linalg.eigh(self.covariance)
        order = np.argsort(vals)[::-1][:k]
        return vals[order], vecs[:, order]

    def project(self, matrix: np.ndarray, k: int) -> np.ndarray:
        """Dimensionality reduction: project columns onto the top-k PCs."""
        _, vecs = self.principal_components(k)
        return vecs.T @ (matrix - self.mean[:, None])


class PcaRunner:
    """Runs both PCA reduction phases for any version."""

    def __init__(
        self,
        m: int,
        version: str = "opt-2",
        num_threads: int = 1,
        executor: str = "serial",
        chunk_size: int | None = None,
        technique: str = "full_replication",
        backend: str = "scalar",
        tracer: "Tracer | None" = None,
        profile_store: "ProfileStore | str | bool | None" = None,
    ) -> None:
        check_positive_int(m, "m")
        self.m = m
        self.version = check_one_of(version, VERSIONS, "version")
        self.backend = check_one_of(backend, BACKENDS, "backend")
        self.engine = FreerideEngine(
            num_threads=num_threads, executor=executor, chunk_size=chunk_size,
            technique=technique, tracer=tracer,
            profile_store=profile_store,
        )
        self.mean_compiled: CompiledReduction | None = None
        self.cov_compiled: CompiledReduction | None = None
        if version != "manual":
            level = {"generated": 0, "opt-1": 1, "opt-2": 2}[version]
            kt = kernel_technique(technique)
            self.mean_compiled = compile_cached(
                PCA_MEAN_SOURCE, {"m": m}, opt_level=level, backend=backend,
                technique=kt,
            )
            self.cov_compiled = compile_cached(
                PCA_COV_SOURCE, {"m": m}, opt_level=level, backend=backend,
                technique=kt,
            )

    def close(self) -> None:
        """Release the engine's worker pools and shared-memory segments."""
        self.engine.close()

    def __enter__(self) -> "PcaRunner":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def run(self, matrix: np.ndarray) -> PcaResult:
        """``matrix`` is (rows=m, cols=n); elements are columns."""
        matrix = np.ascontiguousarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != self.m:
            raise ReproError(f"matrix must be ({self.m}, n), got {matrix.shape}")
        columns = np.ascontiguousarray(matrix.T)  # (n, m): one row per element
        n = columns.shape[0]
        if self.version == "manual":
            return self._run_manual(columns, n)
        return self._run_compiled(columns, n)

    def _normalize(self, ro_mean, ro_cov, n: int) -> tuple[np.ndarray, np.ndarray]:
        sums = ro_mean.get_group(0)
        count = ro_mean.get(1, 0)
        mean = sums / max(count, 1.0)
        denom = max(n - 1, 1)
        cov = np.zeros((self.m, self.m))
        for a in range(self.m):
            cov[a] = ro_cov.get_group(a)
        cov = cov / denom
        # mirror the upper triangle down
        cov = cov + np.triu(cov, 1).T
        return mean, cov

    def _run_compiled(self, columns: np.ndarray, n: int) -> PcaResult:
        assert self.mean_compiled is not None and self.cov_compiled is not None
        mean_bound = self.mean_compiled.bind(columns)
        spec, idx = mean_bound.make_spec(mean_ro_layout(self.m))
        mean_res = self.engine.run(spec, idx)
        sums = mean_res.ro.get_group(0)
        count = mean_res.ro.get(1, 0)
        mean = sums / max(count, 1.0)

        from repro.chapel.types import REAL, array_of
        from repro.chapel.values import from_python

        mean_value = from_python(array_of(REAL, self.m), list(map(float, mean)))
        cov_bound = self.cov_compiled.bind(
            mean_bound.data_buf, {"mean": mean_value}, n_elements=n
        )
        spec2, idx2 = cov_bound.make_spec(cov_ro_layout(self.m))
        cov_res = self.engine.run(spec2, idx2)

        counters = OpCounters()
        counters.add(mean_bound.counters)
        counters.add(cov_bound.counters)
        mean_vec, cov = self._normalize(mean_res.ro, cov_res.ro, n)
        return PcaResult(
            mean=mean_vec,
            covariance=cov,
            version=self.version,
            counters=counters,
            mean_stats=mean_res.stats,
            cov_stats=cov_res.stats,
        )

    def _run_manual(self, columns: np.ndarray, n: int) -> PcaResult:
        counters = OpCounters()
        mean_res = self.engine.run(manual_mean_spec(self.m, counters), columns)
        sums = mean_res.ro.get_group(0)
        count = mean_res.ro.get(1, 0)
        mean = sums / max(count, 1.0)
        cov_res = self.engine.run(
            manual_cov_spec(self.m, mean, counters), columns
        )
        mean_vec, cov = self._normalize(mean_res.ro, cov_res.ro, n)
        return PcaResult(
            mean=mean_vec,
            covariance=cov,
            version="manual",
            counters=counters,
            mean_stats=mean_res.stats,
            cov_stats=cov_res.stats,
        )
