"""Windowed scaled statistics — the effect-analysis showcase app.

Time-series style generalized reduction: the input is a stream of samples
partitioned into fixed-width *windows* of ``win`` consecutive elements;
each window is one reduction-object group accumulating a sample count and
a sum of samples reweighted through a small per-bin ``scale`` lookup
table.  Two properties make it the stress test for the unified symbolic
effect analysis (:mod:`repro.analysis.effects`):

* the **group index is a function of the element position** —
  ``toInt(elemIdx() / win)`` clamped to the last window.  A whole-run
  interval analysis sees every split touching every window, so the
  COLORED technique degenerates to one split per wave (or, without
  min/max reasoning, falls back to replication outright).  The
  split-parametric summary instead evaluates the group form over each
  split's element range: splits on ``win``-aligned boundaries have
  provably disjoint footprints and color into one fully parallel wave;
* the **scale lookup is a bounded gather** — ``scale[b + 1]`` with a
  data-dependent ``b``.  Plain batch taint analysis rejects any
  lane-varying access-site index and falls back to the scalar kernel;
  the effect summary proves ``b + 1 ∈ [1 .. nb]`` from the clamp chain,
  so the batch backend vectorizes the access with a grouped ``np.take``.

Results are bit-identical to the serial scalar run under both backends
and under colored threads — counts are integral, each element contributes
one float product, and ``win``-aligned splits keep every window inside a
single split so no sum is ever reassociated.  Replica-merging techniques
with unaligned splits (e.g. the process executor's full replication) may
reassociate the one window a split boundary straddles — the usual RS020
floating-point rounding noise, numerically but not bitwise equal.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Any

import numpy as np

from repro.chapel.values import from_python
from repro.compiler.cache import compile_cached
from repro.compiler.translate import BACKENDS, kernel_technique
from repro.freeride.runtime import FreerideEngine
from repro.machine.counters import OpCounters
from repro.obs.profilestore import ProfileStore
from repro.obs.tracer import Tracer
from repro.util.errors import ReproError
from repro.util.validation import check_one_of, check_positive_int

__all__ = ["WINDOWED_CHAPEL_SOURCE", "WindowedResult", "WindowedRunner", "VERSIONS"]

VERSIONS = ("generated", "opt-1", "opt-2")

#: Per-window count and scaled sum.  ``w`` depends only on the element
#: position (an affine form of ``elemIdx()``); ``b`` is the value's bin,
#: clamped into the ``scale`` table's domain before the lookup.
WINDOWED_CHAPEL_SOURCE = """
class windowedReduction : ReduceScanOp {
  var win: int;
  var nw: int;
  var nb: int;
  var lo: real;
  var width: real;
  var scale: [1..nb] real;

  def accumulate(x: real) {
    var w: int = toInt(elemIdx() / win);
    if (w > nw - 1) { w = nw - 1; }
    var b: int = toInt((x - lo) / width);
    if (b < 0) { b = 0; }
    if (b > nb - 1) { b = nb - 1; }
    roAdd(w, 0, 1.0);
    roAdd(w, 1, x * scale[b + 1]);
  }
}
"""


@dataclass
class WindowedResult:
    """Per-window sample counts and scale-weighted sums."""

    counts: np.ndarray
    sums: np.ndarray
    version: str
    counters: OpCounters

    @property
    def means(self) -> np.ndarray:
        """Per-window mean weighted value (NaN for empty windows)."""
        with np.errstate(invalid="ignore"):
            return np.where(self.counts > 0, self.sums / self.counts, np.nan)


class WindowedRunner:
    """Windowed statistics over ``num_windows`` windows of ``window`` samples.

    ``scale`` maps each of ``bins`` equal-width value bins of ``[lo, hi]``
    to a weight; elements past ``num_windows * window`` fold into the last
    window (the kernel's clamp).
    """

    def __init__(
        self,
        window: int,
        num_windows: int,
        scale: "np.ndarray | list[float]",
        lo: float,
        hi: float,
        version: str = "opt-2",
        num_threads: int = 1,
        executor: str = "serial",
        chunk_size: int | None = None,
        technique: str = "full_replication",
        backend: str = "scalar",
        tracer: "Tracer | None" = None,
        profile_store: "ProfileStore | str | bool | None" = None,
    ) -> None:
        check_positive_int(window, "window")
        check_positive_int(num_windows, "num_windows")
        if not hi > lo:
            raise ReproError(f"need hi > lo, got [{lo}, {hi}]")
        self.scale = np.ascontiguousarray(scale, dtype=np.float64).reshape(-1)
        if self.scale.size == 0:
            raise ReproError("scale table must have at least one bin")
        self.window, self.num_windows = window, num_windows
        self.lo, self.hi = float(lo), float(hi)
        self.width = (self.hi - self.lo) / self.scale.size
        self.version = check_one_of(version, VERSIONS, "version")
        self.backend = check_one_of(backend, BACKENDS, "backend")
        self.engine = FreerideEngine(
            num_threads=num_threads, executor=executor, chunk_size=chunk_size,
            technique=technique, tracer=tracer,
            profile_store=profile_store,
        )
        #: RunStats of the most recent engine run (None before the first)
        self.last_run_stats = None
        level = {"generated": 0, "opt-1": 1, "opt-2": 2}[version]
        self.compiled = compile_cached(
            WINDOWED_CHAPEL_SOURCE,
            {
                "win": window,
                "nw": num_windows,
                "nb": int(self.scale.size),
                "lo": self.lo,
                "width": self.width,
            },
            opt_level=level,
            backend=backend,
            technique=kernel_technique(technique),
        )

    def ro_layout(self) -> list[tuple[int, str]]:
        return [(2, "add")] * self.num_windows  # [count, sum] per window

    def close(self) -> None:
        """Release the engine's worker pools and shared-memory segments."""
        self.engine.close()

    def __enter__(self) -> "WindowedRunner":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def run(self, data: np.ndarray) -> WindowedResult:
        data = np.ascontiguousarray(data, dtype=np.float64).reshape(-1)
        scale_t = self.compiled.lowered.extra_types["scale"]
        bound = self.compiled.bind(
            data, {"scale": from_python(scale_t, self.scale.tolist())}
        )
        spec, idx = bound.make_spec(self.ro_layout())
        result = self.engine.run(spec, idx)
        self.last_run_stats = result.stats
        counts = np.array(
            [result.ro.get(g, 0) for g in range(self.num_windows)]
        )
        sums = np.array(
            [result.ro.get(g, 1) for g in range(self.num_windows)]
        )
        return WindowedResult(
            counts=counts, sums=sums, version=self.version,
            counters=bound.counters,
        )

    def reference(self, data: np.ndarray) -> WindowedResult:
        """Plain-numpy oracle (same clamp semantics as the kernel)."""
        data = np.ascontiguousarray(data, dtype=np.float64).reshape(-1)
        nb = self.scale.size
        w = np.minimum(np.arange(data.size) // self.window, self.num_windows - 1)
        b = np.clip(((data - self.lo) / self.width).astype(np.int64), 0, nb - 1)
        weighted = data * self.scale[b]
        counts = np.bincount(w, minlength=self.num_windows).astype(float)
        sums = np.bincount(w, weights=weighted, minlength=self.num_windows)
        return WindowedResult(
            counts=counts[: self.num_windows], sums=sums[: self.num_windows],
            version="reference", counters=OpCounters(),
        )
