"""Apriori frequent-itemset mining — an extension app (FREERIDE lineage).

Support counting is the generalized reduction at the heart of apriori: for
every transaction, check each candidate itemset and bump its support
counter (one reduction-object group per candidate).  The level-wise driver
(generate candidates of size s+1 from frequent s-itemsets, count, prune)
runs every counting pass through FREERIDE.

The counting kernel exists both as a mini-Chapel reduction — an interesting
compiler test because the *data* is indexed by an *extra* access
(``t[candidates[c][j]]``) — and as a vectorized manual FR version.

Transactions are basket-encoded: element = ``[1..num_items] int`` with 0/1
presence flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from typing import Any

import numpy as np

from repro.compiler.cache import compile_cached
from repro.freeride.reduction_object import ReductionObject
from repro.freeride.runtime import FreerideEngine
from repro.freeride.spec import ReductionArgs, ReductionSpec
from repro.machine.counters import OpCounters
from repro.obs.profilestore import ProfileStore
from repro.obs.tracer import Tracer
from repro.util.errors import ReproError
from repro.util.validation import check_in_range, check_one_of, check_positive_int

__all__ = [
    "APRIORI_CHAPEL_SOURCE",
    "AprioriResult",
    "AprioriRunner",
    "generate_transactions",
    "VERSIONS",
]

VERSIONS = ("generated", "opt-1", "opt-2", "manual")

#: Candidate support counting as a Chapel reduction.  ``candidates`` is a
#: [1..numCand] x [1..setSize] array of item indices (an *extra*); the
#: transaction is the data element.  Note the composed access
#: ``t[candidates[c][j]]`` — a data access whose index is an extra access.
APRIORI_CHAPEL_SOURCE = """
class aprioriReduction : ReduceScanOp {
  var numItems: int;
  var numCand: int;
  var setSize: int;
  var candidates: [1..numCand][1..setSize] int;

  def accumulate(t: [1..numItems] int) {
    for c in 1..numCand {
      var present: int = 1;
      for j in 1..setSize {
        if (t[candidates[c][j]] == 0) { present = 0; }
      }
      roAdd(0, c - 1, present);
    }
  }
}
"""


def generate_transactions(
    n: int, num_items: int, avg_basket: int = 6, seed: int = 0
) -> np.ndarray:
    """Synthetic basket data with correlated item groups (so that real
    frequent itemsets exist).  Returns int64 presence flags (n, num_items)."""
    check_positive_int(n, "n")
    check_positive_int(num_items, "num_items")
    rng = np.random.default_rng(seed)
    p = min(0.9, avg_basket / num_items)
    baskets = (rng.random((n, num_items)) < p).astype(np.int64)
    # plant a correlated pattern: items 0 and 1 co-occur frequently
    planted = rng.random(n) < 0.4
    baskets[planted, 0] = 1
    baskets[planted, 1] = 1
    return baskets


@dataclass
class AprioriResult:
    """Frequent itemsets by size, with their supports."""

    frequent: dict[int, list[tuple[tuple[int, ...], int]]]
    min_support: int
    version: str
    counters: OpCounters
    passes: int = 0

    def itemsets_of_size(self, s: int) -> list[tuple[int, ...]]:
        return [items for items, _ in self.frequent.get(s, [])]


class AprioriRunner:
    """Level-wise apriori with FREERIDE support counting."""

    def __init__(
        self,
        num_items: int,
        min_support_frac: float = 0.3,
        max_size: int = 3,
        version: str = "manual",
        num_threads: int = 1,
        executor: str = "serial",
        chunk_size: int | None = None,
        technique: str = "full_replication",
        backend: str = "scalar",
        tracer: "Tracer | None" = None,
        profile_store: "ProfileStore | str | bool | None" = None,
    ) -> None:
        from repro.compiler.translate import BACKENDS, kernel_technique

        check_positive_int(num_items, "num_items")
        check_in_range(min_support_frac, 0.0, 1.0, "min_support_frac")
        check_positive_int(max_size, "max_size")
        self.num_items = num_items
        self.min_support_frac = min_support_frac
        self.max_size = max_size
        self.version = check_one_of(version, VERSIONS, "version")
        self.backend = check_one_of(backend, BACKENDS, "backend")
        self.engine = FreerideEngine(
            num_threads=num_threads, executor=executor, chunk_size=chunk_size,
            technique=technique, tracer=tracer,
            profile_store=profile_store,
        )
        #: kernel variant every counting pass compiles with
        self.kernel_technique = kernel_technique(technique)
        #: RunStats of the most recent counting pass (None before the first)
        self.last_run_stats = None

    # -- candidate generation (classic apriori join + prune) -------------------

    @staticmethod
    def _next_candidates(
        frequent: list[tuple[int, ...]], size: int
    ) -> list[tuple[int, ...]]:
        freq_set = set(frequent)
        out: set[tuple[int, ...]] = set()
        for a in frequent:
            for b in frequent:
                if a[:-1] == b[:-1] and a[-1] < b[-1]:
                    cand = a + (b[-1],)
                    # prune: every (size-1)-subset must be frequent
                    if all(
                        tuple(sub) in freq_set
                        for sub in combinations(cand, size - 1)
                    ):
                        out.add(cand)
        return sorted(out)

    # -- one counting pass over the data -----------------------------------------

    def _count_supports(
        self,
        transactions: np.ndarray,
        candidates: list[tuple[int, ...]],
        counters: OpCounters,
    ) -> np.ndarray:
        if self.version == "manual":
            return self._count_manual(transactions, candidates, counters)
        return self._count_compiled(transactions, candidates, counters)

    def _count_manual(
        self,
        transactions: np.ndarray,
        candidates: list[tuple[int, ...]],
        counters: OpCounters,
    ) -> np.ndarray:
        cand = np.array(candidates, dtype=np.int64)  # (C, s), 0-based
        num_cand, set_size = cand.shape

        def setup(ro: ReductionObject) -> None:
            ro.alloc(num_cand, "add")

        def reduction(args: ReductionArgs) -> None:
            chunk = np.asarray(args.data)
            if chunk.size == 0:
                return
            # present[t, c] = all items of candidate c in transaction t
            present = chunk[:, cand].all(axis=2)  # (n, C) bool
            args.ro.accumulate_group(0, present.sum(axis=0).astype(float))
            n = chunk.shape[0]
            counters.elements_processed += n
            counters.linear_reads += n * num_cand * set_size
            counters.flops += n * num_cand * set_size
            counters.ro_updates += n * num_cand

        spec = ReductionSpec(
            name="apriori-manual", setup_reduction_object=setup, reduction=reduction
        )
        result = self.engine.run(spec, transactions)
        self.last_run_stats = result.stats
        return result.ro.get_group(0)

    def _count_compiled(
        self,
        transactions: np.ndarray,
        candidates: list[tuple[int, ...]],
        counters: OpCounters,
    ) -> np.ndarray:
        from repro.chapel.types import INT, ArrayType, array_of
        from repro.chapel.domains import Domain
        from repro.chapel.values import from_python

        num_cand = len(candidates)
        set_size = len(candidates[0])
        level = {"generated": 0, "opt-1": 1, "opt-2": 2}[self.version]
        compiled = compile_cached(
            APRIORI_CHAPEL_SOURCE,
            {
                "numItems": self.num_items,
                "numCand": num_cand,
                "setSize": set_size,
            },
            opt_level=level,
            backend=self.backend,
            technique=self.kernel_technique,
        )
        cand_t = ArrayType(Domain(num_cand), array_of(INT, set_size))
        # candidates hold 1-based item indices in the Chapel view
        cand_value = from_python(
            cand_t, [[i + 1 for i in items] for items in candidates]
        )
        bound = compiled.bind(
            np.ascontiguousarray(transactions, dtype=np.int64),
            {"candidates": cand_value},
        )
        spec, idx = bound.make_spec([(num_cand, "add")])
        result = self.engine.run(spec, idx)
        self.last_run_stats = result.stats
        counters.add(bound.counters)
        return result.ro.get_group(0)

    # -- the level-wise driver ------------------------------------------------------

    def close(self) -> None:
        """Release the engine's worker pools and shared-memory segments."""
        self.engine.close()

    def __enter__(self) -> "AprioriRunner":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def run(self, transactions: np.ndarray) -> AprioriResult:
        transactions = np.ascontiguousarray(transactions, dtype=np.int64)
        if transactions.ndim != 2 or transactions.shape[1] != self.num_items:
            raise ReproError(
                f"transactions must be (n, {self.num_items}), got {transactions.shape}"
            )
        n = transactions.shape[0]
        min_support = max(1, int(np.ceil(self.min_support_frac * n)))
        counters = OpCounters()
        frequent: dict[int, list[tuple[tuple[int, ...], int]]] = {}
        passes = 0

        # size-1 candidates: every single item
        candidates: list[tuple[int, ...]] = [(i,) for i in range(self.num_items)]
        size = 1
        while candidates and size <= self.max_size:
            supports = self._count_supports(transactions, candidates, counters)
            passes += 1
            level = [
                (items, int(s))
                for items, s in zip(candidates, supports)
                if s >= min_support
            ]
            if not level:
                break
            frequent[size] = level
            size += 1
            candidates = self._next_candidates([i for i, _ in level], size)
        return AprioriResult(
            frequent=frequent,
            min_support=min_support,
            version=self.version,
            counters=counters,
            passes=passes,
        )
