"""Histogram — an extension app from FREERIDE's generalized-reduction family.

Binned counting is the simplest generalized reduction ("the iterations of
the for-each loop can be performed in any order"): each element maps to one
bin (a reduction-object group) and folds in a count and a value sum.  It is
also the canonical workload for the Figure 4 structural comparison, because
Map-Reduce must materialize one (bin, value) pair per element while
FREERIDE updates the bins in place.

Like the paper's apps, it comes as a mini-Chapel reduction (compiled at any
opt level) and a hand-written manual FR version.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Any

import numpy as np

from repro.compiler.cache import compile_cached
from repro.compiler.translate import BACKENDS, kernel_technique
from repro.freeride.reduction_object import ReductionObject
from repro.freeride.runtime import FreerideEngine
from repro.freeride.spec import ReductionArgs, ReductionSpec
from repro.machine.counters import OpCounters
from repro.obs.profilestore import ProfileStore
from repro.obs.tracer import Tracer
from repro.util.errors import ReproError
from repro.util.validation import check_one_of, check_positive_int

__all__ = ["HISTOGRAM_CHAPEL_SOURCE", "HistogramResult", "HistogramRunner", "VERSIONS"]

VERSIONS = ("generated", "opt-1", "opt-2", "manual")

#: Binning as a Chapel reduction.  ``lo``/``width``/``bins`` are
#: compile-time constants; the clamp keeps x == hi in the last bin.
HISTOGRAM_CHAPEL_SOURCE = """
class histogramReduction : ReduceScanOp {
  var bins: int;
  var lo: real;
  var width: real;

  def accumulate(x: real) {
    var b: int = toInt((x - lo) / width);
    if (b < 0) { b = 0; }
    if (b > bins - 1) { b = bins - 1; }
    roAdd(b, 0, 1.0);
    roAdd(b, 1, x);
  }
}
"""


@dataclass
class HistogramResult:
    """Per-bin counts and sums."""

    counts: np.ndarray
    sums: np.ndarray
    edges: np.ndarray
    version: str
    counters: OpCounters

    @property
    def means(self) -> np.ndarray:
        """Per-bin mean value (NaN for empty bins)."""
        with np.errstate(invalid="ignore"):
            return np.where(self.counts > 0, self.sums / self.counts, np.nan)


class HistogramRunner:
    """Histogram over ``bins`` equal-width bins of [lo, hi]."""

    def __init__(
        self,
        bins: int,
        lo: float,
        hi: float,
        version: str = "opt-2",
        num_threads: int = 1,
        executor: str = "serial",
        chunk_size: int | None = None,
        technique: str = "full_replication",
        backend: str = "scalar",
        tracer: "Tracer | None" = None,
        profile_store: "ProfileStore | str | bool | None" = None,
    ) -> None:
        check_positive_int(bins, "bins")
        if not hi > lo:
            raise ReproError(f"need hi > lo, got [{lo}, {hi}]")
        self.bins, self.lo, self.hi = bins, float(lo), float(hi)
        self.width = (self.hi - self.lo) / bins
        self.version = check_one_of(version, VERSIONS, "version")
        self.backend = check_one_of(backend, BACKENDS, "backend")
        self.engine = FreerideEngine(
            num_threads=num_threads, executor=executor, chunk_size=chunk_size,
            technique=technique, tracer=tracer,
            profile_store=profile_store,
        )
        #: RunStats of the most recent engine run (None before the first)
        self.last_run_stats = None
        self.compiled = None
        if version != "manual":
            level = {"generated": 0, "opt-1": 1, "opt-2": 2}[version]
            self.compiled = compile_cached(
                HISTOGRAM_CHAPEL_SOURCE,
                {"bins": bins, "lo": self.lo, "width": self.width},
                opt_level=level,
                backend=backend,
                technique=kernel_technique(technique),
            )

    def ro_layout(self) -> list[tuple[int, str]]:
        return [(2, "add")] * self.bins  # [count, sum] per bin

    def close(self) -> None:
        """Release the engine's worker pools and shared-memory segments."""
        self.engine.close()

    def __enter__(self) -> "HistogramRunner":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def run(self, data: np.ndarray) -> HistogramResult:
        data = np.ascontiguousarray(data, dtype=np.float64).reshape(-1)
        if self.version == "manual":
            return self._run_manual(data)
        bound = self.compiled.bind(data)
        spec, idx = bound.make_spec(self.ro_layout())
        result = self.engine.run(spec, idx)
        self.last_run_stats = result.stats
        return self._collect(result.ro, self.version, bound.counters)

    def _run_manual(self, data: np.ndarray) -> HistogramResult:
        counters = OpCounters()
        bins, lo, width = self.bins, self.lo, self.width

        def setup(ro: ReductionObject) -> None:
            for _ in range(bins):
                ro.alloc(2, "add")

        def reduction(args: ReductionArgs) -> None:
            chunk = np.asarray(args.data, dtype=np.float64)
            if chunk.size == 0:
                return
            b = np.clip(((chunk - lo) / width).astype(np.int64), 0, bins - 1)
            counts = np.bincount(b, minlength=bins).astype(float)
            sums = np.bincount(b, weights=chunk, minlength=bins)
            for g in np.nonzero(counts)[0]:
                args.ro.accumulate_group(int(g), np.array([counts[g], sums[g]]))
            n = chunk.size
            counters.elements_processed += n
            counters.linear_reads += n
            counters.flops += n * 4  # sub, div, clamp x2
            counters.ro_updates += n * 2

        spec = ReductionSpec(
            name="histogram-manual", setup_reduction_object=setup, reduction=reduction
        )
        result = self.engine.run(spec, data)
        self.last_run_stats = result.stats
        return self._collect(result.ro, "manual", counters)

    def _collect(
        self, ro: ReductionObject, version: str, counters: OpCounters
    ) -> HistogramResult:
        counts = np.array([ro.get(g, 0) for g in range(self.bins)])
        sums = np.array([ro.get(g, 1) for g in range(self.bins)])
        edges = np.linspace(self.lo, self.hi, self.bins + 1)
        return HistogramResult(
            counts=counts, sums=sums, edges=edges, version=version, counters=counters
        )
