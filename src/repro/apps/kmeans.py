"""K-means clustering — the paper's first application (Figures 3, 5, 9-11).

Four versions, as in §V:

* ``generated`` / ``opt-1`` / ``opt-2`` — the mini-Chapel reduction class
  below (the paper's Figure 3) compiled by :mod:`repro.compiler` at the
  corresponding optimization level;
* ``manual`` — a hand-written FREERIDE application (the paper's Figure 5),
  implemented as a vectorized kernel over the raw numpy data with the same
  counter instrumentation, standing in for the authors' hand-tuned C.

All versions share the outer sequential loop (assign points, merge, update
centroids, repeat — optionally "until the centroids are stable", the
paper's step 4) and produce identical centroids for identical inputs.

Reduction-object layout: one group per centroid with ``dim + 2`` elements —
``[count, sum_1, ..., sum_dim, sum_min_distance]`` — all additive, hence
order-independent.  The last cell is Figure 3's "update RO[min_disposition]
by min_distance"; its per-iteration total is the clustering inertia.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.chapel.domains import Domain
from repro.chapel.types import REAL, ArrayType, array_of, record
from repro.chapel.values import ChapelArray, from_python
from repro.compiler.cache import compile_cached
from repro.compiler.translate import (
    BACKENDS,
    BoundReduction,
    CompiledReduction,
    kernel_technique,
)
from repro.freeride.reduction_object import ReductionObject
from repro.freeride.runtime import FreerideEngine, RunStats
from repro.freeride.spec import ReductionArgs, ReductionSpec
from repro.obs.profilestore import ProfileStore
from repro.obs.tracer import Tracer
from repro.machine.counters import OpCounters
from repro.util.errors import ReproError
from repro.util.validation import check_one_of, check_positive_int

__all__ = [
    "KMEANS_CHAPEL_SOURCE",
    "KmeansResult",
    "KmeansRunner",
    "kmeans_ro_layout",
    "centroids_to_chapel",
    "centroids_from_ro",
    "kmeans_numpy_reference",
    "manual_fr_spec",
    "VERSIONS",
]

VERSIONS = ("generated", "opt-1", "opt-2", "manual")

#: The paper's Figure 3 reduction, in the mini-Chapel subset.  During the
#: accumulate phase each point is assigned to the closest centroid and the
#: explicit reduction object is updated; combine is the middleware default.
KMEANS_CHAPEL_SOURCE = """
record Centroid {
  var coord: [1..dim] real;
}

class kmeansReduction : ReduceScanOp {
  var k: int;
  var dim: int;
  var centroids: [1..k] Centroid;

  def accumulate(point: [1..dim] real) {
    var minDist: real = 1.0e300;
    var minIdx: int = 1;
    for c in 1..k {
      var dist: real = 0.0;
      for d in 1..dim {
        var diff: real = point[d] - centroids[c].coord[d];
        dist = dist + diff * diff;
      }
      if (dist < minDist) {
        minDist = dist;
        minIdx = c;
      }
    }
    roAdd(minIdx - 1, 0, 1.0);
    for d in 1..dim {
      roAdd(minIdx - 1, d, point[d]);
    }
    roAdd(minIdx - 1, dim + 1, minDist);
  }

  def combine(other: kmeansReduction) { }

  def generate() { return 0; }
}
"""


def kmeans_ro_layout(k: int, dim: int) -> list[tuple[int, str]]:
    """One additive group per centroid:
    [count, sum_1..sum_dim, sum_min_distance]."""
    return [(dim + 2, "add")] * k


def centroids_to_chapel(centroids: np.ndarray) -> ChapelArray:
    """Build the nested Chapel value for the ``centroids`` class field."""
    k, dim = centroids.shape
    Centroid = record("Centroid", coord=array_of(REAL, dim))
    cent_t = ArrayType(Domain(k), Centroid)
    return from_python(
        cent_t, [{"coord": list(map(float, row))} for row in centroids]
    )


def centroids_from_ro(
    ro: ReductionObject, old_centroids: np.ndarray
) -> tuple[np.ndarray, np.ndarray, float]:
    """The paper's step 3: "update the centroid of each cluster according to
    their current points".  Empty clusters keep their old centroid.

    Returns (new_centroids, counts, inertia) — inertia being the summed
    min-distances Figure 3 accumulates in the reduction object.
    """
    k, dim = old_centroids.shape
    new = old_centroids.copy()
    counts = np.zeros(k)
    inertia = 0.0
    for g in range(k):
        vals = ro.get_group(g)
        counts[g] = vals[0]
        if vals[0] > 0:
            new[g] = vals[1 : 1 + dim] / vals[0]
        inertia += vals[1 + dim]
    return new, counts, inertia


def kmeans_numpy_reference(
    points: np.ndarray, centroids: np.ndarray, iterations: int
) -> tuple[np.ndarray, np.ndarray]:
    """Pure-numpy oracle for the whole algorithm (same tie-breaking:
    the lowest-index nearest centroid wins)."""
    cents = centroids.copy()
    counts = np.zeros(len(cents))
    for _ in range(iterations):
        d2 = ((points[:, None, :] - cents[None, :, :]) ** 2).sum(axis=2)
        assign = np.argmin(d2, axis=1)  # argmin takes the first minimum
        new = cents.copy()
        counts = np.bincount(assign, minlength=len(cents)).astype(float)
        for g in range(len(cents)):
            if counts[g] > 0:
                new[g] = points[assign == g].mean(axis=0)
        cents = new
    return cents, counts


def manual_fr_spec(
    centroids: np.ndarray, counters: OpCounters | None = None
) -> ReductionSpec:
    """The hand-written FREERIDE k-means (paper Figure 5).

    The reduction processes a chunk of raw points (numpy view) with
    vectorized distance computation and updates the reduction object
    directly — the structure a C programmer writes against the Table I API.
    Operation counts (all linear accesses; no index mapping, no nested
    structures, no linearization) are charged to ``counters``.
    """
    cents = np.ascontiguousarray(centroids, dtype=np.float64)
    k, dim = cents.shape
    counters = counters if counters is not None else OpCounters()

    def setup(ro: ReductionObject) -> None:
        for _ in range(k):
            ro.alloc(dim + 2, "add")

    def reduction(args: ReductionArgs) -> None:
        chunk = np.asarray(args.data, dtype=np.float64)
        if chunk.size == 0:
            return
        n = chunk.shape[0]
        # squared distances to every centroid; argmin per point
        d2 = ((chunk[:, None, :] - cents[None, :, :]) ** 2).sum(axis=2)
        assign = np.argmin(d2, axis=1)
        best = d2[np.arange(n), assign]
        for g in np.unique(assign):
            mask = assign == g
            vals = np.empty(dim + 2)
            vals[0] = float(mask.sum())
            vals[1 : 1 + dim] = chunk[mask].sum(axis=0)
            vals[1 + dim] = float(best[mask].sum())
            args.ro.accumulate_group(int(g), vals)
        # Cost accounting for the modeled C implementation:
        #   per point: k*dim point+centroid reads, 3 flops per (c, d),
        #   k min-comparisons, dim+2 reduction-object updates.
        counters.elements_processed += n
        counters.linear_reads += n * k * dim * 2
        counters.flops += n * (3 * k * dim + k)
        counters.ro_updates += n * (dim + 2)

    return ReductionSpec(
        name="kmeans-manual-FR",
        setup_reduction_object=setup,
        reduction=reduction,
    )


@dataclass
class KmeansResult:
    """Outcome of a full k-means run."""

    centroids: np.ndarray
    counts: np.ndarray
    iterations: int  # iterations actually executed (may stop early on tol)
    version: str
    counters: OpCounters
    per_iteration_stats: list[RunStats] = field(default_factory=list)
    inertia: float = 0.0
    #: per-iteration summed min-distances, read from the reduction object
    #: (Figure 3's RO contents); measured against that iteration's input
    #: centroids, so the sequence is non-increasing
    inertia_trace: list[float] = field(default_factory=list)
    converged: bool = False


class KmeansRunner:
    """Runs the full k-means outer loop for any of the four versions."""

    def __init__(
        self,
        k: int,
        dim: int,
        version: str = "opt-2",
        num_threads: int = 1,
        executor: str = "serial",
        chunk_size: int | None = None,
        technique: str = "full_replication",
        backend: str = "scalar",
        tracer: "Tracer | None" = None,
        profile_store: "ProfileStore | str | bool | None" = None,
    ) -> None:
        check_positive_int(k, "k")
        check_positive_int(dim, "dim")
        self.version = check_one_of(version, VERSIONS, "version")
        self.backend = check_one_of(backend, BACKENDS, "backend")
        self.k, self.dim = k, dim
        self.engine = FreerideEngine(
            num_threads=num_threads,
            executor=executor,
            chunk_size=chunk_size,
            technique=technique,
            tracer=tracer,
            profile_store=profile_store,
        )
        self.compiled: CompiledReduction | None = None
        if version != "manual":
            opt_level = {"generated": 0, "opt-1": 1, "opt-2": 2}[version]
            self.compiled = compile_cached(
                KMEANS_CHAPEL_SOURCE,
                {"k": k, "dim": dim},
                opt_level=opt_level,
                backend=backend,
                technique=kernel_technique(technique),
            )

    def close(self) -> None:
        """Release the engine's worker pools and shared-memory segments."""
        self.engine.close()

    def __enter__(self) -> "KmeansRunner":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def run(
        self,
        points: np.ndarray,
        initial_centroids: np.ndarray,
        iterations: int,
        tol: float | None = None,
    ) -> KmeansResult:
        """Run up to ``iterations`` passes.

        With ``tol`` set, stop early once no centroid moves more than
        ``tol`` — the paper's step 4, "repeat ... until the centroids are
        stable".
        """
        check_positive_int(iterations, "iterations")
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != self.dim:
            raise ReproError(f"points must be (n, {self.dim}), got {points.shape}")
        cents = np.ascontiguousarray(initial_centroids, dtype=np.float64)
        if cents.shape != (self.k, self.dim):
            raise ReproError(
                f"initial centroids must be ({self.k}, {self.dim}), got {cents.shape}"
            )
        if self.version == "manual":
            return self._run_manual(points, cents, iterations, tol)
        return self._run_compiled(points, cents, iterations, tol)

    @staticmethod
    def _stable(old: np.ndarray, new: np.ndarray, tol: float | None) -> bool:
        return tol is not None and float(np.abs(new - old).max()) <= tol

    # -- compiled versions ------------------------------------------------------

    def _run_compiled(
        self,
        points: np.ndarray,
        cents: np.ndarray,
        iterations: int,
        tol: float | None,
    ) -> KmeansResult:
        assert self.compiled is not None
        layout = kmeans_ro_layout(self.k, self.dim)
        # The dataset is linearized ONCE; centroids re-linearize per
        # iteration inside update_extras (the opt-2 per-iteration cost).
        bound: BoundReduction = self.compiled.bind(
            points, {"centroids": centroids_to_chapel(cents)}
        )
        stats: list[RunStats] = []
        trace: list[float] = []
        counts = np.zeros(self.k)
        converged = False
        executed = 0
        for _ in range(iterations):
            spec, idx = bound.make_spec(layout)
            result = self.engine.run(spec, idx)
            new_cents, counts, inertia = centroids_from_ro(result.ro, cents)
            stats.append(result.stats)
            trace.append(inertia)
            executed += 1
            stable = self._stable(cents, new_cents, tol)
            cents = new_cents
            bound.update_extras({"centroids": centroids_to_chapel(cents)})
            if stable:
                converged = True
                break
        return KmeansResult(
            centroids=cents,
            counts=counts,
            iterations=executed,
            version=self.version,
            counters=bound.counters,
            per_iteration_stats=stats,
            inertia=_inertia(points, cents),
            inertia_trace=trace,
            converged=converged,
        )

    # -- manual FR ------------------------------------------------------------------

    def _run_manual(
        self,
        points: np.ndarray,
        cents: np.ndarray,
        iterations: int,
        tol: float | None,
    ) -> KmeansResult:
        counters = OpCounters()
        stats: list[RunStats] = []
        trace: list[float] = []
        counts = np.zeros(self.k)
        converged = False
        executed = 0
        for _ in range(iterations):
            spec = manual_fr_spec(cents, counters)
            result = self.engine.run(spec, points)
            new_cents, counts, inertia = centroids_from_ro(result.ro, cents)
            stats.append(result.stats)
            trace.append(inertia)
            executed += 1
            stable = self._stable(cents, new_cents, tol)
            cents = new_cents
            if stable:
                converged = True
                break
        return KmeansResult(
            centroids=cents,
            counts=counts,
            iterations=executed,
            version="manual",
            counters=counters,
            per_iteration_stats=stats,
            inertia=_inertia(points, cents),
            inertia_trace=trace,
            converged=converged,
        )


def _inertia(points: np.ndarray, cents: np.ndarray) -> float:
    """Sum of squared distances to the nearest centroid (quality metric)."""
    d2 = ((points[:, None, :] - cents[None, :, :]) ** 2).sum(axis=2)
    return float(d2.min(axis=1).sum())
