"""Applications: the paper's two (k-means, PCA) plus extension apps."""

from repro.apps.kmeans import (
    KMEANS_CHAPEL_SOURCE,
    KmeansResult,
    KmeansRunner,
    centroids_from_ro,
    centroids_to_chapel,
    kmeans_numpy_reference,
    kmeans_ro_layout,
    manual_fr_spec,
)
from repro.apps.pca import (
    PCA_COV_SOURCE,
    PCA_MEAN_SOURCE,
    PcaResult,
    PcaRunner,
    pca_numpy_reference,
)
from repro.apps.histogram import (
    HISTOGRAM_CHAPEL_SOURCE,
    HistogramResult,
    HistogramRunner,
)
from repro.apps.apriori import (
    APRIORI_CHAPEL_SOURCE,
    AprioriResult,
    AprioriRunner,
    generate_transactions,
)
from repro.apps.em import EM_CHAPEL_SOURCE, EmResult, EmRunner
from repro.apps.windowed import (
    WINDOWED_CHAPEL_SOURCE,
    WindowedResult,
    WindowedRunner,
)

__all__ = [
    "KMEANS_CHAPEL_SOURCE",
    "KmeansRunner",
    "KmeansResult",
    "kmeans_ro_layout",
    "kmeans_numpy_reference",
    "centroids_to_chapel",
    "centroids_from_ro",
    "manual_fr_spec",
    "PCA_MEAN_SOURCE",
    "PCA_COV_SOURCE",
    "PcaRunner",
    "PcaResult",
    "pca_numpy_reference",
    "HISTOGRAM_CHAPEL_SOURCE",
    "HistogramRunner",
    "HistogramResult",
    "APRIORI_CHAPEL_SOURCE",
    "AprioriRunner",
    "AprioriResult",
    "generate_transactions",
    "EM_CHAPEL_SOURCE",
    "EmRunner",
    "EmResult",
    "WINDOWED_CHAPEL_SOURCE",
    "WindowedRunner",
    "WindowedResult",
]
