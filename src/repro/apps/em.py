"""Expectation-Maximization for Gaussian mixtures — an extension app.

EM is the classic "harder k-means" of the FREERIDE application family:
each iteration is still one generalized reduction (per point: compute
responsibilities against every cluster, fold weighted sufficient statistics
into the reduction object), followed by a closed-form M-step on the
combined object.  Diagonal covariances keep the reduction object dense:
one group per cluster with ``1 + 2*dim`` elements —
``[sum_r, sum_r*x_d ..., sum_r*x_d^2 ...]``.

The mini-Chapel rendering computes the responsibility normalizer with a
first cluster loop and re-derives each density in a second (locals are
scalars in the DSL) — same arithmetic, expressible without array locals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Any

import numpy as np

from repro.compiler.cache import compile_cached
from repro.compiler.translate import BACKENDS, kernel_technique
from repro.freeride.reduction_object import ReductionObject
from repro.freeride.runtime import FreerideEngine
from repro.freeride.spec import ReductionArgs, ReductionSpec
from repro.machine.counters import OpCounters
from repro.obs.profilestore import ProfileStore
from repro.obs.tracer import Tracer
from repro.util.errors import ReproError
from repro.util.validation import check_one_of, check_positive_int

__all__ = ["EM_CHAPEL_SOURCE", "EmResult", "EmRunner", "VERSIONS"]

VERSIONS = ("generated", "opt-1", "opt-2", "manual")

_VAR_FLOOR = 1e-6

EM_CHAPEL_SOURCE = """
class emReduction : ReduceScanOp {
  var k: int;
  var dim: int;
  var weights: [1..k] real;
  var means: [1..k][1..dim] real;
  var variances: [1..k][1..dim] real;

  def accumulate(x: [1..dim] real) {
    var total: real = 0.0;
    for c in 1..k {
      var e: real = 0.0;
      for d in 1..dim {
        var diff: real = x[d] - means[c][d];
        e = e + diff * diff / variances[c][d] + log(variances[c][d]);
      }
      total = total + weights[c] * exp(-0.5 * e);
    }
    for c in 1..k {
      var e2: real = 0.0;
      for d in 1..dim {
        var diff2: real = x[d] - means[c][d];
        e2 = e2 + diff2 * diff2 / variances[c][d] + log(variances[c][d]);
      }
      var r: real = weights[c] * exp(-0.5 * e2) / total;
      roAdd(c - 1, 0, r);
      for d in 1..dim {
        roAdd(c - 1, d, r * x[d]);
        roAdd(c - 1, dim + d, r * x[d] * x[d]);
      }
    }
  }
}
"""


def _densities(
    points: np.ndarray,
    weights: np.ndarray,
    means: np.ndarray,
    variances: np.ndarray,
) -> np.ndarray:
    """Unnormalized responsibilities, matching the DSL's arithmetic.

    Uses the same "exponent includes log-variance" form so compiled and
    manual versions agree to floating-point noise.
    """
    diff = points[:, None, :] - means[None, :, :]  # (n, k, d)
    e = (diff**2 / variances[None, :, :] + np.log(variances)[None, :, :]).sum(axis=2)
    return weights[None, :] * np.exp(-0.5 * e)  # (n, k)


@dataclass
class EmResult:
    """Fitted mixture parameters."""

    weights: np.ndarray
    means: np.ndarray
    variances: np.ndarray
    log_likelihood: float
    iterations: int
    version: str
    counters: OpCounters

    def responsibilities(self, points: np.ndarray) -> np.ndarray:
        dens = _densities(points, self.weights, self.means, self.variances)
        return dens / dens.sum(axis=1, keepdims=True)


class EmRunner:
    """Fits a k-component diagonal Gaussian mixture via FREERIDE passes."""

    def __init__(
        self,
        k: int,
        dim: int,
        version: str = "manual",
        num_threads: int = 1,
        executor: str = "serial",
        chunk_size: int | None = None,
        technique: str = "full_replication",
        backend: str = "scalar",
        tracer: "Tracer | None" = None,
        profile_store: "ProfileStore | str | bool | None" = None,
    ) -> None:
        check_positive_int(k, "k")
        check_positive_int(dim, "dim")
        self.k, self.dim = k, dim
        self.version = check_one_of(version, VERSIONS, "version")
        self.backend = check_one_of(backend, BACKENDS, "backend")
        self.engine = FreerideEngine(
            num_threads=num_threads, executor=executor, chunk_size=chunk_size,
            technique=technique, tracer=tracer,
            profile_store=profile_store,
        )
        #: RunStats of the most recent engine pass (None before the first)
        self.last_run_stats = None
        self.compiled = None
        if version != "manual":
            level = {"generated": 0, "opt-1": 1, "opt-2": 2}[version]
            self.compiled = compile_cached(
                EM_CHAPEL_SOURCE,
                {"k": k, "dim": dim},
                opt_level=level,
                backend=backend,
                technique=kernel_technique(technique),
            )

    def ro_layout(self) -> list[tuple[int, str]]:
        return [(1 + 2 * self.dim, "add")] * self.k

    # -- one E+M pass --------------------------------------------------------

    def _pass_compiled(self, bound, weights, means, variances):
        from repro.chapel.domains import Domain
        from repro.chapel.types import REAL, ArrayType, array_of
        from repro.chapel.values import from_python

        w_val = from_python(array_of(REAL, self.k), list(map(float, weights)))
        m_t = ArrayType(Domain(self.k), array_of(REAL, self.dim))
        m_val = from_python(m_t, [list(map(float, row)) for row in means])
        v_val = from_python(m_t, [list(map(float, row)) for row in variances])
        bound.update_extras({"weights": w_val, "means": m_val, "variances": v_val})
        spec, idx = bound.make_spec(self.ro_layout())
        result = self.engine.run(spec, idx)
        self.last_run_stats = result.stats
        return result.ro

    def _pass_manual(self, points, weights, means, variances, counters):
        k, dim = self.k, self.dim

        def setup(ro: ReductionObject) -> None:
            for _ in range(k):
                ro.alloc(1 + 2 * dim, "add")

        def reduction(args: ReductionArgs) -> None:
            chunk = np.asarray(args.data, dtype=np.float64)
            if chunk.size == 0:
                return
            dens = _densities(chunk, weights, means, variances)
            r = dens / dens.sum(axis=1, keepdims=True)  # (n, k)
            for c in range(k):
                vals = np.empty(1 + 2 * dim)
                vals[0] = r[:, c].sum()
                vals[1 : 1 + dim] = (r[:, c : c + 1] * chunk).sum(axis=0)
                vals[1 + dim :] = (r[:, c : c + 1] * chunk**2).sum(axis=0)
                args.ro.accumulate_group(c, vals)
            n = chunk.shape[0]
            counters.elements_processed += n
            counters.linear_reads += n * k * dim * 2
            counters.flops += n * k * (6 * dim + 4)
            counters.ro_updates += n * k * (1 + 2 * dim)

        spec = ReductionSpec(
            name="em-manual", setup_reduction_object=setup, reduction=reduction
        )
        result = self.engine.run(spec, points)
        self.last_run_stats = result.stats
        return result.ro

    def close(self) -> None:
        """Release the engine's worker pools and shared-memory segments."""
        self.engine.close()

    def __enter__(self) -> "EmRunner":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- the outer sequential loop ------------------------------------------------

    def run(
        self,
        points: np.ndarray,
        iterations: int = 10,
        seed: int = 0,
    ) -> EmResult:
        check_positive_int(iterations, "iterations")
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != self.dim:
            raise ReproError(f"points must be (n, {self.dim}), got {points.shape}")
        n = points.shape[0]
        if n < self.k:
            raise ReproError("need at least k points")

        rng = np.random.default_rng(seed)
        weights = np.full(self.k, 1.0 / self.k)
        means = points[rng.choice(n, self.k, replace=False)].copy()
        variances = np.full((self.k, self.dim), points.var(axis=0) + _VAR_FLOOR)

        counters = OpCounters()
        bound = None
        if self.compiled is not None:
            # dataset linearized once; parameters re-linearized per pass
            from repro.chapel.domains import Domain
            from repro.chapel.types import REAL, ArrayType, array_of
            from repro.chapel.values import from_python

            w_val = from_python(array_of(REAL, self.k), list(map(float, weights)))
            m_t = ArrayType(Domain(self.k), array_of(REAL, self.dim))
            m_val = from_python(m_t, [list(map(float, r)) for r in means])
            v_val = from_python(m_t, [list(map(float, r)) for r in variances])
            bound = self.compiled.bind(
                points, {"weights": w_val, "means": m_val, "variances": v_val}
            )

        for _ in range(iterations):
            if bound is not None:
                ro = self._pass_compiled(bound, weights, means, variances)
            else:
                ro = self._pass_manual(points, weights, means, variances, counters)
            # M-step from the combined sufficient statistics
            for c in range(self.k):
                vals = ro.get_group(c)
                sr = max(vals[0], 1e-12)
                mu = vals[1 : 1 + self.dim] / sr
                var = vals[1 + self.dim :] / sr - mu**2
                weights[c] = sr / n
                means[c] = mu
                variances[c] = np.maximum(var, _VAR_FLOOR)
            weights = weights / weights.sum()

        if bound is not None:
            counters.add(bound.counters)
        dens = _densities(points, weights, means, variances)
        ll = float(np.log(np.maximum(dens.sum(axis=1), 1e-300)).sum())
        return EmResult(
            weights=weights,
            means=means,
            variances=variances,
            log_likelihood=ll,
            iterations=iterations,
            version=self.version,
            counters=counters,
        )
