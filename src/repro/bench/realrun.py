"""Real wall-clock execution of the figure workloads (CI scale).

The simulated harness regenerates the paper's *shapes*; this module runs
the same four-version workloads for real — actual threads, actual kernels —
at a configurable scale, and reports measured seconds.

Interpretation caveat, documented here because it is where users will trip:
the compiled kernels are interpreted Python, so the GIL serializes them and
real thread-scaling is poor *by construction of the host language*, while
the ``manual`` version's numpy kernels release the GIL in C loops and scale
somewhat.  This is precisely why EXPERIMENTS.md uses the counter+simulator
method for the paper's figures; the real mode exists for sanity (the
workloads run, results verify) and for benchmarking this library itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.apps.kmeans import KmeansRunner
from repro.apps.pca import PcaRunner
from repro.bench.figures import FIGURES
from repro.data.datasets import KmeansConfig, PcaConfig
from repro.util.errors import BenchmarkError
from repro.util.validation import check_positive_int

__all__ = ["RealSweep", "run_figure_real", "format_real"]


@dataclass
class RealSweep:
    """Measured wall-clock seconds for one version across thread counts."""

    version: str
    seconds: dict[int, float] = field(default_factory=dict)
    verified: bool = True


def _time_once(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_figure_real(
    fig_id: str,
    scale: float = 1 / 2048,
    thread_counts: Sequence[int] = (1, 2, 4),
    repeats: int = 1,
    executor: str = "threads",
) -> dict[str, RealSweep]:
    """Actually run one figure's workload at ``scale`` of the paper size."""
    check_positive_int(repeats, "repeats")
    try:
        spec = FIGURES[fig_id]
    except KeyError:
        raise BenchmarkError(f"unknown figure {fig_id!r}; have {sorted(FIGURES)}")

    sweeps: dict[str, RealSweep] = {}
    if spec.app == "kmeans":
        cfg = spec.config
        assert isinstance(cfg, KmeansConfig)
        scaled = cfg.scaled(scale)
        points = scaled.generate()
        from repro.data.generators import initial_centroids

        cents = initial_centroids(points, scaled.k, seed=7)
        iterations = min(scaled.iterations, 2)  # CI-friendly
        reference = None
        for version in spec.versions:
            sweep = RealSweep(version=version)
            for p in thread_counts:
                runner = KmeansRunner(
                    scaled.k,
                    scaled.dim,
                    version=version,
                    num_threads=p,
                    executor=executor,
                    chunk_size=max(16, scaled.n_points // (4 * p)),
                )
                best = min(
                    _time_once(lambda: runner.run(points, cents, iterations))
                    for _ in range(repeats)
                )
                sweep.seconds[p] = best
            final = KmeansRunner(scaled.k, scaled.dim, version=version).run(
                points, cents, iterations
            )
            if reference is None:
                reference = final.centroids
            sweep.verified = bool(np.allclose(final.centroids, reference))
            sweeps[version] = sweep
        return sweeps

    assert isinstance(spec.config, PcaConfig)
    scaled_pca = spec.config.scaled_rows(0.02).scaled(scale * 20)
    matrix = scaled_pca.generate()
    reference = None
    for version in spec.versions:
        sweep = RealSweep(version=version)
        for p in thread_counts:
            runner = PcaRunner(
                scaled_pca.rows, version=version, num_threads=p, executor=executor,
                chunk_size=max(8, scaled_pca.cols // (4 * p)),
            )
            best = min(
                _time_once(lambda: runner.run(matrix)) for _ in range(repeats)
            )
            sweep.seconds[p] = best
        result = PcaRunner(scaled_pca.rows, version=version).run(matrix)
        if reference is None:
            reference = result.covariance
        sweep.verified = bool(np.allclose(result.covariance, reference))
        sweeps[version] = sweep
    return sweeps


def format_real(fig_id: str, sweeps: dict[str, RealSweep]) -> str:
    """Render the measured table (seconds; lower is better)."""
    versions = list(sweeps)
    thread_counts = sorted(next(iter(sweeps.values())).seconds)
    lines = [
        f"{fig_id.upper()} — REAL execution (Python wall-clock, CI scale; "
        "see module docstring for GIL caveats)",
        f"{'threads':>7}  " + "  ".join(f"{v:>12}" for v in versions),
    ]
    for p in thread_counts:
        cells = [f"{sweeps[v].seconds[p]:>12.4f}" for v in versions]
        lines.append(f"{p:>7}  " + "  ".join(cells))
    lines.append(
        "verified: "
        + ", ".join(f"{v}={'yes' if sweeps[v].verified else 'NO'}" for v in versions)
    )
    return "\n".join(lines)
