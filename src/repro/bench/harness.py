"""Simulation harness: profiles x dataset scale x threads -> seconds.

Builds the phase sequence one version executes (sequential linearization,
dynamic chunked local reduction per iteration, per-iteration extras
linearization for opt-2, replication combination) and prices it on the
simulated machine.  The phase structure is exactly the FREERIDE execution
the engine performs; only the *costs* come from the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.profiles import WorkloadProfile
from repro.freeride.sharedmem import SharedMemTechnique
from repro.machine.costmodel import XEON_E5345, CostModel
from repro.machine.counters import OpCounters
from repro.machine.simmachine import (
    ClusterCombinePhase,
    CombinePhase,
    NetworkModel,
    OverlapPhase,
    ParallelPhase,
    Phase,
    SequentialPhase,
    SimMachine,
    SimReport,
    lock_contention_factor,
)
from repro.util.errors import BenchmarkError
from repro.util.validation import check_positive_int

__all__ = ["SimulationConfig", "simulate_profile", "sweep_threads", "ThreadSweep"]


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs for one simulated run."""

    cost_model: CostModel = XEON_E5345
    #: chunks per thread for dynamic scheduling (k-means uses many small
    #: chunks; Phoenix-style work queues balance them well)
    chunks_per_thread: int = 4
    #: fixed total chunk count (overrides chunks_per_thread) — PCA's large
    #: elements give it a small, fixed number of splits, which is the
    #: paper's "difficulty in achieving perfect load balance"
    num_chunks: int | None = None
    technique: SharedMemTechnique = SharedMemTechnique.FULL_REPLICATION
    scheduling: str = "dynamic"
    #: "sequential" is what the paper's implementation does ("linearization
    #: is done sequentially"); "parallel" models the future work it proposes
    #: ("performing linearization in parallel"), splitting the copy across
    #: threads; "overlap" models the other proposal ("overlapping
    #: linearization with processing of data" / the "pipelining strategy"):
    #: one thread streams the copy while the others start reducing.
    linearization_mode: str = "sequential"
    #: cluster width: each node runs the local pipeline on its block of the
    #: data (threads are per node), then the global combination merges the
    #: per-node reduction objects over the network
    num_nodes: int = 1
    network: "NetworkModel" = None  # type: ignore[assignment]


def _chunk_sizes(n: int, num_chunks: int) -> list[int]:
    base, extra = divmod(n, num_chunks)
    return [base + (1 if i < extra else 0) for i in range(num_chunks)]


def simulate_profile(
    profile: WorkloadProfile,
    n_elements: int,
    iterations: int,
    num_threads: int,
    config: SimulationConfig = SimulationConfig(),
) -> SimReport:
    """Price one version at one thread count."""
    check_positive_int(n_elements, "n_elements")
    check_positive_int(iterations, "iterations")
    check_positive_int(num_threads, "num_threads")
    check_positive_int(config.num_nodes, "num_nodes")
    cm = config.cost_model
    phases: list[Phase] = []

    # Nodes run identical local pipelines concurrently on blocks of the
    # data; we simulate the widest node's share and add the cross-node
    # combination explicitly.
    if config.num_nodes > 1:
        n_elements = -(-n_elements // config.num_nodes)  # ceil division
    network = config.network or NetworkModel()

    if config.linearization_mode not in ("sequential", "parallel", "overlap"):
        raise BenchmarkError(
            f"unknown linearization_mode {config.linearization_mode!r}"
        )
    overlap_cycles = 0.0
    if profile.linearize_data:
        bytes_ = n_elements * profile.elem_bytes
        cycles = cm.cycles(OpCounters(bytes_linearized=bytes_))
        if config.linearization_mode == "parallel":
            per_thread = cycles / num_threads
            phases.append(
                ParallelPhase(
                    "linearization", tuple([per_thread] * num_threads)
                )
            )
        elif config.linearization_mode == "overlap":
            overlap_cycles = cycles  # fused into the first reduction phase
        else:
            phases.append(SequentialPhase("linearization", cycles))

    num_chunks = config.num_chunks or config.chunks_per_thread * num_threads
    if num_chunks < 1:
        raise BenchmarkError("need at least one chunk")
    sizes = _chunk_sizes(n_elements, num_chunks)

    replication = config.technique is SharedMemTechnique.FULL_REPLICATION
    # colored waves update the shared RO lock-free (like replication) but
    # keep a single copy (like the locking techniques), so the two gates
    # below are deliberately distinct
    lock_free = replication or config.technique is SharedMemTechnique.COLORED

    for _ in range(iterations):
        if profile.extras_bytes_per_iteration:
            phases.append(
                SequentialPhase(
                    "linearization",
                    cm.cycles(
                        OpCounters(
                            bytes_linearized=profile.extras_bytes_per_iteration
                        )
                    ),
                )
            )
        for pw in profile.phases:
            per_elem = pw.per_element.copy()
            if not lock_free:
                # every reduction-object update takes a (possibly contended)
                # lock under the locking techniques
                factor = lock_contention_factor(
                    num_threads,
                    _num_locks(pw.ro_elements, config.technique),
                )
                per_elem.lock_acquisitions = per_elem.ro_updates * factor
            cycles_per_element = cm.cycles(per_elem, config.technique)
            chunk_costs = tuple(s * cycles_per_element for s in sizes)
            if overlap_cycles > 0.0:
                # pipeline the one-time linearization with the first pass
                phases.append(
                    OverlapPhase(
                        "local reduction",
                        sequential_cycles=overlap_cycles,
                        chunk_costs=chunk_costs,
                        scheduling=config.scheduling,
                    )
                )
                overlap_cycles = 0.0
            else:
                phases.append(
                    ParallelPhase(
                        "local reduction",
                        chunk_costs,
                        scheduling=config.scheduling,
                    )
                )
            copies = num_threads if replication else 1
            phases.append(
                CombinePhase(
                    "combination",
                    num_copies=copies,
                    elements=pw.ro_elements,
                    cycles_per_element=cm.cycles_per_merge_element,
                )
            )
            if config.num_nodes > 1:
                phases.append(
                    ClusterCombinePhase(
                        "global combination",
                        num_nodes=config.num_nodes,
                        ro_elements=pw.ro_elements,
                        ro_bytes=pw.ro_elements * 8,
                        cycles_per_element=cm.cycles_per_merge_element,
                        network=network,
                    )
                )

    machine = SimMachine(cm, num_threads, scheduling=config.scheduling)
    return machine.run(phases)


def _num_locks(ro_elements: int, technique: SharedMemTechnique) -> int:
    from repro.freeride.sharedmem import ELEMS_PER_CACHE_LINE

    if technique is SharedMemTechnique.CACHE_SENSITIVE_LOCKING:
        return max(1, ro_elements // ELEMS_PER_CACHE_LINE)
    return max(1, ro_elements)


@dataclass
class ThreadSweep:
    """One version's simulated times across thread counts."""

    version: str
    seconds: dict[int, float] = field(default_factory=dict)
    reports: dict[int, SimReport] = field(default_factory=dict)

    def speedup(self, threads: int) -> float:
        return self.seconds[min(self.seconds)] / self.seconds[threads]

    def phase_seconds(self, threads: int, name: str) -> float:
        return self.reports[threads].phase_seconds(name)


def sweep_threads(
    profile: WorkloadProfile,
    n_elements: int,
    iterations: int,
    thread_counts: tuple[int, ...] = (1, 2, 4, 8),
    config: SimulationConfig = SimulationConfig(),
) -> ThreadSweep:
    """Price one version across the paper's thread counts."""
    sweep = ThreadSweep(version=profile.version)
    for p in thread_counts:
        report = simulate_profile(profile, n_elements, iterations, p, config)
        sweep.seconds[p] = report.total_seconds
        sweep.reports[p] = report
    return sweep
