"""Formatting for figure reproductions: the series the paper plots."""

from __future__ import annotations

from repro.bench.figures import FigureResult, shape_checks

__all__ = [
    "format_figure",
    "format_speedups",
    "format_breakdown",
    "format_checks",
    "full_report",
]


def format_figure(result: FigureResult) -> str:
    """A table of simulated execution times, one row per thread count."""
    spec = result.spec
    versions = list(spec.versions)
    lines = [
        f"{spec.fig_id.upper()} — {spec.title} (simulated seconds, "
        f"{spec.iterations} iteration(s), n={result.sweeps[versions[0]].reports[1].num_threads and ''}"
        f"{_n_elements(result):,} elements)",
        _row(["threads"] + versions),
        _row(["-" * 7] + ["-" * 12] * len(versions)),
    ]
    for p in result.thread_counts:
        cells = [str(p)] + [f"{result.seconds(v, p):.3f}" for v in versions]
        lines.append(_row(cells))
    return "\n".join(lines)


def _n_elements(result: FigureResult) -> int:
    spec = result.spec
    return spec.n_elements


def _row(cells: list[str]) -> str:
    first, rest = cells[0], cells[1:]
    return f"{first:>7}  " + "  ".join(f"{c:>12}" for c in rest)


def format_speedups(result: FigureResult) -> str:
    """Speedup-vs-1-thread table (the scalability the paper discusses)."""
    versions = list(result.spec.versions)
    lines = [
        "speedup vs 1 thread",
        _row(["threads"] + versions),
    ]
    for p in result.thread_counts:
        cells = [str(p)] + [
            f"{result.sweeps[v].speedup(p):.2f}x" for v in versions
        ]
        lines.append(_row(cells))
    return "\n".join(lines)


def format_checks(result: FigureResult) -> str:
    """The paper's qualitative claims, evaluated."""
    checks = shape_checks(result)
    width = max(len(k) for k in checks)
    lines = ["shape checks (paper §V claims):"]
    for name, ok in checks.items():
        lines.append(f"  {name:<{width}}  {'PASS' if ok else 'FAIL'}")
    return "\n".join(lines)


def format_breakdown(result: FigureResult, version: str) -> str:
    """Per-phase seconds for one version — where the time actually goes.

    This is the view that explains the paper's §V observations: watch the
    sequential ``linearization`` row stay constant while ``local reduction``
    shrinks with threads.
    """
    sweep = result.sweeps[version]
    phase_names: list[str] = []
    for p in result.thread_counts:
        for pr in sweep.reports[p].phases:
            if pr.name not in phase_names:
                phase_names.append(pr.name)
    lines = [f"phase breakdown — {version} (seconds)"]
    lines.append(_row(["threads"] + phase_names))
    for p in result.thread_counts:
        cells = [str(p)] + [
            f"{sweep.reports[p].phase_seconds(name):.3f}" for name in phase_names
        ]
        lines.append(_row(cells))
    return "\n".join(lines)


def full_report(result: FigureResult) -> str:
    """Times + speedups + opt-2 breakdown + checks for one figure."""
    parts = [format_figure(result), format_speedups(result)]
    if "opt-2" in result.sweeps:
        parts.append(format_breakdown(result, "opt-2"))
    parts.append(format_checks(result))
    return "\n\n".join(parts)
