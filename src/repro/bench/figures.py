"""Per-figure configurations and runners (the paper's Figures 9-13).

Each figure spec names the workload parameters from §V, which versions the
paper plots, and how the input is chunked.  ``run_figure`` measures the
version profiles on samples, simulates at the paper's full dataset scale,
and evaluates the paper's qualitative claims as named shape checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.bench.harness import SimulationConfig, ThreadSweep, sweep_threads
from repro.bench.profiles import (
    KMEANS_VERSIONS,
    PCA_VERSIONS,
    measure_kmeans_profiles,
    measure_pca_profiles,
)
from repro.data.datasets import (
    KMEANS_LARGE_K10,
    KMEANS_LARGE_K100_I1,
    KMEANS_SMALL,
    PCA_LARGE,
    PCA_SMALL,
    KmeansConfig,
    PcaConfig,
)
from repro.util.errors import BenchmarkError

__all__ = ["FigureSpec", "FigureResult", "FIGURES", "run_figure", "shape_checks"]

THREADS = (1, 2, 4, 8)

#: PCA splits its input into a small fixed number of work units (its
#: elements are 1000-dim columns); the resulting chunk-count quantization is
#: the load-balance limit the paper reports at 8 threads.
PCA_NUM_CHUNKS = 12


@dataclass(frozen=True)
class FigureSpec:
    """One of the paper's evaluation figures."""

    fig_id: str
    title: str
    app: str  # "kmeans" | "pca"
    config: KmeansConfig | PcaConfig
    versions: tuple[str, ...]
    sim: SimulationConfig = SimulationConfig()

    @property
    def iterations(self) -> int:
        return self.config.iterations if isinstance(self.config, KmeansConfig) else 1

    @property
    def n_elements(self) -> int:
        if isinstance(self.config, KmeansConfig):
            return self.config.n_points
        return self.config.cols


FIGURES: dict[str, FigureSpec] = {
    "fig9": FigureSpec(
        "fig9",
        "K-means: 12 MB dataset, k=100, i=10",
        "kmeans",
        KMEANS_SMALL,
        KMEANS_VERSIONS,
    ),
    "fig10": FigureSpec(
        "fig10",
        "K-means: 1.2 GB dataset, k=10, i=10",
        "kmeans",
        KMEANS_LARGE_K10,
        KMEANS_VERSIONS,
    ),
    "fig11": FigureSpec(
        "fig11",
        "K-means: 1.2 GB dataset, k=100, i=1",
        "kmeans",
        KMEANS_LARGE_K100_I1,
        KMEANS_VERSIONS,
    ),
    "fig12": FigureSpec(
        "fig12",
        "PCA: rows=1000, columns=10,000",
        "pca",
        PCA_SMALL,
        PCA_VERSIONS,
        SimulationConfig(num_chunks=PCA_NUM_CHUNKS),
    ),
    "fig13": FigureSpec(
        "fig13",
        "PCA: rows=1000, columns=100,000",
        "pca",
        PCA_LARGE,
        PCA_VERSIONS,
        SimulationConfig(num_chunks=PCA_NUM_CHUNKS),
    ),
}


@dataclass
class FigureResult:
    """Simulated reproduction of one figure."""

    spec: FigureSpec
    sweeps: dict[str, ThreadSweep]
    thread_counts: tuple[int, ...] = THREADS

    def seconds(self, version: str, threads: int) -> float:
        return self.sweeps[version].seconds[threads]

    def ratio(self, a: str, b: str, threads: int = 1) -> float:
        """time(a) / time(b) at a thread count."""
        return self.seconds(a, threads) / self.seconds(b, threads)


def run_figure(
    fig_id: str,
    thread_counts: tuple[int, ...] = THREADS,
    scale: float = 1.0,
) -> FigureResult:
    """Measure profiles and simulate one figure at the paper's scale.

    ``scale`` shrinks the element count (for quick runs); the default
    reproduces the full dataset sizes.  Profile *measurement* always runs on
    small samples regardless of scale.
    """
    try:
        spec = FIGURES[fig_id]
    except KeyError:
        raise BenchmarkError(f"unknown figure {fig_id!r}; have {sorted(FIGURES)}")

    if spec.app == "kmeans":
        assert isinstance(spec.config, KmeansConfig)
        profiles = measure_kmeans_profiles(
            spec.config.k, spec.config.dim, versions=spec.versions
        )
        n = max(1, int(spec.config.n_points * scale))
    else:
        assert isinstance(spec.config, PcaConfig)
        profiles = measure_pca_profiles(spec.config.rows, versions=spec.versions)
        n = max(1, int(spec.config.cols * scale))

    sweeps = {
        version: sweep_threads(
            profiles[version], n, spec.iterations, thread_counts, spec.sim
        )
        for version in spec.versions
    }
    return FigureResult(spec=spec, sweeps=sweeps, thread_counts=thread_counts)


# --------------------------------------------------------------- shape checks


def shape_checks(result: FigureResult) -> dict[str, bool]:
    """Evaluate the paper's qualitative claims for a figure's result.

    Returns named booleans; EXPERIMENTS.md records them per figure.
    """
    spec = result.spec
    checks: dict[str, bool] = {}
    tmax = max(result.thread_counts)
    have = set(result.thread_counts)
    if spec.app == "kmeans":
        # ~10% gain from opt-1 (strength reduction)
        r = result.ratio("generated", "opt-1")
        checks["opt1_gain_about_10pct"] = 1.03 <= r <= 1.25
        # ~8x gain from opt-2 (paper: "reduced by a factor around 8")
        r = result.ratio("opt-1", "opt-2")
        checks["opt2_gain_about_8x"] = 5.0 <= r <= 11.0
        # opt-2 within 20% of manual at 1 thread.  The paper makes the <20%
        # claim for Figure 9 (12 MB, k=100); for the 1.2 GB runs it only
        # says trends are "very similar", so those get a looser bound.
        bound = 1.20 if spec.fig_id == "fig9" else 1.25
        checks["opt2_close_to_manual_1thread"] = (
            result.ratio("opt-2", "manual") <= bound
        )
        # every version scales well to 8 threads
        checks["all_versions_scale"] = all(
            result.sweeps[v].speedup(tmax) >= 0.6 * tmax for v in spec.versions
        )
        # the opt-2/manual gap widens with threads (sequential linearization)
        checks["opt2_gap_grows_with_threads"] = result.ratio(
            "opt-2", "manual", tmax
        ) > result.ratio("opt-2", "manual", 1)
    else:
        checks["opt2_within_20pct_of_manual"] = (
            result.ratio("opt-2", "manual") <= 1.20
        )
        if {4, 8} <= have:  # the 4-vs-8-thread claims need both points
            for v in spec.versions:
                s4 = result.sweeps[v].speedup(4)
                s8 = result.sweeps[v].speedup(8)
                checks[f"{v}_scales_to_4_threads"] = s4 >= 3.0
                checks[f"{v}_limited_at_8_threads"] = (s8 / s4) < 1.8
    return checks
