"""Command-line figure regeneration: ``python -m repro.bench [fig9 ...]``.

With no arguments, regenerates every figure (9-13) at the paper's dataset
scales and prints the full reports.  ``--scale`` shrinks the element counts
for a quick look; ``--threads`` changes the sweep.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.figures import FIGURES, run_figure
from repro.bench.report import full_report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        help=f"figure ids from {sorted(FIGURES)} (default: all)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="element-count scale factor (default 1.0 = paper scale)",
    )
    parser.add_argument(
        "--threads",
        type=str,
        default="1,2,4,8",
        help="comma-separated thread counts (default 1,2,4,8)",
    )
    parser.add_argument(
        "--out",
        type=str,
        default=None,
        help="also write the reports to this file",
    )
    args = parser.parse_args(argv)

    thread_counts = tuple(int(t) for t in args.threads.split(","))
    fig_ids = args.figures or sorted(FIGURES)
    reports: list[str] = []
    for fig_id in fig_ids:
        result = run_figure(fig_id, thread_counts=thread_counts, scale=args.scale)
        text = full_report(result)
        reports.append(text)
        print(text)
        print()
    if args.out:
        from pathlib import Path

        Path(args.out).write_text("\n\n".join(reports) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
