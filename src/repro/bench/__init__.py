"""Benchmark harness: measured profiles, simulation, figure regeneration."""

from repro.bench.figures import (
    FIGURES,
    FigureResult,
    FigureSpec,
    run_figure,
    shape_checks,
)
from repro.bench.harness import (
    SimulationConfig,
    ThreadSweep,
    simulate_profile,
    sweep_threads,
)
from repro.bench.profiles import (
    KMEANS_VERSIONS,
    PCA_VERSIONS,
    PhaseWork,
    WorkloadProfile,
    measure_kmeans_profiles,
    measure_pca_profiles,
)
from repro.bench.realrun import RealSweep, format_real, run_figure_real
from repro.bench.report import format_checks, format_figure, format_speedups, full_report

__all__ = [
    "FIGURES",
    "FigureSpec",
    "FigureResult",
    "run_figure",
    "shape_checks",
    "SimulationConfig",
    "simulate_profile",
    "sweep_threads",
    "ThreadSweep",
    "WorkloadProfile",
    "PhaseWork",
    "measure_kmeans_profiles",
    "measure_pca_profiles",
    "KMEANS_VERSIONS",
    "PCA_VERSIONS",
    "format_figure",
    "format_speedups",
    "format_checks",
    "full_report",
    "run_figure_real",
    "format_real",
    "RealSweep",
]
