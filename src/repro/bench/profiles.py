"""Measured per-element operation profiles for the paper's versions.

The benchmarks never hardcode per-version cost formulas: each version's
instrumented kernel is **executed on a small sample** and its counter
ledger, normalized per element, becomes the version's profile.  The
simulated machine then scales the profile to the paper's dataset sizes.

For PCA the per-element counts grow quadratically with the dimensionality
``m`` (the covariance loop is triangular), so running the kernels at
``m = 1000`` on a sample would already take minutes in Python.  Instead we
measure at three small dimensionalities and fit the exact polynomial
``count(m) = a + b*m + c*m(m+1)/2`` per counter field — exact because every
counter of the loop nest is a polynomial of precisely that form — then
evaluate at the target ``m``.  Tests verify the fit reproduces a held-out
fourth measurement exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dc_fields

import numpy as np

from repro.apps.kmeans import KmeansRunner, kmeans_ro_layout
from repro.apps.pca import (
    PCA_COV_SOURCE,
    PCA_MEAN_SOURCE,
    cov_ro_layout,
    manual_cov_spec,
    manual_mean_spec,
    mean_ro_layout,
)
from repro.compiler.cache import compile_cached
from repro.data.generators import initial_centroids, kmeans_points, pca_matrix
from repro.freeride.runtime import FreerideEngine
from repro.machine.counters import OpCounters
from repro.util.errors import BenchmarkError

__all__ = [
    "PhaseWork",
    "WorkloadProfile",
    "measure_kmeans_profiles",
    "measure_pca_profiles",
    "KMEANS_VERSIONS",
    "PCA_VERSIONS",
]

KMEANS_VERSIONS = ("generated", "opt-1", "opt-2", "manual")
#: The paper's Figures 12/13 compare only these two for PCA.
PCA_VERSIONS = ("opt-2", "manual")

_OPT_LEVEL = {"generated": 0, "opt-1": 1, "opt-2": 2}


@dataclass
class PhaseWork:
    """One reduction pass: per-element compute + its reduction-object size."""

    name: str
    per_element: OpCounters
    ro_elements: int


@dataclass
class WorkloadProfile:
    """Everything the simulator needs to price one version of one app."""

    app: str
    version: str
    elem_bytes: int
    #: compiled versions linearize the input dataset once (sequentially)
    linearize_data: bool
    #: bytes of auxiliary structures linearized per outer iteration (opt-2)
    extras_bytes_per_iteration: int
    phases: list[PhaseWork] = field(default_factory=list)


def _compute_only(counters: OpCounters, n: int) -> OpCounters:
    """Per-element compute counters: linearization charges stripped."""
    c = counters.copy()
    c.bytes_linearized = 0.0
    c.elements_processed = n
    return c.per_element()


# --------------------------------------------------------------------- k-means


def measure_kmeans_profiles(
    k: int,
    dim: int,
    versions: tuple[str, ...] = KMEANS_VERSIONS,
    sample_n: int | None = None,
    seed: int = 101,
) -> dict[str, WorkloadProfile]:
    """Execute every version on a sample and return measured profiles."""
    n = sample_n or max(2 * k, 128)
    points = kmeans_points(n, dim, seed=seed)
    cents = initial_centroids(points, k, seed=seed + 1)
    ro_elements = sum(e for e, _ in kmeans_ro_layout(k, dim))
    profiles: dict[str, WorkloadProfile] = {}
    for version in versions:
        runner = KmeansRunner(k, dim, version=version, num_threads=1)
        result = runner.run(points, cents, iterations=1)
        per_elem = _compute_only(result.counters, n)
        profiles[version] = WorkloadProfile(
            app="kmeans",
            version=version,
            elem_bytes=dim * 8,
            linearize_data=version != "manual",
            extras_bytes_per_iteration=(k * dim * 8 if version == "opt-2" else 0),
            phases=[PhaseWork("local reduction", per_elem, ro_elements)],
        )
    return profiles


# ------------------------------------------------------------------------- PCA


def _measure_pca_at(version: str, m: int, sample_n: int, seed: int) -> tuple[OpCounters, OpCounters]:
    """Measured per-element counters for (mean phase, cov phase) at one m."""
    matrix = pca_matrix(m, sample_n, rank=min(4, m), seed=seed)
    columns = np.ascontiguousarray(matrix.T)
    engine = FreerideEngine(num_threads=1)
    if version == "manual":
        counters_mean = OpCounters()
        res = engine.run(manual_mean_spec(m, counters_mean), columns)
        sums = res.ro.get_group(0)
        mean = sums / max(res.ro.get(1, 0), 1.0)
        counters_cov = OpCounters()
        engine.run(manual_cov_spec(m, mean, counters_cov), columns)
        return (
            _compute_only(counters_mean, sample_n),
            _compute_only(counters_cov, sample_n),
        )
    level = _OPT_LEVEL[version]
    mean_comp = compile_cached(PCA_MEAN_SOURCE, {"m": m}, opt_level=level)
    bound = mean_comp.bind(columns)
    spec, idx = bound.make_spec(mean_ro_layout(m))
    res = engine.run(spec, idx)
    mean = res.ro.get_group(0) / max(res.ro.get(1, 0), 1.0)

    from repro.chapel.types import REAL, array_of
    from repro.chapel.values import from_python

    cov_comp = compile_cached(PCA_COV_SOURCE, {"m": m}, opt_level=level)
    mean_value = from_python(array_of(REAL, m), list(map(float, mean)))
    cov_bound = cov_comp.bind(columns, {"mean": mean_value})
    spec2, idx2 = cov_bound.make_spec(cov_ro_layout(m))
    engine.run(spec2, idx2)
    return (
        _compute_only(bound.counters, sample_n),
        _compute_only(cov_bound.counters, sample_n),
    )


def _fit_and_eval(ms: list[int], samples: list[OpCounters], target_m: int) -> OpCounters:
    """Fit count(m) = a + b*m + c*m(m+1)/2 per field; evaluate at target."""
    basis = np.array([[1.0, m, m * (m + 1) / 2.0] for m in ms])
    out = OpCounters()
    for f in dc_fields(OpCounters):
        y = np.array([getattr(s, f.name) for s in samples])
        coef = np.linalg.solve(basis, y)
        value = float(
            coef[0] + coef[1] * target_m + coef[2] * target_m * (target_m + 1) / 2.0
        )
        setattr(out, f.name, max(0.0, value))
    out.elements_processed = 1.0
    return out


def measure_pca_profiles(
    m: int,
    versions: tuple[str, ...] = PCA_VERSIONS,
    sample_n: int = 24,
    fit_ms: tuple[int, int, int] = (12, 20, 32),
    seed: int = 202,
) -> dict[str, WorkloadProfile]:
    """Measured-and-extrapolated PCA profiles at dimensionality ``m``."""
    if len(set(fit_ms)) != 3:
        raise BenchmarkError("need three distinct fit dimensionalities")
    profiles: dict[str, WorkloadProfile] = {}
    for version in versions:
        means, covs = [], []
        for fm in fit_ms:
            c_mean, c_cov = _measure_pca_at(version, fm, sample_n, seed)
            means.append(c_mean)
            covs.append(c_cov)
        per_mean = _fit_and_eval(list(fit_ms), means, m)
        per_cov = _fit_and_eval(list(fit_ms), covs, m)
        profiles[version] = WorkloadProfile(
            app="pca",
            version=version,
            elem_bytes=m * 8,
            linearize_data=version != "manual",
            # opt-2 linearizes the mean vector before the covariance phase
            extras_bytes_per_iteration=(m * 8 if version != "manual" else 0),
            phases=[
                PhaseWork("mean phase", per_mean, m + 1),
                PhaseWork("covariance phase", per_cov, m * m),
            ],
        )
    return profiles
