"""Incremental delta execution: O(|Δ|) append/retract over a baseline run.

The batch pipeline (linearize → split → accumulate → combine) recomputes
the whole reduction whenever the dataset changes.  This module holds the
state that lets :meth:`repro.freeride.runtime.FreerideEngine.run_delta`
update the committed reduction object in work proportional to the change:

:class:`DeltaSession`
    the handle ``run_baseline`` returns — the committed
    :class:`~repro.freeride.reduction_object.ReductionObject`, a liveness
    bitmap over the (logical) element positions, and the checkpoint ring.
    Retraction is *logical* (tombstones): positions never shift, so
    position-dependent kernels (e.g. windowed's ``elemIdx() / win`` group
    form) stay valid and a delta result is comparable element-for-element
    with a cold run over the surviving elements at their original
    positions.

:class:`ROCheckpoint`
    a bounded ring of per-epoch copy-on-write group snapshots.  Before a
    delta batch mutates a group, its pre-image is saved once per epoch;
    a batch that fails mid-commit rolls back in O(groups touched), and the
    sealed ring reconstructs the reduction object as of any retained epoch
    (windowed / streaming queries) without ever copying untouched groups.

Invertibility decides the retract strategy per group (see
:data:`~repro.freeride.reduction_object.INVERTIBLE_ACCUMULATE_OPS` and the
RS034/RS035 diagnostics): ``add`` groups subtract the retracted
contributions directly; min/max groups re-reduce from the surviving
elements, restricted to the groups the effect summary
(:meth:`~repro.compiler.groupbounds.GroupBounds.groups_for_range`) proves
a retracted range can touch.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.freeride.reduction_object import ReductionObject
from repro.util.errors import FreerideError
from repro.util.validation import check_positive_int

__all__ = [
    "DeltaSession",
    "ROCheckpoint",
    "contiguous_runs",
    "mask_runs",
]


def contiguous_runs(indices: np.ndarray) -> list[tuple[int, int]]:
    """Collapse a sorted, unique index array into ``[start, end)`` runs."""
    if indices.size == 0:
        return []
    breaks = np.nonzero(np.diff(indices) != 1)[0]
    starts = np.concatenate([[0], breaks + 1])
    ends = np.concatenate([breaks, [indices.size - 1]])
    return [(int(indices[s]), int(indices[e]) + 1) for s, e in zip(starts, ends)]


def mask_runs(mask: np.ndarray) -> list[tuple[int, int]]:
    """Maximal ``[start, end)`` runs of True in a boolean mask."""
    if mask.size == 0:
        return []
    edges = np.diff(mask.astype(np.int8))
    starts = list(np.nonzero(edges == 1)[0] + 1)
    ends = list(np.nonzero(edges == -1)[0] + 1)
    if mask[0]:
        starts.insert(0, 0)
    if mask[-1]:
        ends.append(mask.size)
    return [(int(s), int(e)) for s, e in zip(starts, ends)]


@dataclass
class _EpochRecord:
    """Pre-images of everything one delta epoch mutated."""

    epoch: int
    #: group id -> (values before this epoch's commit, touched bit before)
    groups: dict[int, tuple[np.ndarray, bool]] = field(default_factory=dict)
    update_count: int = 0
    n_elements: int = 0
    live_count: int = 0


class ROCheckpoint:
    """Bounded ring of copy-on-write reduction-object snapshots.

    ``begin(epoch, ro, ...)`` opens a record; :meth:`save_group` copies a
    group's pre-image the *first* time the epoch touches it (later saves of
    the same group are counted as ``hits`` — the COW dedup the delta
    counters report).  :meth:`rollback` restores the open record and drops
    it; :meth:`commit` seals it into the ring, evicting the oldest record
    past ``capacity``.  :meth:`restore` rebuilds the full object as of any
    epoch still covered by the ring.
    """

    def __init__(self, capacity: int = 8) -> None:
        check_positive_int(capacity, "capacity")
        self.capacity = capacity
        self._ring: deque[_EpochRecord] = deque()
        self._open: _EpochRecord | None = None
        #: pre-image copies actually taken (one per (epoch, group))
        self.saves = 0
        #: save_group calls answered by an existing pre-image (COW dedup)
        self.hits = 0

    # -- epoch lifecycle ------------------------------------------------------

    def begin(
        self, epoch: int, ro: ReductionObject, *, n_elements: int, live_count: int
    ) -> None:
        if self._open is not None:
            raise FreerideError(
                f"checkpoint epoch {self._open.epoch} still open; "
                "commit or roll back before beginning another"
            )
        self._open = _EpochRecord(
            epoch=epoch,
            update_count=ro.update_count,
            n_elements=n_elements,
            live_count=live_count,
        )

    def save_group(self, ro: ReductionObject, group: int) -> None:
        """Save a group's pre-image once per open epoch (copy-on-write)."""
        rec = self._require_open()
        if group in rec.groups:
            self.hits += 1
            return
        rec.groups[group] = (ro.get_group(group), ro.is_touched(group))
        self.saves += 1

    def rollback(self, ro: ReductionObject) -> tuple[int, int, int]:
        """Undo the open epoch; returns ``(groups_restored, n_elements, live)``.

        O(groups touched): only saved pre-images are written back.  The
        record is discarded — the failed epoch never enters the ring.
        """
        rec = self._require_open()
        for group, (values, touched) in rec.groups.items():
            ro.set_group(group, values, touched)
        ro.update_count = rec.update_count
        self._open = None
        return len(rec.groups), rec.n_elements, rec.live_count

    def commit(self) -> None:
        """Seal the open epoch into the ring (evicting past capacity)."""
        rec = self._require_open()
        self._ring.append(rec)
        self._open = None
        while len(self._ring) > self.capacity:
            self._ring.popleft()

    def _require_open(self) -> _EpochRecord:
        if self._open is None:
            raise FreerideError("no checkpoint epoch open")
        return self._open

    # -- windowed / streaming queries -----------------------------------------

    def epochs(self) -> list[int]:
        """Sealed epochs currently retained, oldest first."""
        return [rec.epoch for rec in self._ring]

    def restorable_epochs(self, current_epoch: int) -> list[int]:
        """Epochs :meth:`restore` can rebuild, oldest first.

        The record sealed for epoch ``e`` holds the pre-images of what ``e``
        changed, so the state *as of the end of* epoch ``e - 1`` is
        reachable while that record is retained.
        """
        reachable = [current_epoch]
        for rec in reversed(self._ring):
            if rec.epoch != reachable[-1]:
                break
            reachable.append(rec.epoch - 1)
        return sorted(reachable)

    def restore(
        self, ro: ReductionObject, epoch: int, current_epoch: int
    ) -> ReductionObject:
        """Rebuild the reduction object as of the end of ``epoch``.

        Copies the current object, then walks the ring from newest to
        oldest applying the pre-images of every sealed epoch after the
        target — the oldest applicable pre-image of each group wins, which
        is exactly its value when the target epoch ended.
        """
        if epoch not in self.restorable_epochs(current_epoch):
            raise FreerideError(
                f"epoch {epoch} is outside the checkpoint ring "
                f"(restorable: {self.restorable_epochs(current_epoch)})"
            )
        past = ro.copy()
        for rec in reversed(self._ring):
            if rec.epoch <= epoch:
                break
            for group, (values, touched) in rec.groups.items():
                past.set_group(group, values, touched)
            past.update_count = rec.update_count
        return past

    @property
    def retained_groups(self) -> int:
        """Total group pre-images held by the sealed ring (memory gauge)."""
        return sum(len(rec.groups) for rec in self._ring)


@dataclass
class DeltaSession:
    """A baseline run plus the state needed to apply deltas to it.

    Produced by :meth:`~repro.freeride.runtime.FreerideEngine.run_baseline`
    and threaded through every
    :meth:`~repro.freeride.runtime.FreerideEngine.run_delta` call.  The
    session owns the committed reduction object; retracted elements are
    tombstoned in :attr:`live` (positions never shift).
    """

    #: the committed reduction object (mutated in place by deltas)
    ro: ReductionObject
    #: total logical positions, including tombstoned (retracted) ones
    n_elements: int
    #: liveness bitmap over ``[0, n_elements)``
    live: np.ndarray
    #: delta epochs applied so far (0 = baseline only)
    epoch: int
    #: checkpoint ring for rollback and windowed queries
    checkpoints: ROCheckpoint
    #: rebuilds ``(spec, data)`` over the current dataset — compiled
    #: sessions re-run ``make_spec`` after the buffer grows, manual
    #: sessions re-bind the stored array
    respec: Callable[["DeltaSession", tuple[int, int] | None], tuple[Any, Any]]
    #: appends rows to the dataset, returning the new ``n_elements``
    extend: Callable[["DeltaSession", Any], int]
    #: rolls the dataset back to ``n_elements`` positions (failed batch)
    shrink: Callable[["DeltaSession", int], None]
    #: manual-spec sessions keep the raw data array here (compiled sessions
    #: keep theirs inside the bound kernel's linearized buffer)
    data: Any = None
    #: finalize hook forwarded to make_spec on every delta (compiled only)
    finalize: Any = None
    #: stable key for shared-memory tail republish (process executor)
    shm_key: str | None = None
    #: True for sessions over a compiled ``BoundReduction`` — the append
    #: pass then rides the full executor pipeline; manual-spec sessions
    #: compute deltas with a parent-side serial pass instead
    compiled: bool = False
    #: per-epoch commit attempt counters (the fault-injection seam mirrors
    #: split retry semantics: a rolled-back epoch re-tried by the caller
    #: counts as attempt 2, so ``fail_attempts`` bounds how long it fails)
    commit_attempts: dict[int, int] = field(default_factory=dict)
    #: delta epochs that failed mid-commit and were rolled back
    rollbacks: int = 0
    #: gathered-execution hook ``(session, indices, accessor) -> int`` for
    #: position-independent compiled kernels: one kernel dispatch over a
    #: gathered copy of scattered element indices, instead of one dispatch
    #: per contiguous run (see ``BoundReduction.run_gathered``); ``None``
    #: when the kernel reads ``elemIdx()`` or the session is manual
    gather: Any = None

    @property
    def live_count(self) -> int:
        return int(np.count_nonzero(self.live))

    def live_runs(self) -> list[tuple[int, int]]:
        """Maximal runs of surviving elements, in position order."""
        return mask_runs(self.live)

    def normalize_retract(
        self, retract: "Sequence[int] | np.ndarray | None"
    ) -> np.ndarray:
        """Validate retract indices: unique, in range, currently live."""
        if retract is None:
            return np.empty(0, dtype=np.int64)
        idx = np.unique(np.asarray(retract, dtype=np.int64))
        if idx.size == 0:
            return idx
        if idx[0] < 0 or idx[-1] >= self.n_elements:
            raise FreerideError(
                f"retract index out of range [0, {self.n_elements})"
            )
        dead = ~self.live[idx]
        if np.any(dead):
            raise FreerideError(
                f"retract of already-retracted element(s) "
                f"{idx[dead][:5].tolist()}"
            )
        return idx

    def ro_at(self, epoch: int) -> ReductionObject:
        """The reduction object as of the end of ``epoch`` (ring-bounded)."""
        return self.checkpoints.restore(self.ro, epoch, self.epoch)
