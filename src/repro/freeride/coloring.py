"""Conflict-free split coloring for the COLORED shared-memory technique.

PyOP2-style iteration-set coloring applied to FREERIDE splits: two splits
*conflict* when the sets of reduction-object groups their updates can touch
intersect.  Greedily coloring the conflict graph partitions the splits into
**waves** — all splits of one wave may update the single shared reduction
object concurrently with no locks and no replicas, because the coloring
proves they touch disjoint cells.  The engine executes waves in order with a
barrier between them.

Group sets come from one of three sources, in priority order:

1. ``spec.group_bounds`` — an application-provided callable
   ``(split, num_groups) -> iterable of group ids | None`` (``None`` means
   "unknown for this split").  This is the hook for reductions whose group
   footprint genuinely varies per split (e.g. pre-partitioned inputs).
2. the compiler's symbolic effect analysis
   (:func:`repro.compiler.groupbounds.analyze_group_bounds`), attached to
   specs built from compiled reductions.  The attached
   :class:`~repro.compiler.groupbounds.GroupBounds` carries the
   split-parametric effect summary, so each split's footprint is evaluated
   over just its own element range
   (:meth:`~repro.compiler.groupbounds.GroupBounds.groups_for_range`):
   reductions whose group index is a function of the element index (e.g.
   ``elemIdx() / window``) get genuinely disjoint per-split sets and color
   into wide waves.  When every group form is element-independent the
   footprints coincide and the coloring degenerates to one split per wave,
   which still delivers the technique's memory/lock-freedom guarantees (a
   single shared RO, zero lock acquisitions) at replication-free cost.
3. *profiled* footprints — group sets a previous run with a profile store
   attached **observed** at commit time (see
   :mod:`repro.obs.profilestore`).  This is the tier for kernels whose
   group index is data-dependent (histogram's ``toInt((x - lo) / width)``):
   static analysis can never bound them, but the observed footprint of the
   same program over the same split layout colors re-runs into waves.
   Profiled sets are a *prediction*, not a proof — the engine therefore
   commits profile-colored splits through per-split scratch objects under
   a commit lock, so a stale footprint degrades performance, never
   correctness.

If no source yields exact sets for every split, coloring is impossible and
the caller falls back to a replica- or lock-based technique.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from repro.compiler.groupbounds import GroupBounds
from repro.freeride.splitter import Split

__all__ = ["SplitColoring", "resolve_group_sets", "color_splits"]


@dataclass(frozen=True)
class SplitColoring:
    """The wave schedule produced by :func:`color_splits`.

    ``waves[w]`` holds the indices (into the run's split list) of the splits
    executing in wave ``w``; ``group_sets[i]`` is split ``i``'s proven group
    footprint, used to restrict fault-tolerant scratch commits.
    """

    waves: tuple[tuple[int, ...], ...]
    group_sets: tuple[frozenset[int], ...]
    source: str  # "spec_hook" | "compiler" | "profile"

    @property
    def num_colors(self) -> int:
        return len(self.waves)

    @property
    def max_wave_width(self) -> int:
        return max((len(w) for w in self.waves), default=0)

    def fingerprint(self) -> str:
        """Stable digest of the wave layout (folded into kernel-cache keys)."""
        text = ";".join(",".join(map(str, wave)) for wave in self.waves)
        return hashlib.sha256(text.encode()).hexdigest()[:12]

    def as_dict(self) -> dict:
        """Compact summary recorded in ``RunStats.coloring``."""
        return {
            "num_waves": self.num_colors,
            "max_wave_width": self.max_wave_width,
            "num_splits": len(self.group_sets),
            "source": self.source,
            "fingerprint": self.fingerprint(),
        }


def resolve_group_sets(
    spec,
    splits: Sequence[Split],
    num_groups: int,
    profiled: "dict[tuple[int, int], frozenset[int]] | None" = None,
) -> tuple[list[frozenset[int]] | None, str | None]:
    """Determine each split's group footprint, or ``None`` if inexact.

    Returns ``(group_sets, source)``; ``source`` names which mechanism
    supplied the sets (for stats/trace) and is ``None`` on failure.

    ``profiled``, when given, maps each split's ``(start, end)`` element
    range to a group set a previous run *observed* (the profile store's
    footprint tier).  Static sources win when they are exact; the profiled
    tier only fills in when neither the spec hook nor the compiler can
    bound every split.
    """
    hook = getattr(spec, "group_bounds", None)
    if callable(hook):
        sets: list[frozenset[int]] = []
        for split in splits:
            groups = hook(split, num_groups)
            if groups is None:
                sets = []
                break
            gs = frozenset(int(g) for g in groups)
            if gs and (min(gs) < 0 or max(gs) >= num_groups):
                sets = []
                break
            sets.append(gs)
        else:
            return sets, "spec_hook"
    elif isinstance(hook, GroupBounds):
        sets = []
        for split in splits:
            groups = hook.groups_for_range(split.start, split.end, num_groups)
            if groups is None:
                sets = []
                break
            sets.append(groups)
        else:
            return sets, "compiler"
    if profiled is not None:
        sets = []
        for split in splits:
            gs = profiled.get((split.start, split.end))
            if gs is None:
                return None, None
            if gs and (min(gs) < 0 or max(gs) >= num_groups):
                return None, None
            sets.append(frozenset(gs))
        return sets, "profile"
    return None, None


def color_splits(
    group_sets: Sequence[frozenset[int]], source: str = "unknown"
) -> SplitColoring:
    """Greedy deterministic coloring of the split-conflict graph.

    Splits are processed in index order; each takes the smallest color not
    already used by a conflicting split.  Conflict is group-set
    intersection, tracked per color as the union of its members' sets, so
    assignment is O(splits x colors) instead of building the quadratic
    edge list.
    """
    color_groups: list[set[int]] = []  # union of group sets per color
    waves: list[list[int]] = []
    for idx, gs in enumerate(group_sets):
        for color, used in enumerate(color_groups):
            if not (used & gs):
                used |= gs
                waves[color].append(idx)
                break
        else:
            color_groups.append(set(gs))
            waves.append([idx])
    return SplitColoring(
        waves=tuple(tuple(w) for w in waves),
        group_sets=tuple(frozenset(gs) for gs in group_sets),
        source=source,
    )
