"""Fault tolerance for the FREERIDE reduction loop.

The middleware owns the whole processing structure (split, per-thread local
reduction, local/global combination), which makes it the one place where
transient worker failures can be absorbed without the application noticing.
This module provides the two halves of that story:

:class:`FaultPolicy`
    what the engine does when processing a split raises or overruns its
    deadline: bounded retries with exponential backoff, a soft per-split
    timeout, straggler re-dispatch for the ``"threads"`` executor, and the
    terminal degradation mode (``fail_fast`` re-raises, ``skip_and_report``
    drops the split and records it in the run's stats).

:class:`FaultInjector`
    a deterministic, seeded source of injected failures and delays, keyed
    by split id, so recovery paths can be exercised reproducibly in tests
    and benchmarks.  The same ``(seed, fail_rate)`` pair always selects the
    same set of split ids.

Retry correctness is the engine's job (see ``runtime.py``): under a fault
policy every attempt processes into a *fresh scratch reduction object* that
is committed to the thread's accessor only on success, so a failed attempt
leaves no partial accumulations behind and a retried split is never counted
twice.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.util.errors import FaultToleranceError
from repro.util.validation import check_nonnegative_int, check_one_of

__all__ = [
    "FaultPolicy",
    "FaultInjector",
    "InjectedFault",
    "SplitTimeout",
    "SplitFailureRecord",
    "FAIL_FAST",
    "SKIP_AND_REPORT",
]

#: Terminal degradation modes once a split exhausts its retries.
FAIL_FAST = "fail_fast"
SKIP_AND_REPORT = "skip_and_report"


class InjectedFault(FaultToleranceError):
    """A failure raised by a :class:`FaultInjector` (never by real code)."""


class SplitTimeout(FaultToleranceError):
    """An attempt exceeded :attr:`FaultPolicy.split_timeout` seconds."""


@dataclass(frozen=True)
class FaultPolicy:
    """How the engine reacts when processing a split fails.

    Parameters
    ----------
    max_retries:
        additional attempts after the first one, per split.  ``0`` means a
        single attempt.
    backoff_base:
        seconds slept before retry ``k`` is ``backoff_base * backoff_factor
        ** (k - 1)``; ``0.0`` (the default) retries immediately.
    backoff_factor:
        exponential growth factor of the backoff (>= 1).
    split_timeout:
        soft per-attempt deadline in seconds.  An attempt whose wall time
        exceeds it is discarded and treated as a failure (its scratch
        reduction object is dropped, so no partial state leaks).  ``None``
        disables the deadline.
    straggler_timeout:
        ``"threads"`` executor only: once the queue is drained, idle workers
        speculatively re-dispatch splits that have been in flight for at
        least this many seconds.  The first copy to finish commits; the
        other is discarded.  ``None`` disables re-dispatch.
    mode:
        ``"fail_fast"`` re-raises the last error once a split exhausts its
        retries; ``"skip_and_report"`` abandons the split, finishes the run,
        and records it in ``RunStats.failed_splits`` /
        ``RunStats.failed_split_ids``.
    """

    max_retries: int = 2
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    split_timeout: float | None = None
    straggler_timeout: float | None = None
    mode: str = FAIL_FAST

    def __post_init__(self) -> None:
        check_nonnegative_int(self.max_retries, "max_retries")
        check_one_of(self.mode, (FAIL_FAST, SKIP_AND_REPORT), "mode")
        if self.backoff_base < 0:
            raise FaultToleranceError("backoff_base must be >= 0")
        if self.backoff_factor < 1.0:
            raise FaultToleranceError("backoff_factor must be >= 1")
        if self.split_timeout is not None and self.split_timeout <= 0:
            raise FaultToleranceError("split_timeout must be positive or None")
        if self.straggler_timeout is not None and self.straggler_timeout <= 0:
            raise FaultToleranceError("straggler_timeout must be positive or None")

    @property
    def max_attempts(self) -> int:
        """Total attempts allowed per split (first attempt + retries)."""
        return self.max_retries + 1

    def backoff_seconds(self, retry_number: int) -> float:
        """Sleep before the ``retry_number``-th retry (1-based)."""
        if retry_number < 1 or self.backoff_base == 0.0:
            return 0.0
        return self.backoff_base * self.backoff_factor ** (retry_number - 1)


class FaultInjector:
    """Deterministic, seeded failure and delay injection, keyed by split id.

    Whether a split is selected for failure (or delay) depends only on
    ``(seed, split_id)``, never on thread interleaving or wall clock, so
    every run with the same configuration injects the same faults — the
    property the recovery tests and benchmarks rely on.

    Parameters
    ----------
    fail_rate:
        fraction of split ids selected for failure injection (0..1).
    fail_attempts:
        how many consecutive attempts of a selected split fail before it is
        allowed to succeed.  The default (1) makes the first attempt fail
        and the first retry succeed; a value >= the policy's
        ``max_attempts`` makes the split permanently faulty.
    fail_split_ids:
        explicit split ids to fail, in addition to the rate-selected ones.
    delay_rate / delay_seconds:
        fraction of split ids whose attempts sleep ``delay_seconds`` before
        processing — the knob for exercising timeouts and stragglers.
    seed:
        base seed for the per-split selection.
    """

    def __init__(
        self,
        fail_rate: float = 0.0,
        fail_attempts: int = 1,
        fail_split_ids: "set[int] | frozenset[int] | list[int] | None" = None,
        delay_rate: float = 0.0,
        delay_seconds: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= fail_rate <= 1.0:
            raise FaultToleranceError("fail_rate must be in [0, 1]")
        if not 0.0 <= delay_rate <= 1.0:
            raise FaultToleranceError("delay_rate must be in [0, 1]")
        if delay_seconds < 0:
            raise FaultToleranceError("delay_seconds must be >= 0")
        self.fail_rate = fail_rate
        self.fail_attempts = check_nonnegative_int(fail_attempts, "fail_attempts")
        self.fail_split_ids = frozenset(fail_split_ids or ())
        self.delay_rate = delay_rate
        self.delay_seconds = delay_seconds
        self.seed = seed
        #: injection counters, for introspection (the engine keeps its own
        #: per-run counters in ``RunStats``)
        self.faults_injected = 0
        self.delays_injected = 0

    # -- deterministic selection ------------------------------------------------

    def _draw(self, split_id: int, salt: str) -> float:
        # str seeds hash deterministically in random.Random regardless of
        # PYTHONHASHSEED, so selection is stable across processes.
        return random.Random(f"{self.seed}:{salt}:{split_id}").random()

    def selects_for_failure(self, split_id: int) -> bool:
        """Is ``split_id`` in the injected-failure set?"""
        if split_id in self.fail_split_ids:
            return True
        return self.fail_rate > 0 and self._draw(split_id, "fail") < self.fail_rate

    def selects_for_delay(self, split_id: int) -> bool:
        """Is ``split_id`` in the injected-delay set?"""
        return self.delay_rate > 0 and self._draw(split_id, "delay") < self.delay_rate

    def selected_failures(self, num_splits: int) -> list[int]:
        """Split ids in ``range(num_splits)`` that will fail (for tests)."""
        return [s for s in range(num_splits) if self.selects_for_failure(s)]

    # -- the hook the engine calls ----------------------------------------------

    def inject(self, split_id: int, attempt: int) -> None:
        """Called before each processing attempt; may sleep and/or raise.

        Raises :class:`InjectedFault` while ``attempt <= fail_attempts`` for
        a selected split, so retries eventually succeed (or never do, if
        ``fail_attempts`` outlasts the policy's budget).
        """
        if self.selects_for_delay(split_id) and self.delay_seconds > 0:
            self.delays_injected += 1
            time.sleep(self.delay_seconds)
        if self.selects_for_failure(split_id) and attempt <= self.fail_attempts:
            self.faults_injected += 1
            raise InjectedFault(
                f"injected fault: split {split_id}, attempt {attempt}"
            )


@dataclass
class SplitFailureRecord:
    """One abandoned split, as reported under ``skip_and_report``."""

    split_id: int
    attempts: int
    error: str = ""
    elements_lost: int = 0
