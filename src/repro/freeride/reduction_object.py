"""The FREERIDE *reduction object*.

FREERIDE's defining API difference from Map-Reduce (paper §III-A) is that the
programmer **explicitly declares a reduction object and performs updates to
its elements directly**; every data element is processed and reduced in one
step, with no intermediate (key, value) pairs.

The reduction object is a two-level structure maintained in main memory:
*groups* (e.g. one per k-means cluster), each holding a fixed number of
float64 *elements* (e.g. count, sum of coordinates).  Each element is
addressed by ``(group_id, elem_id)`` — the "unique ID for each element"
that ``reduction_object_alloc`` assigns in Table I.

Updates go through :meth:`ReductionObject.accumulate` with an associative,
commutative element operation (add/min/max), which is what makes per-thread
copies mergeable in any order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.util.errors import ReductionObjectError
from repro.util.validation import check_nonnegative_int, check_positive_int

__all__ = [
    "AccumulateOp",
    "ACCUMULATE_OPS",
    "INVERTIBLE_ACCUMULATE_OPS",
    "ReductionObject",
]

#: Element-update operations. Each must be associative and commutative so the
#: result is independent of processing order (paper §III-A requirement).
AccumulateOp = str

ACCUMULATE_OPS: dict[str, Callable[[np.ndarray, int, float], None]] = {}


def _op_add(buf: np.ndarray, idx: int, value: float) -> None:
    buf[idx] += value


def _op_min(buf: np.ndarray, idx: int, value: float) -> None:
    if value < buf[idx]:
        buf[idx] = value


def _op_max(buf: np.ndarray, idx: int, value: float) -> None:
    if value > buf[idx]:
        buf[idx] = value


ACCUMULATE_OPS["add"] = _op_add
ACCUMULATE_OPS["min"] = _op_min
ACCUMULATE_OPS["max"] = _op_max

_IDENTITY: dict[str, float] = {"add": 0.0, "min": np.inf, "max": -np.inf}

_MERGE_UFUNC = {"add": np.add, "min": np.minimum, "max": np.maximum}

#: Ops with an element inverse: contributions can be *retracted* directly
#: (``a + x - x == a``), so delta retractions cost O(|delta|).  min/max
#: discard the information needed to undo an update — the delta executor
#: re-reduces those groups from the surviving elements instead.
INVERTIBLE_ACCUMULATE_OPS: frozenset[str] = frozenset({"add"})

_RETRACT_UFUNC = {"add": np.subtract}


@dataclass
class _GroupMeta:
    """Layout of one allocated group."""

    group_id: int
    num_elems: int
    op: AccumulateOp
    offset: int  # start of this group's elements in the dense buffer


class ReductionObject:
    """A dense, mergeable reduction object.

    Groups are allocated up front with :meth:`alloc` (mirroring
    ``reduction_object_alloc``), then updated with :meth:`accumulate` and
    read with :meth:`get` / :meth:`get_group`.

    Storage is one contiguous float64 buffer; groups are slices of it.  This
    matches FREERIDE's in-memory representation and makes merging two copies
    a single vectorized ufunc per op kind.
    """

    def __init__(self) -> None:
        self._groups: list[_GroupMeta] = []
        self._buffer: np.ndarray = np.empty(0, dtype=np.float64)
        self._finalized_layout = False
        #: number of accumulate() calls, for runtime statistics
        self.update_count: int = 0
        # lazy per-group lookup arrays for the batch update path
        self._batch_tables: tuple[np.ndarray, np.ndarray, list[str]] | None = None
        #: explicit per-group touched bitmap: set by every update API, so a
        #: group stays visible in touched_groups() even when its accumulated
        #: value happens to equal the op identity
        self._touched: np.ndarray = np.zeros(0, dtype=bool)

    # -- layout -------------------------------------------------------------

    def alloc(self, num_elems: int, op: AccumulateOp = "add") -> int:
        """Allocate a group of ``num_elems`` elements; returns its group id.

        All elements of a group share one accumulate op and start at that
        op's identity (0 for add, +inf for min, -inf for max).
        """
        check_positive_int(num_elems, "num_elems")
        if op not in ACCUMULATE_OPS:
            raise ReductionObjectError(f"unknown accumulate op {op!r}")
        if self._finalized_layout:
            raise ReductionObjectError(
                "cannot allocate groups after the layout is frozen"
            )
        gid = len(self._groups)
        meta = _GroupMeta(gid, num_elems, op, offset=self._buffer.size)
        self._groups.append(meta)
        self._buffer = np.concatenate(
            [self._buffer, np.full(num_elems, _IDENTITY[op])]
        )
        self._batch_tables = None
        self._touched = np.concatenate([self._touched, [False]])
        return gid

    def alloc_many(
        self, layout: "Sequence[tuple[int, AccumulateOp]]"
    ) -> list[int]:
        """Allocate a whole layout of groups with one buffer reallocation.

        Equivalent to calling :meth:`alloc` per entry, but O(total
        elements) instead of quadratic in the group count — the setup path
        for wide layouts (e.g. one group per window).
        """
        if self._finalized_layout:
            raise ReductionObjectError(
                "cannot allocate groups after the layout is frozen"
            )
        gids: list[int] = []
        segments = [self._buffer]
        offset = int(self._buffer.size)
        for num_elems, op in layout:
            check_positive_int(num_elems, "num_elems")
            if op not in ACCUMULATE_OPS:
                raise ReductionObjectError(f"unknown accumulate op {op!r}")
            gid = len(self._groups)
            self._groups.append(_GroupMeta(gid, num_elems, op, offset))
            segments.append(np.full(num_elems, _IDENTITY[op]))
            offset += num_elems
            gids.append(gid)
        self._buffer = np.concatenate(segments)
        self._batch_tables = None
        self._touched = np.concatenate(
            [self._touched, np.zeros(len(gids), dtype=bool)]
        )
        return gids

    def alloc_matrix(self, num_groups: int, num_elems: int, op: AccumulateOp = "add") -> list[int]:
        """Allocate ``num_groups`` identical groups (k-means: one per centroid)."""
        check_positive_int(num_groups, "num_groups")
        return self.alloc_many([(num_elems, op)] * num_groups)

    def freeze_layout(self) -> None:
        """Freeze the layout: replicas must share it, so no more allocs."""
        self._finalized_layout = True

    @property
    def num_groups(self) -> int:
        return len(self._groups)

    @property
    def size(self) -> int:
        """Total number of elements across all groups."""
        return int(self._buffer.size)

    @property
    def nbytes(self) -> int:
        """Memory footprint of the element buffer, in bytes."""
        return int(self._buffer.nbytes)

    def _meta(self, group: int) -> _GroupMeta:
        try:
            return self._groups[group]
        except IndexError:
            raise ReductionObjectError(
                f"group {group} not allocated (have {len(self._groups)})"
            )

    def _cell(self, group: int, elem: int) -> tuple[_GroupMeta, int]:
        meta = self._meta(group)
        check_nonnegative_int(elem, "elem")
        if elem >= meta.num_elems:
            raise ReductionObjectError(
                f"element {elem} out of range for group {group} "
                f"({meta.num_elems} elements)"
            )
        return meta, meta.offset + elem

    # -- updates and reads ----------------------------------------------------

    def accumulate(self, group: int, elem: int, value: float) -> None:
        """Fold ``value`` into element ``(group, elem)`` with the group's op.

        This is Table I's ``void accumulate(int, int, void* value)``.
        """
        meta, idx = self._cell(group, elem)
        ACCUMULATE_OPS[meta.op](self._buffer, idx, value)
        self._touched[meta.group_id] = True
        self.update_count += 1

    def accumulate_group(self, group: int, values: np.ndarray) -> None:
        """Vectorized accumulate of a whole group at once.

        Semantically ``accumulate(group, i, values[i])`` for every i; used by
        vectorized kernels.  Counts as ``len(values)`` updates.
        """
        meta = self._meta(group)
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (meta.num_elems,):
            raise ReductionObjectError(
                f"group {group} expects {meta.num_elems} values, got {values.shape}"
            )
        sl = slice(meta.offset, meta.offset + meta.num_elems)
        ufunc = _MERGE_UFUNC[meta.op]
        self._buffer[sl] = ufunc(self._buffer[sl], values)
        self._touched[meta.group_id] = True
        self.update_count += meta.num_elems

    def _group_tables(self) -> tuple[np.ndarray, np.ndarray, list[str]]:
        """Dense per-group ``(offsets, num_elems, ops)`` lookup arrays."""
        if self._batch_tables is None:
            offsets = np.array([m.offset for m in self._groups], dtype=np.int64)
            nelems = np.array([m.num_elems for m in self._groups], dtype=np.int64)
            ops = [m.op for m in self._groups]
            self._batch_tables = (offsets, nelems, ops)
        return self._batch_tables

    def batch_cells(
        self,
        groups: "np.ndarray | int",
        elems: "np.ndarray | int",
        values: "np.ndarray | float",
        op: AccumulateOp,
        mask: np.ndarray | None = None,
        lanes: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Validate and flatten a batch update into ``(flat_indices, values)``.

        ``groups``/``elems``/``values`` broadcast against each other (and to
        ``lanes`` entries when all are scalar); ``mask`` drops inactive lanes
        before validation, so a lane a scalar kernel would never execute can
        hold any garbage.  Every surviving lane must address an allocated
        cell of a group whose accumulate op is ``op``.
        """
        if op not in ACCUMULATE_OPS:
            raise ReductionObjectError(f"unknown accumulate op {op!r}")
        g = np.asarray(groups, dtype=np.int64)
        e = np.asarray(elems, dtype=np.int64)
        v = np.asarray(values, dtype=np.float64)
        shapes = [g.shape, e.shape, v.shape]
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            shapes.append(mask.shape)
        target = np.broadcast_shapes(*shapes)
        if target == ():
            target = (1 if lanes is None else lanes,)
        g = np.broadcast_to(g, target).ravel()
        e = np.broadcast_to(e, target).ravel()
        v = np.broadcast_to(v, target).ravel()
        if mask is not None:
            m = np.broadcast_to(mask, target).ravel()
            g, e, v = g[m], e[m], v[m]
        if g.size == 0:
            return g, v
        offsets, nelems, ops = self._group_tables()
        if g.min() < 0 or g.max() >= len(offsets):
            raise ReductionObjectError(
                f"batch update addresses group outside [0, {len(offsets)})"
            )
        if np.any(e < 0) or np.any(e >= nelems[g]):
            raise ReductionObjectError(
                "batch update addresses an element outside its group"
            )
        bad = {ops[int(gi)] for gi in np.unique(g)} - {op}
        if bad:
            raise ReductionObjectError(
                f"batch {op!r} update hits groups declared with op {sorted(bad)}"
            )
        return offsets[g] + e, v

    def apply_batch(self, indices: np.ndarray, values: np.ndarray, op: AccumulateOp) -> None:
        """Apply pre-validated flat-cell updates (see :meth:`batch_cells`).

        ``ufunc.at`` folds duplicate indices in lane order, so an additive
        cell touched by many lanes matches the scalar element-order result.
        """
        if indices.size == 0:
            return
        _MERGE_UFUNC[op].at(self._buffer, indices, values)
        offsets, _, _ = self._group_tables()
        hit = np.searchsorted(offsets, indices, side="right") - 1
        self._touched[np.unique(hit)] = True
        self.update_count += int(indices.size)

    def accumulate_batch(
        self,
        groups: "np.ndarray | int",
        elems: "np.ndarray | int",
        values: "np.ndarray | float",
        op: AccumulateOp = "add",
        mask: np.ndarray | None = None,
        lanes: int | None = None,
        exclusive: bool = False,
    ) -> None:
        """Vectorized accumulate over per-lane ``(group, elem, value)`` triples.

        Semantically ``accumulate(groups[i], elems[i], values[i])`` for every
        active lane ``i`` (in lane order); counts one update per active lane.
        This is the reduction-object half of the batch kernel backend.
        ``exclusive`` (a COLORED-kernel hint, see
        :meth:`repro.freeride.sharedmem.ROAccessor.accumulate_batch`) is
        accepted for signature compatibility and ignored — a bare reduction
        object always has a single owner.
        """
        idx, v = self.batch_cells(groups, elems, values, op, mask, lanes)
        self.apply_batch(idx, v, op)

    def get(self, group: int, elem: int) -> float:
        """Read one element — Table I's ``get_intermediate_result``."""
        _, idx = self._cell(group, elem)
        return float(self._buffer[idx])

    def get_group(self, group: int) -> np.ndarray:
        """Read a whole group as a copy."""
        meta = self._meta(group)
        return self._buffer[meta.offset : meta.offset + meta.num_elems].copy()

    def group_view(self, group: int) -> np.ndarray:
        """A writable view of a group (for vectorized manual-FR kernels)."""
        meta = self._meta(group)
        return self._buffer[meta.offset : meta.offset + meta.num_elems]

    def set(self, group: int, elem: int, value: float) -> None:
        """Overwrite one element (used by finalize steps, not reductions)."""
        meta, idx = self._cell(group, elem)
        self._buffer[idx] = value
        self._touched[meta.group_id] = True

    def groups(self) -> Iterator[tuple[int, np.ndarray]]:
        """Iterate ``(group_id, values_copy)`` pairs."""
        for meta in self._groups:
            yield meta.group_id, self.get_group(meta.group_id)

    def layout(self) -> list[tuple[int, AccumulateOp]]:
        """The ``(num_elems, op)`` sequence that rebuilds this layout."""
        return [(m.num_elems, m.op) for m in self._groups]

    @classmethod
    def from_layout(
        cls,
        layout: "Sequence[tuple[int, AccumulateOp]]",
        buffer: np.ndarray | None = None,
        initialize: bool = True,
    ) -> "ReductionObject":
        """Build a frozen-layout reduction object directly from a layout.

        Unlike repeated :meth:`alloc` calls this never reallocates the
        element buffer, so ``buffer`` may be an *external* float64 array —
        e.g. a slice of a ``multiprocessing.shared_memory`` segment — and
        all accumulations land in that storage.  With ``initialize=False``
        the buffer's existing contents are kept (the parent process wraps a
        worker-filled shared segment without clobbering it); a freshly
        allocated object is always initialized to the ops' identities.
        """
        ro = cls()
        offset = 0
        for num_elems, op in layout:
            check_positive_int(num_elems, "num_elems")
            if op not in ACCUMULATE_OPS:
                raise ReductionObjectError(f"unknown accumulate op {op!r}")
            ro._groups.append(_GroupMeta(len(ro._groups), num_elems, op, offset))
            offset += num_elems
        if not ro._groups:
            raise ReductionObjectError("layout must allocate at least one group")
        if buffer is None:
            ro._buffer = np.empty(offset, dtype=np.float64)
            initialize = True
        else:
            buf = np.asarray(buffer)
            if buf.dtype != np.float64 or buf.ndim != 1 or buf.size != offset:
                raise ReductionObjectError(
                    f"external buffer must be a flat float64 array of "
                    f"{offset} elements, got dtype={buf.dtype} shape={buf.shape}"
                )
            ro._buffer = buf
        if initialize:
            for meta in ro._groups:
                ro._buffer[meta.offset : meta.offset + meta.num_elems] = _IDENTITY[
                    meta.op
                ]
        ro._touched = np.zeros(len(ro._groups), dtype=bool)
        ro.freeze_layout()
        return ro

    # -- replication and merging ----------------------------------------------

    def copy(self) -> "ReductionObject":
        """A deep copy: same layout, same element values, same update count.

        The combination phase merges into a copy so its inputs (per-thread
        or per-node reduction objects) are never mutated.
        """
        clone = self.clone_empty()
        clone._buffer[:] = self._buffer
        clone._touched[:] = self._touched
        clone.update_count = self.update_count
        return clone

    def clone_empty(self) -> "ReductionObject":
        """A fresh copy with identical layout and identity-valued elements.

        This is what the *full replication* shared-memory technique hands to
        each thread.  Built directly (metas copied, one buffer allocation)
        rather than through per-group :meth:`alloc` calls, whose repeated
        buffer reallocation is quadratic in the group count.
        """
        clone = ReductionObject()
        clone._groups = [
            _GroupMeta(m.group_id, m.num_elems, m.op, m.offset)
            for m in self._groups
        ]
        clone._buffer = np.empty(self._buffer.size, dtype=np.float64)
        for meta in clone._groups:
            clone._buffer[meta.offset : meta.offset + meta.num_elems] = _IDENTITY[
                meta.op
            ]
        clone._touched = np.zeros(len(clone._groups), dtype=bool)
        clone.freeze_layout()
        return clone

    def same_layout(self, other: "ReductionObject") -> bool:
        return [(m.num_elems, m.op) for m in self._groups] == [
            (m.num_elems, m.op) for m in other._groups
        ]

    def merge_from(self, other: "ReductionObject") -> None:
        """Combine another copy into this one (the *combine* of Figure 1).

        Merging is group-wise with each group's op ufunc, so it is a handful
        of vectorized operations regardless of object size.
        """
        if not self.same_layout(other):
            raise ReductionObjectError("cannot merge reduction objects with different layouts")
        for meta in self._groups:
            sl = slice(meta.offset, meta.offset + meta.num_elems)
            ufunc = _MERGE_UFUNC[meta.op]
            self._buffer[sl] = ufunc(self._buffer[sl], other._buffer[sl])
        self._touched |= other._touched
        self.update_count += other.update_count

    def merge_group_from(self, group: int, other: "ReductionObject") -> None:
        """Merge a single group's elements from another same-layout copy.

        Unlike :meth:`merge_from` this touches one group only and does *not*
        fold in ``other.update_count`` — the caller accounts for updates
        once per whole-object commit.  The fault-tolerant locking commit
        uses this to apply a scratch object group-by-group while holding
        exactly that group's covering locks.
        """
        if not self.same_layout(other):
            raise ReductionObjectError(
                "cannot merge reduction objects with different layouts"
            )
        meta = self._meta(group)
        sl = slice(meta.offset, meta.offset + meta.num_elems)
        ufunc = _MERGE_UFUNC[meta.op]
        self._buffer[sl] = ufunc(self._buffer[sl], other._buffer[sl])
        if other._touched[meta.group_id] or bool(
            np.any(other._buffer[sl] != _IDENTITY[meta.op])
        ):
            self._touched[meta.group_id] = True

    def touched_groups(self) -> frozenset[int]:
        """Groups that received at least one update.

        Every update API (accumulate, accumulate_group, batch updates, set,
        merges) marks the target group in an explicit bitmap, so a group is
        reported even when its accumulated value equals the op identity —
        the historic value-scan alone missed those (e.g. accumulating an
        exact 0.0 into an add group), which was safe for merge *values* but
        silently dropped the group from profile footprints and would drop
        it from delta checkpoints.  The value scan is kept as a union term
        for objects whose buffer was filled out-of-band: writable
        :meth:`group_view` slices and ``from_layout(initialize=False)``
        wraps of worker-filled shared segments bypass the bitmap.
        """
        touched: set[int] = {
            int(g) for g in np.nonzero(self._touched)[0]
        }
        for meta in self._groups:
            if meta.group_id in touched:
                continue
            sl = self._buffer[meta.offset : meta.offset + meta.num_elems]
            if np.any(sl != _IDENTITY[meta.op]):
                touched.add(meta.group_id)
        return frozenset(touched)

    # -- delta execution ------------------------------------------------------

    def group_op(self, group: int) -> AccumulateOp:
        """The accumulate op a group was allocated with."""
        return self._meta(group).op

    def reset_group(self, group: int) -> None:
        """Reset one group's elements to the op identity (replay prologue)."""
        meta = self._meta(group)
        self._buffer[meta.offset : meta.offset + meta.num_elems] = _IDENTITY[
            meta.op
        ]
        self._touched[meta.group_id] = False

    def set_group(self, group: int, values: np.ndarray, touched: bool) -> None:
        """Overwrite a whole group (checkpoint restore / snapshot apply)."""
        meta = self._meta(group)
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (meta.num_elems,):
            raise ReductionObjectError(
                f"group {group} expects {meta.num_elems} values, got {values.shape}"
            )
        self._buffer[meta.offset : meta.offset + meta.num_elems] = values
        self._touched[meta.group_id] = bool(touched)

    def is_touched(self, group: int) -> bool:
        """Read one bit of the explicit touched bitmap."""
        return bool(self._touched[self._meta(group).group_id])

    def retract_from(self, other: "ReductionObject") -> None:
        """Undo another copy's contributions (inverse of :meth:`merge_from`).

        Only groups with an invertible op (see
        :data:`INVERTIBLE_ACCUMULATE_OPS`) can be retracted; a min/max
        group that ``other`` touched raises, because the information needed
        to undo the update is gone — the delta executor re-reduces those
        groups from the surviving elements instead.  ``other.update_count``
        is subtracted, mirroring the merge.
        """
        if not self.same_layout(other):
            raise ReductionObjectError(
                "cannot retract reduction objects with different layouts"
            )
        for meta in self._groups:
            sl = slice(meta.offset, meta.offset + meta.num_elems)
            if meta.op in INVERTIBLE_ACCUMULATE_OPS:
                self._buffer[sl] = _RETRACT_UFUNC[meta.op](
                    self._buffer[sl], other._buffer[sl]
                )
            elif other._touched[meta.group_id] or bool(
                np.any(other._buffer[sl] != _IDENTITY[meta.op])
            ):
                raise ReductionObjectError(
                    f"group {meta.group_id} uses non-invertible op "
                    f"{meta.op!r}: cannot retract, re-reduce the group instead"
                )
        self.update_count -= other.update_count

    def retract_group(self, group: int, other: "ReductionObject") -> None:
        """Undo one group's contributions (inverse of :meth:`merge_group_from`).

        Like :meth:`merge_group_from` this does *not* fold
        ``other.update_count`` — the delta commit accounts for updates once
        per epoch.  Raises for non-invertible groups; the delta executor
        routes those through per-group replay instead.
        """
        if not self.same_layout(other):
            raise ReductionObjectError(
                "cannot retract reduction objects with different layouts"
            )
        meta = self._meta(group)
        sl = slice(meta.offset, meta.offset + meta.num_elems)
        if meta.op not in INVERTIBLE_ACCUMULATE_OPS:
            raise ReductionObjectError(
                f"group {meta.group_id} uses non-invertible op "
                f"{meta.op!r}: cannot retract, re-reduce the group instead"
            )
        self._buffer[sl] = _RETRACT_UFUNC[meta.op](
            self._buffer[sl], other._buffer[sl]
        )

    def snapshot(self) -> np.ndarray:
        """Copy of the whole dense buffer (for tests and checkpoints)."""
        return self._buffer.copy()

    def __repr__(self) -> str:
        return (
            f"ReductionObject(groups={self.num_groups}, elements={self.size}, "
            f"updates={self.update_count})"
        )
