"""The Table I FREERIDE API, as a procedural facade.

The paper's Table I lists the functions an application developer writes
(``reduction_t``, ``combination_t``, ``finalize_t``) and the functions the
middleware provides (``splitter_t`` default, ``reduction_object_alloc``,
``accumulate``, ``get_intermediate_result``).  This module reproduces that
surface on top of :class:`~repro.freeride.runtime.FreerideEngine`, preserving
the C usage pattern:

.. code-block:: python

    ctx = FreerideContext(num_threads=4)
    g = ctx.reduction_object_alloc(num_elems=3)          # init section

    def reduction(args):                                 # reduction_t
        for x in args.data:
            ctx.accumulate(g, 0, x)                      # Table I accumulate

    ctx.register_reduction(reduction)
    result = ctx.run(data)
    total = ctx.get_intermediate_result(g, 0)            # after the run

``accumulate`` inside a reduction routes to the calling thread's
reduction-object accessor through thread-local state, exactly as the
C implementation routes through the per-thread handle.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Protocol

from repro.freeride.faults import FaultInjector, FaultPolicy
from repro.freeride.reduction_object import AccumulateOp, ReductionObject
from repro.freeride.runtime import FreerideEngine, ReductionResult
from repro.freeride.sharedmem import SharedMemTechnique
from repro.freeride.spec import ReductionArgs, ReductionSpec
from repro.freeride.splitter import Split
from repro.util.errors import FreerideError

__all__ = [
    "reduction_t",
    "combination_t",
    "finalize_t",
    "splitter_t",
    "FreerideContext",
]


class reduction_t(Protocol):
    """``void (*reduction_t)(reduction_args_t*)`` — the local reduction."""

    def __call__(self, args: ReductionArgs) -> None: ...


class combination_t(Protocol):
    """``void (*combination_t)(void*)`` — custom copy combination."""

    def __call__(self, copies: list[ReductionObject]) -> ReductionObject: ...


class finalize_t(Protocol):
    """``(*finalize_t)(void*)`` — post-reduction output step."""

    def __call__(self, ro: ReductionObject) -> Any: ...


class splitter_t(Protocol):
    """``int (*splitter_t)(void*, int, reduction_args_t*)`` — data splitter."""

    def __call__(self, data: Any, req_units: int) -> list[Split]: ...


class FreerideContext:
    """A procedural FREERIDE session (init / register / run / read)."""

    def __init__(
        self,
        num_threads: int = 1,
        technique: SharedMemTechnique | str = SharedMemTechnique.FULL_REPLICATION,
        executor: str = "serial",
        chunk_size: int | None = None,
        extras: dict[str, Any] | None = None,
        fault_policy: "FaultPolicy | None" = None,
        fault_injector: "FaultInjector | None" = None,
    ) -> None:
        self._engine_kwargs: dict[str, Any] = dict(
            num_threads=num_threads,
            technique=technique,
            executor=executor,
            chunk_size=chunk_size,
            fault_policy=fault_policy,
            fault_injector=fault_injector,
        )
        self._engine = FreerideEngine(**self._engine_kwargs)
        self._allocs: list[tuple[int, AccumulateOp]] = []
        self._reduction: Callable[[ReductionArgs], None] | None = None
        self._combination: Callable[[list[ReductionObject]], ReductionObject] | None = None
        self._finalize: Callable[[ReductionObject], Any] | None = None
        self._extras: dict[str, Any] = dict(extras or {})
        self._tls = threading.local()
        self._last: ReductionResult | None = None

    # -- init section -----------------------------------------------------------

    def reduction_object_alloc(self, num_elems: int, op: AccumulateOp = "add") -> int:
        """Declare a reduction-object group; returns its unique group id.

        "Initialize the reduction object and assign a unique ID for each
        element of the reduction object as the index." (Table I)
        """
        if self._last is not None:
            raise FreerideError("cannot allocate after a run; create a new context")
        gid = len(self._allocs)
        self._allocs.append((num_elems, op))
        return gid

    def register_reduction(self, fn: reduction_t) -> None:
        """Register the user's ``reduction_t``."""
        self._reduction = fn

    def register_combination(self, fn: combination_t) -> None:
        """Register a custom ``combination_t`` (default: middleware merge)."""
        self._combination = fn

    def register_finalize(self, fn: finalize_t) -> None:
        """Register the ``finalize_t`` output step."""
        self._finalize = fn

    def register_splitter(self, fn: splitter_t) -> None:
        """Override the middleware's default ``splitter_t``.

        The splitter must return an exact ordered partition of the input;
        the engine validates it on every run.
        """
        self._engine = FreerideEngine(**self._engine_kwargs, splitter=fn)

    # -- reduction-time API -------------------------------------------------------

    def accumulate(self, group: int, elem: int, value: float) -> None:
        """Table I ``accumulate``: update the reduction object.

        Valid only inside a running reduction function; routes to the calling
        thread's accessor.
        """
        acc = getattr(self._tls, "accessor", None)
        if acc is None:
            raise FreerideError("accumulate() is only valid inside a reduction")
        acc.accumulate(group, elem, value)

    # -- run ---------------------------------------------------------------------

    def run(self, data: Any) -> ReductionResult:
        """Execute the reduction over ``data`` (one reduction-loop pass)."""
        if self._reduction is None:
            raise FreerideError("no reduction function registered")
        if not self._allocs:
            raise FreerideError("no reduction-object groups allocated")

        allocs = list(self._allocs)

        def setup(ro: ReductionObject) -> None:
            ro.alloc_many(allocs)

        user_reduction = self._reduction
        tls = self._tls

        def wrapped_reduction(args: ReductionArgs) -> None:
            tls.accessor = args.ro
            try:
                user_reduction(args)
            finally:
                tls.accessor = None

        spec = ReductionSpec(
            name="freeride-context",
            setup_reduction_object=setup,
            reduction=wrapped_reduction,
            combination=self._combination,
            finalize=self._finalize,
            extras=self._extras,
        )
        self._last = self._engine.run(spec, data)
        return self._last

    # -- post-run reads -------------------------------------------------------------

    def get_intermediate_result(self, group: int, elem: int) -> float:
        """Table I ``get_intermediate_result``: read a combined element."""
        if self._last is None:
            raise FreerideError("no run has completed yet")
        return self._last.ro.get(group, elem)

    @property
    def result(self) -> ReductionResult:
        if self._last is None:
            raise FreerideError("no run has completed yet")
        return self._last
