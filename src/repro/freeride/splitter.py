"""Input-data splitting for the FREERIDE runtime.

Table I: ``int (*splitter_t)(void*, int, reduction_args_t*)`` — "Split the
whole input data set according to the number of the threads provided by the
initialization part."  The paper's applications use the **default splitter**,
which block-partitions the input; we also provide a fixed-chunk splitter used
for dynamic scheduling (the runtime hands chunks to idle threads, which is
how the Phoenix-based FREERIDE implementation balances load).

Splits are *views* where the input supports them (numpy arrays, lists via
slices), so splitting never copies element data.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

import numpy as np

from repro.util.errors import SplitterError
from repro.util.validation import check_positive_int

__all__ = ["Split", "default_splitter", "chunked_splitter", "SplitQueue"]


@dataclass(frozen=True)
class Split:
    """One unit of work: a contiguous slice of the input data.

    ``start``/``end`` are 0-based element indices into the full input;
    ``data`` is the corresponding view.
    """

    split_id: int
    start: int
    end: int
    data: Any

    def __len__(self) -> int:
        return self.end - self.start


def _data_len(data: Any) -> int:
    try:
        return len(data)
    except TypeError:
        raise SplitterError(f"cannot split data of type {type(data)}")


def _slice(data: Any, start: int, end: int) -> Any:
    return data[start:end]


def default_splitter(data: Any, req_units: int) -> list[Split]:
    """Block-partition ``data`` into ``req_units`` balanced splits.

    This is FREERIDE's default splitter: the first ``n % req_units`` splits
    receive one extra element.  Splits with zero elements are produced when
    ``req_units`` exceeds the data size, so every thread still receives an
    answer (matching the C API, which returns a unit count per thread).
    """
    check_positive_int(req_units, "req_units")
    n = _data_len(data)
    base, extra = divmod(n, req_units)
    splits: list[Split] = []
    start = 0
    for t in range(req_units):
        size = base + (1 if t < extra else 0)
        splits.append(Split(t, start, start + size, _slice(data, start, start + size)))
        start += size
    _check_partition(splits, n)
    return splits


def chunked_splitter(data: Any, chunk_size: int) -> list[Split]:
    """Partition ``data`` into fixed-size chunks (last one may be short).

    Used with dynamic scheduling: many more chunks than threads, pulled from
    a shared queue.
    """
    check_positive_int(chunk_size, "chunk_size")
    n = _data_len(data)
    splits = []
    for sid, start in enumerate(range(0, n, chunk_size)):
        end = min(start + chunk_size, n)
        splits.append(Split(sid, start, end, _slice(data, start, end)))
    if n == 0:
        splits = [Split(0, 0, 0, _slice(data, 0, 0))]
    _check_partition(splits, n)
    return splits


def _check_partition(splits: Sequence[Split], n: int) -> None:
    """Verify splits exactly partition [0, n) in order."""
    pos = 0
    for s in splits:
        if s.start != pos or s.end < s.start:
            raise SplitterError(
                f"split {s.split_id} does not continue the partition at {pos}"
            )
        pos = s.end
    if pos != n:
        raise SplitterError(f"splits cover [0, {pos}) but data has {n} elements")


class SplitQueue:
    """A thread-safe work queue of splits for dynamic scheduling."""

    def __init__(self, splits: Sequence[Split]) -> None:
        self._splits = list(splits)
        self._next = 0
        self._lock = threading.Lock()

    def take(self) -> Split | None:
        """Pop the next split, or None when the queue is drained."""
        with self._lock:
            if self._next >= len(self._splits):
                return None
            s = self._splits[self._next]
            self._next += 1
            return s

    def __len__(self) -> int:
        return len(self._splits)

    def drain(self) -> Iterator[Split]:
        """Iterate remaining splits (single-threaded use)."""
        while (s := self.take()) is not None:
            yield s
