"""Input-data splitting for the FREERIDE runtime.

Table I: ``int (*splitter_t)(void*, int, reduction_args_t*)`` — "Split the
whole input data set according to the number of the threads provided by the
initialization part."  The paper's applications use the **default splitter**,
which block-partitions the input; we also provide a fixed-chunk splitter used
for dynamic scheduling (the runtime hands chunks to idle threads, which is
how the Phoenix-based FREERIDE implementation balances load).

Splits are *views* where the input supports them (numpy arrays, lists via
slices), so splitting never copies element data.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

import numpy as np

from repro.util.errors import SplitterError
from repro.util.validation import check_positive_int

__all__ = [
    "Split",
    "default_splitter",
    "chunked_splitter",
    "aligned_splits",
    "split_descriptors",
    "SplitQueue",
]


@dataclass(frozen=True)
class Split:
    """One unit of work: a contiguous slice of the input data.

    ``start``/``end`` are 0-based element indices into the full input;
    ``data`` is the corresponding view.
    """

    split_id: int
    start: int
    end: int
    data: Any

    def __len__(self) -> int:
        return self.end - self.start


def _data_len(data: Any) -> int:
    try:
        return len(data)
    except TypeError:
        raise SplitterError(f"cannot split data of type {type(data)}")


def _slice(data: Any, start: int, end: int) -> Any:
    return data[start:end]


def default_splitter(data: Any, req_units: int) -> list[Split]:
    """Block-partition ``data`` into ``req_units`` balanced splits.

    This is FREERIDE's default splitter: the first ``n % req_units`` splits
    receive one extra element.  Splits with zero elements are produced when
    ``req_units`` exceeds the data size, so every thread still receives an
    answer (matching the C API, which returns a unit count per thread).
    """
    check_positive_int(req_units, "req_units")
    n = _data_len(data)
    base, extra = divmod(n, req_units)
    splits: list[Split] = []
    start = 0
    for t in range(req_units):
        size = base + (1 if t < extra else 0)
        splits.append(Split(t, start, start + size, _slice(data, start, start + size)))
        start += size
    _check_partition(splits, n)
    return splits


def aligned_splits(data: Any, req_units: int, alignment: int) -> list[Split]:
    """Block-partition with split boundaries snapped to ``alignment``.

    The effect analysis exposes the element-period of ``elemIdx()``-derived
    group forms as :attr:`~repro.compiler.groupbounds.GroupBounds.alignment`
    (``e // k`` changes group only at multiples of ``k``).  Snapping each
    boundary to the nearest multiple keeps any one alignment window inside a
    single split, so per-split group footprints stay disjoint and the
    COLORED technique colors wide waves instead of chaining splits that
    straddle a window.  Degenerates to near-balanced blocks — boundaries
    move by at most ``alignment/2`` elements from the even partition.
    """
    check_positive_int(req_units, "req_units")
    check_positive_int(alignment, "alignment")
    n = _data_len(data)
    bounds = [0]
    for t in range(1, req_units):
        ideal = n * t / req_units
        snapped = int(round(ideal / alignment)) * alignment
        bounds.append(min(max(snapped, bounds[-1]), n))
    bounds.append(n)
    splits = [
        Split(i, a, b, _slice(data, a, b))
        for i, (a, b) in enumerate(zip(bounds, bounds[1:]))
    ]
    _check_partition(splits, n)
    return splits


def chunked_splitter(data: Any, chunk_size: int) -> list[Split]:
    """Partition ``data`` into fixed-size chunks (last one may be short).

    Used with dynamic scheduling: many more chunks than threads, pulled from
    a shared queue.
    """
    check_positive_int(chunk_size, "chunk_size")
    n = _data_len(data)
    splits = []
    for sid, start in enumerate(range(0, n, chunk_size)):
        end = min(start + chunk_size, n)
        splits.append(Split(sid, start, end, _slice(data, start, end)))
    if n == 0:
        splits = [Split(0, 0, 0, _slice(data, 0, 0))]
    _check_partition(splits, n)
    return splits


def split_descriptors(splits: Sequence[Split]) -> list[tuple[int, int, int]]:
    """Compact picklable ``(split_id, start, stop)`` descriptors.

    The process executor ships these instead of :class:`Split` objects —
    workers index the shared-memory dataset directly, so a few integers per
    split are the entire dispatch payload.  Requires unit-step index-range
    split data, which is what compiled reductions run over (their engine
    data is the element index range).
    """
    out: list[tuple[int, int, int]] = []
    for s in splits:
        d = s.data
        if not isinstance(d, range) or d.step != 1:
            raise SplitterError(
                "process dispatch requires splits over a unit-step element "
                "index range (compiled reductions); got split data of type "
                f"{type(d).__name__}"
            )
        out.append((s.split_id, d.start, d.stop))
    return out


def _check_partition(splits: Sequence[Split], n: int) -> None:
    """Verify splits exactly partition [0, n) in order."""
    pos = 0
    for s in splits:
        if s.start != pos or s.end < s.start:
            raise SplitterError(
                f"split {s.split_id} does not continue the partition at {pos}"
            )
        pos = s.end
    if pos != n:
        raise SplitterError(f"splits cover [0, {pos}) but data has {n} elements")


class SplitQueue:
    """A thread-safe work queue of splits for dynamic scheduling.

    Beyond plain FIFO draining (:meth:`take`), the queue supports the
    fault-tolerant executor's lifecycle: :meth:`claim` hands out splits with
    attempt tracking, failed attempts are :meth:`requeue`-d for another
    worker (retried splits are served before fresh ones), exhausted splits
    are :meth:`abandon`-ed, and :meth:`steal_straggler` lets an idle worker
    speculatively duplicate a long-in-flight split — the first finisher
    commits, via the :meth:`complete` first-completion gate.
    """

    def __init__(self, splits: Sequence[Split]) -> None:
        self._splits = list(splits)
        self._by_id = {s.split_id: s for s in self._splits}
        self._pending: deque[Split] = deque(self._splits)
        self._retry: deque[Split] = deque()
        self._inflight: dict[int, float] = {}  # split_id -> attempt start
        self._attempts: dict[int, int] = {}
        self._done: set[int] = set()
        self._abandoned: list[int] = []
        self._poisoned = False
        self.requeues = 0
        self._lock = threading.Lock()

    def take(self) -> Split | None:
        """Pop the next split, or None when the queue is drained.

        Retried splits, when present, are served before fresh ones.
        """
        with self._lock:
            return self._pop()

    def _pop(self) -> Split | None:
        if self._poisoned:
            return None
        if self._retry:
            return self._retry.popleft()
        if self._pending:
            return self._pending.popleft()
        return None

    def __len__(self) -> int:
        return len(self._splits)

    def drain(self) -> Iterator[Split]:
        """Iterate remaining splits (single-threaded use)."""
        while (s := self.take()) is not None:
            yield s

    # -- fault-tolerant lifecycle ------------------------------------------------

    def claim(self) -> "tuple[Split, int] | None":
        """Pop the next split with attempt tracking: ``(split, attempt)``.

        Marks the split in flight.  Returns None when nothing is claimable
        *right now* — check :meth:`outstanding` to distinguish "drained"
        from "everything is in flight elsewhere".
        """
        with self._lock:
            s = self._pop()
            if s is None:
                return None
            attempt = self._attempts.get(s.split_id, 0) + 1
            self._attempts[s.split_id] = attempt
            self._inflight[s.split_id] = time.monotonic()
            return s, attempt

    def complete(self, split: Split) -> bool:
        """Record a successful attempt; True only for the *first* completion.

        Speculative straggler duplicates call this too — exactly one caller
        sees True and commits its result, the rest discard theirs.
        """
        with self._lock:
            self._inflight.pop(split.split_id, None)
            if split.split_id in self._done:
                return False
            self._done.add(split.split_id)
            return True

    def requeue(self, split: Split) -> None:
        """Put a failed split back for another attempt (served first)."""
        with self._lock:
            self._inflight.pop(split.split_id, None)
            if split.split_id in self._done:
                return  # a speculative duplicate already finished it
            self._retry.append(split)
            self.requeues += 1

    def abandon(self, split: Split) -> None:
        """Give up on a split: mark it terminally failed."""
        with self._lock:
            self._inflight.pop(split.split_id, None)
            if split.split_id not in self._done:
                self._done.add(split.split_id)
                self._abandoned.append(split.split_id)

    def steal_straggler(self, threshold_seconds: float) -> "tuple[Split, int] | None":
        """Speculatively re-dispatch the oldest split in flight for at least
        ``threshold_seconds``; returns ``(split, attempt)`` or None.

        The stolen split's in-flight clock is reset so the same straggler is
        not immediately re-stolen by every idle worker.
        """
        now = time.monotonic()
        with self._lock:
            if self._poisoned:
                return None
            oldest_sid, oldest_start = None, now
            for sid, start in self._inflight.items():
                if sid in self._done:
                    continue
                if now - start >= threshold_seconds and start < oldest_start:
                    oldest_sid, oldest_start = sid, start
            if oldest_sid is None:
                return None
            self._inflight[oldest_sid] = now
            attempt = self._attempts.get(oldest_sid, 0) + 1
            self._attempts[oldest_sid] = attempt
            return self._by_id[oldest_sid], attempt

    def outstanding(self) -> bool:
        """Is any split still pending, queued for retry, or in flight?"""
        with self._lock:
            return bool(self._retry or self._pending or self._inflight)

    def poison(self) -> None:
        """Stop handing out work (fail-fast shutdown); claims return None."""
        with self._lock:
            self._poisoned = True

    @property
    def poisoned(self) -> bool:
        with self._lock:
            return self._poisoned

    def attempts(self, split_id: int) -> int:
        """Attempts recorded for a split id (0 if never claimed)."""
        with self._lock:
            return self._attempts.get(split_id, 0)

    @property
    def abandoned(self) -> list[int]:
        """Split ids given up on, in abandonment order."""
        with self._lock:
            return list(self._abandoned)
