"""FREERIDE middleware substrate.

A faithful Python rendering of the FREERIDE (FRamework for Rapid
Implementation of Datamining Engines) multicore API the paper targets
(Jiang, Ravi & Agrawal, CCGRID 2010 — the Phoenix-based implementation):
an explicit, dense *reduction object*; fused process+reduce over splits of
the input (no intermediate key/value pairs); per-technique shared-memory
combination; and all-to-one / parallel-merge global combination.
"""

from repro.freeride.api import FreerideContext
from repro.freeride.faults import (
    FAIL_FAST,
    SKIP_AND_REPORT,
    FaultInjector,
    FaultPolicy,
    InjectedFault,
    SplitFailureRecord,
    SplitTimeout,
)
from repro.freeride.combination import (
    PARALLEL_MERGE_THRESHOLD_BYTES,
    CombinationStats,
    all_to_one_combine,
    combine,
    parallel_merge_combine,
)
from repro.freeride.reduction_object import ACCUMULATE_OPS, ReductionObject
from repro.freeride.runtime import FreerideEngine, ReductionResult, RunStats
from repro.freeride.sharedmem import (
    ELEMS_PER_CACHE_LINE,
    LockingAccessor,
    ReplicatedAccessor,
    ROAccessor,
    ScratchAccessor,
    SharedMemManager,
    SharedMemStats,
    SharedMemTechnique,
)
from repro.freeride.spec import ReductionArgs, ReductionSpec
from repro.freeride.splitter import Split, SplitQueue, chunked_splitter, default_splitter

__all__ = [
    "FreerideContext",
    "FreerideEngine",
    "ReductionResult",
    "RunStats",
    "ReductionObject",
    "ACCUMULATE_OPS",
    "ReductionArgs",
    "ReductionSpec",
    "Split",
    "SplitQueue",
    "default_splitter",
    "chunked_splitter",
    "SharedMemTechnique",
    "SharedMemManager",
    "SharedMemStats",
    "ROAccessor",
    "ReplicatedAccessor",
    "LockingAccessor",
    "ScratchAccessor",
    "ELEMS_PER_CACHE_LINE",
    "FaultPolicy",
    "FaultInjector",
    "InjectedFault",
    "SplitTimeout",
    "SplitFailureRecord",
    "FAIL_FAST",
    "SKIP_AND_REPORT",
    "CombinationStats",
    "combine",
    "all_to_one_combine",
    "parallel_merge_combine",
    "PARALLEL_MERGE_THRESHOLD_BYTES",
]
