"""Shared-memory parallelization techniques for the reduction object.

The paper (§III-A): "the results from multiple threads in a single node are
combined locally **depending on the shared memory technique chosen by the
application developer**."  The FREERIDE line of work (Jin & Agrawal, SDM'02)
defines the techniques we reproduce:

``FULL_REPLICATION``
    each thread updates a private copy of the reduction object; copies are
    merged after the local reduction ends.  No synchronization during
    processing; memory cost scales with the number of threads.
``FULL_LOCKING``
    one shared copy; every element update acquires that element's lock.
``OPTIMIZED_FULL_LOCKING``
    same locking granularity, but each lock is co-located with its element
    (one cache miss instead of two).  Functionally identical to full locking;
    the difference is priced by the cost model.
``CACHE_SENSITIVE_LOCKING``
    one lock per cache block of elements (8 float64 elements per 64-byte
    line), reducing the number of locks and false sharing.
``COLORED``
    one shared copy with *neither* locks nor replicas: the engine colors the
    splits at plan time so that splits running concurrently are provably
    conflict-free (their RO group sets are disjoint — the PyOP2 iteration-set
    coloring argument), and executes them wave by wave.  Requires exact
    plan-time group bounds (see :mod:`repro.compiler.groupbounds` and
    :mod:`repro.freeride.coloring`); the engine falls back to another
    technique when the bounds are inexact.

All techniques produce identical reduction results; they differ in
synchronization counts, memory footprint and (in the simulated machine) cost.
"""

from __future__ import annotations

import enum
import hashlib
import threading
from dataclasses import dataclass, field
from multiprocessing import shared_memory as mp_shm
from typing import Callable, Iterable

import numpy as np

from repro.freeride.combination import (
    PARALLEL_MERGE_THRESHOLD_BYTES,
    CombinationStats,
    combine,
)
from repro.freeride.reduction_object import (
    ACCUMULATE_OPS,
    _MERGE_UFUNC,
    ReductionObject,
)
from repro.util.errors import FreerideError

__all__ = [
    "SharedMemTechnique",
    "SharedMemStats",
    "ROAccessor",
    "ReplicatedAccessor",
    "LockingAccessor",
    "ColoredAccessor",
    "ScratchAccessor",
    "SharedMemManager",
    "SharedBufferCache",
    "create_shm_segment",
    "attach_shm_segment",
    "close_shm_segment",
    "ELEMS_PER_CACHE_LINE",
]

#: 64-byte cache line / 8-byte float64 elements.
ELEMS_PER_CACHE_LINE = 8


class SharedMemTechnique(enum.Enum):
    """Which shared-memory technique guards reduction-object updates."""

    FULL_REPLICATION = "full_replication"
    FULL_LOCKING = "full_locking"
    OPTIMIZED_FULL_LOCKING = "optimized_full_locking"
    CACHE_SENSITIVE_LOCKING = "cache_sensitive_locking"
    COLORED = "colored"

    @classmethod
    def parse(cls, value: "SharedMemTechnique | str") -> "SharedMemTechnique":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise FreerideError(
                f"unknown shared-memory technique {value!r}; "
                f"choose from {[t.value for t in cls]}"
            )


@dataclass
class SharedMemStats:
    """Synchronization accounting, consumed by the cost model."""

    technique: SharedMemTechnique = SharedMemTechnique.FULL_REPLICATION
    lock_acquisitions: int = 0
    private_copies: int = 0
    merge_elements: int = 0  # elements merged during local combination
    num_locks: int = 0
    #: reduction-object memory footprint: replication pays one copy per
    #: thread, the locking techniques share one copy (the classic tradeoff)
    ro_memory_bytes: int = 0

    def add(self, other: "SharedMemStats") -> None:
        self.lock_acquisitions += other.lock_acquisitions
        self.private_copies += other.private_copies
        self.merge_elements += other.merge_elements
        self.num_locks += other.num_locks
        self.ro_memory_bytes += other.ro_memory_bytes


class ROAccessor:
    """A thread's handle for updating the reduction object."""

    stats: SharedMemStats

    def accumulate(self, group: int, elem: int, value: float) -> None:
        raise NotImplementedError

    def accumulate_group(self, group: int, values: np.ndarray) -> None:
        raise NotImplementedError

    def accumulate_batch(
        self,
        groups,
        elems,
        values,
        op: str = "add",
        mask: np.ndarray | None = None,
        lanes: int | None = None,
        exclusive: bool = False,
    ) -> None:
        """Vectorized per-lane updates (see
        :meth:`ReductionObject.accumulate_batch`); used by batch kernels.

        ``exclusive=True`` is a *hint* emitted by kernels compiled for the
        COLORED technique: the caller guarantees wave-exclusive access to
        every touched cell, so no synchronization is required.  Accessors
        that synchronize anyway (the locking family) simply ignore it —
        a mispaired kernel/accessor combination stays correct, just slower.
        """
        raise NotImplementedError

    def merge_from_scratch(
        self,
        scratch: ReductionObject,
        groups: "Iterable[int] | None" = None,
    ) -> None:
        """Commit a per-split scratch reduction object in one atomic step.

        The fault-tolerant engine processes each split attempt into a fresh
        scratch object and calls this only on success, so a failed or
        retried attempt never leaves partial accumulations behind.

        ``groups``, when given, restricts the commit to those group ids —
        the COLORED technique commits only the groups its coloring proved
        the split can touch, so concurrent same-wave commits never
        read-modify-write a group both left untouched.
        """
        raise NotImplementedError


class ReplicatedAccessor(ROAccessor):
    """Full replication: updates go to a private copy, no locks."""

    def __init__(self, private_ro: ReductionObject, technique: SharedMemTechnique) -> None:
        self.ro = private_ro
        self.stats = SharedMemStats(
            technique=technique,
            private_copies=1,
            ro_memory_bytes=private_ro.nbytes,
        )

    def accumulate(self, group: int, elem: int, value: float) -> None:
        self.ro.accumulate(group, elem, value)

    def accumulate_group(self, group: int, values: np.ndarray) -> None:
        self.ro.accumulate_group(group, values)

    def accumulate_batch(
        self, groups, elems, values, op="add", mask=None, lanes=None, exclusive=False
    ) -> None:
        self.ro.accumulate_batch(groups, elems, values, op, mask, lanes)

    def merge_from_scratch(self, scratch: ReductionObject, groups=None) -> None:
        # The private copy belongs to one thread; a plain merge is atomic
        # enough (the merge either happens wholly or not at all from the
        # combination phase's point of view).  ``groups`` needs no handling:
        # the scratch's untouched groups hold merge identities.
        self.ro.merge_from(scratch)


class ScratchAccessor(ROAccessor):
    """Accessor over a private per-split scratch object — no locks, no stats.

    Handed to the reduction function while a fault policy is active; the
    engine commits the scratch through the real accessor's
    :meth:`ROAccessor.merge_from_scratch` only if the attempt succeeds.
    """

    def __init__(self, scratch_ro: ReductionObject) -> None:
        self.ro = scratch_ro
        self.stats = SharedMemStats()

    def accumulate(self, group: int, elem: int, value: float) -> None:
        self.ro.accumulate(group, elem, value)

    def accumulate_group(self, group: int, values: np.ndarray) -> None:
        self.ro.accumulate_group(group, values)

    def accumulate_batch(
        self, groups, elems, values, op="add", mask=None, lanes=None, exclusive=False
    ) -> None:
        self.ro.accumulate_batch(groups, elems, values, op, mask, lanes)


class ColoredAccessor(ROAccessor):
    """Conflict-free coloring: direct updates to the shared copy, no locks.

    Safe only under the engine's wave schedule — splits updating through
    these accessors concurrently have disjoint group sets, so no two
    threads ever touch the same cell.  The one piece of state the waves
    *would* share is the reduction object's ``update_count``; each accessor
    therefore counts its own updates locally and
    :meth:`SharedMemManager.finish` folds them into the shared object after
    the last wave.
    """

    def __init__(self, shared_ro: ReductionObject, technique: SharedMemTechnique) -> None:
        self.ro = shared_ro
        self.stats = SharedMemStats(technique=technique)
        #: accessor-local update tally, folded into the shared RO at finish()
        self.updates = 0

    def accumulate(self, group: int, elem: int, value: float) -> None:
        meta, idx = self.ro._cell(group, elem)
        ACCUMULATE_OPS[meta.op](self.ro._buffer, idx, value)
        self.updates += 1

    def accumulate_group(self, group: int, values: np.ndarray) -> None:
        meta = self.ro._meta(group)
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (meta.num_elems,):
            raise FreerideError(
                f"group {group} expects {meta.num_elems} values, got {values.shape}"
            )
        sl = slice(meta.offset, meta.offset + meta.num_elems)
        ufunc = _MERGE_UFUNC[meta.op]
        self.ro._buffer[sl] = ufunc(self.ro._buffer[sl], values)
        self.updates += meta.num_elems

    def accumulate_batch(
        self, groups, elems, values, op="add", mask=None, lanes=None, exclusive=False
    ) -> None:
        idx, v = self.ro.batch_cells(groups, elems, values, op, mask, lanes)
        if idx.size == 0:
            return
        _MERGE_UFUNC[op].at(self.ro._buffer, idx, v)
        self.updates += int(idx.size)

    def merge_from_scratch(self, scratch: ReductionObject, groups=None) -> None:
        # Commit only the groups the coloring proved this split touches:
        # a full merge would read-modify-write groups concurrent same-wave
        # commits also leave untouched, racing on their cells.
        gids = range(self.ro.num_groups) if groups is None else groups
        for g in gids:
            self.ro.merge_group_from(g, scratch)
        self.updates += scratch.update_count


class _LockTable:
    """Maps (group, elem) cells to lock indices for a locking technique."""

    def __init__(self, ro: ReductionObject, technique: SharedMemTechnique) -> None:
        self.technique = technique
        if technique is SharedMemTechnique.CACHE_SENSITIVE_LOCKING:
            num_locks = (ro.size + ELEMS_PER_CACHE_LINE - 1) // ELEMS_PER_CACHE_LINE
        else:  # one lock per element
            num_locks = ro.size
        self.num_locks = max(1, num_locks)
        self.locks = [threading.Lock() for _ in range(self.num_locks)]
        #: guards non-element metadata (e.g. the shared update counter)
        self.meta_lock = threading.Lock()
        # Precompute each group's element offset to index the flat lock array.
        self._group_offsets = [ro._meta(g).offset for g in range(ro.num_groups)]

    def lock_index(self, group: int, elem: int, group_offset: int) -> int:
        flat = group_offset + elem
        if self.technique is SharedMemTechnique.CACHE_SENSITIVE_LOCKING:
            return flat // ELEMS_PER_CACHE_LINE
        return flat

    def group_lock_indices(self, group: int, num_elems: int) -> range:
        off = self._group_offsets[group]
        if self.technique is SharedMemTechnique.CACHE_SENSITIVE_LOCKING:
            first = off // ELEMS_PER_CACHE_LINE
            last = (off + num_elems - 1) // ELEMS_PER_CACHE_LINE
            return range(first, last + 1)
        return range(off, off + num_elems)


class LockingAccessor(ROAccessor):
    """Locking techniques: updates hit the shared copy under locks."""

    def __init__(
        self,
        shared_ro: ReductionObject,
        table: _LockTable,
        technique: SharedMemTechnique,
    ) -> None:
        self.ro = shared_ro
        self._table = table
        self.stats = SharedMemStats(technique=technique, num_locks=table.num_locks)

    def accumulate(self, group: int, elem: int, value: float) -> None:
        off = self._table._group_offsets[group]
        idx = self._table.lock_index(group, elem, off)
        with self._table.locks[idx]:
            self.ro.accumulate(group, elem, value)
        self.stats.lock_acquisitions += 1

    def accumulate_group(self, group: int, values: np.ndarray) -> None:
        meta = self.ro._meta(group)
        indices = self._table.group_lock_indices(group, meta.num_elems)
        # Acquire all covering locks in index order (deadlock-free), update,
        # release.  A vectorized group update under cache-sensitive locking
        # touches ceil(n/8) locks; under full locking, n locks.
        acquired = []
        try:
            for i in indices:
                self._table.locks[i].acquire()
                acquired.append(i)
            self.ro.accumulate_group(group, values)
        finally:
            for i in reversed(acquired):
                self._table.locks[i].release()
        self.stats.lock_acquisitions += len(acquired)

    def accumulate_batch(
        self, groups, elems, values, op="add", mask=None, lanes=None, exclusive=False
    ) -> None:
        # ``exclusive`` is deliberately ignored: a kernel compiled for the
        # colored technique stays correct under a locking accessor.
        idx, v = self.ro.batch_cells(groups, elems, values, op, mask, lanes)
        if idx.size == 0:
            return
        # Cover every touched cell's lock, acquired in ascending index order
        # (deadlock-free against concurrent batch updates and commits), then
        # apply the whole batch and release in reverse.
        if self._table.technique is SharedMemTechnique.CACHE_SENSITIVE_LOCKING:
            lock_indices = np.unique(idx // ELEMS_PER_CACHE_LINE)
        else:
            lock_indices = np.unique(idx)
        acquired = []
        try:
            for i in lock_indices.tolist():
                self._table.locks[i].acquire()
                acquired.append(i)
            self.ro.apply_batch(idx, v, op)
        finally:
            for i in reversed(acquired):
                self._table.locks[i].release()
        self.stats.lock_acquisitions += len(acquired)

    def merge_from_scratch(self, scratch: ReductionObject, groups=None) -> None:
        # Apply the scratch object group-by-group, each group under its
        # covering locks (acquired in ascending index order, so concurrent
        # commits cannot deadlock).  A group merge is one atomic unit: other
        # threads observe it entirely or not at all.
        gids = range(self.ro.num_groups) if groups is None else sorted(groups)
        for g in gids:
            meta = self.ro._meta(g)
            indices = self._table.group_lock_indices(g, meta.num_elems)
            acquired = []
            try:
                for i in indices:
                    self._table.locks[i].acquire()
                    acquired.append(i)
                self.ro.merge_group_from(g, scratch)
            finally:
                for i in reversed(acquired):
                    self._table.locks[i].release()
            self.stats.lock_acquisitions += len(acquired)
        with self._table.meta_lock:
            self.ro.update_count += scratch.update_count


class SharedMemManager:
    """Creates per-thread accessors and finishes the local combination.

    Usage::

        mgr = SharedMemManager(technique)
        accessors = mgr.setup(base_ro, num_threads)
        ... each thread t updates accessors[t] ...
        ro, sm_stats, lc_stats = mgr.finish(base_ro, accessors)
    """

    def __init__(self, technique: SharedMemTechnique | str) -> None:
        self.technique = SharedMemTechnique.parse(technique)

    def setup(self, base_ro: ReductionObject, num_threads: int) -> list[ROAccessor]:
        if num_threads <= 0:
            raise FreerideError("num_threads must be positive")
        base_ro.freeze_layout()
        if self.technique is SharedMemTechnique.FULL_REPLICATION:
            return [
                ReplicatedAccessor(base_ro.clone_empty(), self.technique)
                for _ in range(num_threads)
            ]
        if self.technique is SharedMemTechnique.COLORED:
            # One shared copy, zero locks — safe only under a wave schedule
            # (the engine guarantees concurrently-running splits touch
            # disjoint group sets).
            return [
                ColoredAccessor(base_ro, self.technique)
                for _ in range(num_threads)
            ]
        table = _LockTable(base_ro, self.technique)
        return [
            LockingAccessor(base_ro, table, self.technique)
            for _ in range(num_threads)
        ]

    def finish(
        self,
        base_ro: ReductionObject,
        accessors: list[ROAccessor],
        combination: "Callable[[list[ReductionObject]], ReductionObject] | None" = None,
        parallel_merge_threshold: int = PARALLEL_MERGE_THRESHOLD_BYTES,
    ) -> tuple[ReductionObject, SharedMemStats, CombinationStats]:
        """Run the local combination phase.

        Returns ``(combined RO, shared-memory stats, combination stats)``.
        This is the single accounting path for local combination — the
        engine calls it too, so ``num_locks``, ``ro_memory_bytes`` and
        ``merge_elements`` are reported identically everywhere.

        ``combination``, when given (full replication only), is the
        application's custom ``combination_t``: it receives the per-thread
        copies and must return a :class:`ReductionObject`, which is then
        merged into ``base_ro``.  The per-thread copies are never mutated
        by the default combination.
        """
        total = SharedMemStats(technique=self.technique)
        for acc in accessors:
            total.add(acc.stats)
        # Accessors of a locking technique share one lock table; report the
        # table size, not the per-accessor sum.
        total.num_locks = max((acc.stats.num_locks for acc in accessors), default=0)
        if self.technique is SharedMemTechnique.COLORED:
            # Fold the accessor-local update tallies the wave schedule kept
            # off the shared object (see ColoredAccessor).
            for acc in accessors:
                base_ro.update_count += getattr(acc, "updates", 0)
        if self.technique is not SharedMemTechnique.FULL_REPLICATION:
            total.ro_memory_bytes = base_ro.nbytes  # one shared copy
            # Locking and colored techniques already updated base_ro in place.
            return base_ro, total, CombinationStats(strategy="in_place")

        copies = [acc.ro for acc in accessors]  # type: ignore[attr-defined]
        if combination is not None:
            combined = combination(copies)
            if not isinstance(combined, ReductionObject):
                raise FreerideError("custom combination must return a ReductionObject")
            base_ro.merge_from(combined)
            lc_stats = CombinationStats(
                strategy="custom",
                merges=len(copies),
                rounds=1,
                elements_merged=base_ro.size * len(copies),
            )
        else:
            _, lc_stats = combine(copies, parallel_merge_threshold, target=base_ro)
        total.merge_elements += lc_stats.elements_merged
        return base_ro, total, lc_stats


# -- process-mode shared-memory segments ----------------------------------------
#
# The ``"process"`` executor extends full replication across address spaces:
# the parent publishes the linearized dataset into a POSIX shared-memory
# segment once, workers attach it zero-copy, and per-worker reduction-object
# replicas live in a second segment the parent wraps (and merges through the
# ordinary ``combine()`` tree) after the workers return.


def create_shm_segment(nbytes: int) -> mp_shm.SharedMemory:
    """Create an anonymous shared-memory segment of at least ``nbytes``.

    The creator owns the segment: pass the returned object to
    :func:`close_shm_segment` with ``unlink=True`` when every attached view
    has been dropped.
    """
    return mp_shm.SharedMemory(create=True, size=max(1, int(nbytes)))


def attach_shm_segment(name: str) -> mp_shm.SharedMemory:
    """Attach an existing segment *without* taking ownership of it.

    Python's ``multiprocessing.resource_tracker`` registers a segment on
    every attach (not just on create) before 3.13; ``track=False`` opts out
    where available.  On older versions the duplicate registration is left
    in place deliberately: every attacher in this architecture is a pool
    worker (or the creating process itself) sharing the creator's tracker,
    whose name cache is a *set* — the attach-side register is a no-op
    against the creator's entry, and the creator's eventual unlink removes
    it exactly once.  Unregistering here instead would strip the creator's
    entry the first time and underflow the set when several workers attach
    the same segment.
    """
    try:
        return mp_shm.SharedMemory(name=name, track=False)  # Python >= 3.13
    except TypeError:
        return mp_shm.SharedMemory(name=name)


def close_shm_segment(shm: mp_shm.SharedMemory, unlink: bool = False) -> None:
    """Close (and optionally unlink) a segment, tolerating live exports.

    ``SharedMemory.close`` raises ``BufferError`` while numpy views over
    ``shm.buf`` are still alive; callers drop their views first, but a
    leaked view must not turn cleanup into a crash — the mapping is then
    left for the OS to reap at process exit while the name is still
    unlinked (so no ``/dev/shm`` entry outlives the run).
    """
    if unlink:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
    try:
        shm.close()
    except BufferError:
        pass


class SharedBufferCache:
    """Publishes read-only numpy buffers into shared memory, once per content.

    The process executor ships only ``(segment name, nbytes)`` descriptors
    per run; the actual bytes cross the process boundary exactly once per
    distinct buffer *content*, however many runs (outer-loop iterations)
    reuse it.  Keyed by a SHA-256 digest of the bytes rather than the source
    array's address: ``run_iterative`` re-linearizes the dataset into a
    fresh array every pass, so address-keying would republish identical data
    as a new segment per iteration (unbounded ``/dev/shm`` growth over
    k-means' ~20 passes), and an address key would also need a strong
    reference pinning every source array alive.  Hashing costs ~1 ms per
    couple of MB — noise next to a segment copy.  Owned by one engine and
    released by ``engine.close()`` (or the engine's exit finalizer).
    """

    def __init__(self) -> None:
        self._entries: dict[str, mp_shm.SharedMemory] = {}
        #: session key -> (segment, bytes currently valid in it); see
        #: :meth:`publish_session`
        self._sessions: dict[str, tuple[mp_shm.SharedMemory, int]] = {}
        #: bytes copied by session publishes, split by kind — a delta
        #: session's steady state is tail-only (the incremental win the
        #: benchmarks assert); full copies happen only on first publish
        #: and on capacity growth
        self.session_tail_bytes = 0
        self.session_full_bytes = 0
        self._lock = threading.Lock()

    def publish_session(
        self, key: str, arr: np.ndarray, valid_prefix: int | None = None
    ) -> tuple[str, int]:
        """Publish a *growable* buffer under a caller-chosen session key.

        Unlike :meth:`publish` (content-addressed, one immutable segment
        per distinct byte string), a session segment is updated in place:
        when ``arr`` extends the previously published bytes, only the new
        tail is copied — O(|Δ|) per delta run instead of O(n).  The
        segment is over-allocated 2× so repeated appends amortize; past
        capacity a larger segment replaces it (workers re-attach by the
        new name; the old segment is unlinked but stays mapped wherever
        it is still open).

        ``valid_prefix`` caps how many previously published bytes are
        trusted — after a rolled-back delta shrank the dataset, bytes past
        the rollback point are stale and are rewritten.
        """
        arr = np.asarray(arr)
        if not arr.flags["C_CONTIGUOUS"]:
            raise FreerideError("can only publish C-contiguous buffers")
        flat = arr.reshape(-1).view(np.uint8)
        nbytes = int(flat.size)
        with self._lock:
            entry = self._sessions.get(key)
            if entry is not None:
                shm, written = entry
                if valid_prefix is not None:
                    written = min(written, int(valid_prefix))
                written = min(written, nbytes)
                if shm.size >= nbytes:
                    if nbytes > written:
                        dst = np.ndarray((nbytes,), dtype=np.uint8, buffer=shm.buf)
                        dst[written:nbytes] = flat[written:nbytes]
                        del dst
                        self.session_tail_bytes += nbytes - written
                    self._sessions[key] = (shm, nbytes)
                    return shm.name, nbytes
                # outgrew capacity: migrate to a doubled segment (full copy)
                new = create_shm_segment(max(2 * nbytes, 1))
                if nbytes:
                    dst = np.ndarray((nbytes,), dtype=np.uint8, buffer=new.buf)
                    dst[:] = flat
                    del dst
                self.session_full_bytes += nbytes
                close_shm_segment(shm, unlink=True)
                self._sessions[key] = (new, nbytes)
                return new.name, nbytes
            shm = create_shm_segment(max(2 * nbytes, 1))
            if nbytes:
                dst = np.ndarray((nbytes,), dtype=np.uint8, buffer=shm.buf)
                dst[:] = flat
                del dst
            self.session_full_bytes += nbytes
            self._sessions[key] = (shm, nbytes)
            return shm.name, nbytes

    def publish(self, arr: np.ndarray) -> tuple[str, int]:
        """Copy ``arr`` into a shared segment (once); returns ``(name, nbytes)``."""
        arr = np.asarray(arr)
        if not arr.flags["C_CONTIGUOUS"]:
            raise FreerideError("can only publish C-contiguous buffers")
        flat = arr.reshape(-1).view(np.uint8)
        key = hashlib.sha256(flat).hexdigest()
        with self._lock:
            shm = self._entries.get(key)
            if shm is None:
                shm = create_shm_segment(arr.nbytes)
                if arr.nbytes:
                    dst = np.ndarray((arr.nbytes,), dtype=np.uint8, buffer=shm.buf)
                    dst[:] = flat
                    del dst
                self._entries[key] = shm
            return shm.name, arr.nbytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def names(self) -> list[str]:
        """Names of the live segments (tests assert they vanish on close)."""
        with self._lock:
            return [shm.name for shm in self._entries.values()] + [
                shm.name for shm, _ in self._sessions.values()
            ]

    def close(self) -> None:
        """Unlink and close every published segment.  Idempotent."""
        with self._lock:
            entries, self._entries = list(self._entries.values()), {}
            sessions, self._sessions = list(self._sessions.values()), {}
        for shm in entries:
            close_shm_segment(shm, unlink=True)
        for shm, _ in sessions:
            close_shm_segment(shm, unlink=True)
