"""The FREERIDE execution engine.

Implements the processing structure of the paper's Figure 4 (left):

.. code-block:: text

    {* Outer Sequential Loop *}  <- driven by the application (e.g. k-means)
    While() {
        {* Reduction Loop *}
        Foreach(element e) {
            (i, val) = Process(e);
            RObj(i) = Reduce(RObj(i), val);
        }
        Global Reduction to Combine RObj
    }

One :meth:`FreerideEngine.run` call executes one pass of the reduction loop:
split the input, run the local reduction on every split across threads
(map and reduce fused — each element is processed *and* reduced before the
next), perform the local combination (per shared-memory technique), the
global combination (across nodes, all-to-one or parallel merge), and
finalize.

Two executors are provided: ``"serial"`` (deterministic round-robin split
assignment — the mode the simulated machine models) and ``"threads"``
(a real thread pool pulling splits from a shared queue).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable


def _validate_custom_splits(splits: "list[Split]", data: Any) -> None:
    """A user splitter must produce an exact, ordered partition."""
    if not isinstance(splits, list) or not all(isinstance(s, Split) for s in splits):
        raise SplitterError("custom splitter must return a list of Split")
    try:
        n = len(data)
    except TypeError:
        raise SplitterError("custom splitter data must be sized")
    _check_partition(splits, n)

from repro.freeride.combination import (
    PARALLEL_MERGE_THRESHOLD_BYTES,
    CombinationStats,
    combine,
)
from repro.freeride.reduction_object import ReductionObject
from repro.freeride.sharedmem import (
    ROAccessor,
    SharedMemManager,
    SharedMemStats,
    SharedMemTechnique,
)
from repro.freeride.spec import ReductionArgs, ReductionSpec
from repro.freeride.splitter import (
    Split,
    SplitQueue,
    _check_partition,
    chunked_splitter,
    default_splitter,
)
from repro.util.errors import FreerideError, SplitterError
from repro.util.timing import PhaseTimer
from repro.util.validation import check_one_of, check_positive_int

__all__ = ["RunStats", "ReductionResult", "FreerideEngine"]


@dataclass
class RunStats:
    """Everything a run observed; the cost model consumes these counters."""

    num_threads: int = 1
    num_nodes: int = 1
    executor: str = "serial"
    technique: SharedMemTechnique = SharedMemTechnique.FULL_REPLICATION
    total_elements: int = 0
    elements_per_thread: list[int] = field(default_factory=list)
    splits_per_thread: list[int] = field(default_factory=list)
    ro_updates: int = 0
    ro_size: int = 0
    sharedmem: SharedMemStats = field(default_factory=SharedMemStats)
    local_combination: CombinationStats = field(default_factory=CombinationStats)
    global_combination: CombinationStats | None = None
    phase_seconds: dict[str, float] = field(default_factory=dict)


@dataclass
class ReductionResult:
    """Outcome of one reduction pass."""

    value: Any
    ro: ReductionObject
    stats: RunStats


class FreerideEngine:
    """Runs :class:`~repro.freeride.spec.ReductionSpec` applications.

    Parameters
    ----------
    num_threads:
        threads per node ("One thread is allocated on one CPU" in §V).
    technique:
        shared-memory technique for reduction-object updates.
    executor:
        ``"serial"`` or ``"threads"``.
    chunk_size:
        if given, the input is cut into fixed-size chunks pulled dynamically;
        otherwise the default splitter produces one block per thread.
    num_nodes:
        cluster width for the global combination phase (each node runs the
        full local pipeline on its block of the data).
    parallel_merge_threshold:
        reduction objects at least this many bytes use the parallel merge.
    """

    def __init__(
        self,
        num_threads: int = 1,
        technique: SharedMemTechnique | str = SharedMemTechnique.FULL_REPLICATION,
        executor: str = "serial",
        chunk_size: int | None = None,
        num_nodes: int = 1,
        parallel_merge_threshold: int = PARALLEL_MERGE_THRESHOLD_BYTES,
        splitter: "Callable[[Any, int], list[Split]] | None" = None,
    ) -> None:
        self.num_threads = check_positive_int(num_threads, "num_threads")
        self.technique = SharedMemTechnique.parse(technique)
        self.executor = check_one_of(executor, ("serial", "threads"), "executor")
        if chunk_size is not None:
            check_positive_int(chunk_size, "chunk_size")
        self.chunk_size = chunk_size
        self.num_nodes = check_positive_int(num_nodes, "num_nodes")
        self.parallel_merge_threshold = parallel_merge_threshold
        if splitter is not None and not callable(splitter):
            raise FreerideError("splitter must be callable (splitter_t)")
        #: custom ``splitter_t``; None selects the middleware default
        self.splitter = splitter

    # -- public entry ---------------------------------------------------------

    def run(self, spec: ReductionSpec, data: Any) -> ReductionResult:
        """Execute one reduction pass over ``data``."""
        timer = PhaseTimer()
        stats = RunStats(
            num_threads=self.num_threads,
            num_nodes=self.num_nodes,
            executor=self.executor,
            technique=self.technique,
        )

        if self.num_nodes == 1:
            with timer.phase("local"):
                ro, sm_stats, lc_stats = self._run_node(spec, data, stats)
            stats.sharedmem = sm_stats
            stats.local_combination = lc_stats
        else:
            node_ros: list[ReductionObject] = []
            with timer.phase("local"):
                for node_block in default_splitter(data, self.num_nodes):
                    node_ro, sm_stats, lc_stats = self._run_node(
                        spec, node_block.data, stats
                    )
                    stats.sharedmem.add(sm_stats)
                    stats.local_combination.merges += lc_stats.merges
                    stats.local_combination.rounds = max(
                        stats.local_combination.rounds, lc_stats.rounds
                    )
                    node_ros.append(node_ro)
            with timer.phase("global_combination"):
                ro, g_stats = combine(node_ros, self.parallel_merge_threshold)
                stats.global_combination = g_stats

        stats.ro_updates = ro.update_count
        stats.ro_size = ro.size

        with timer.phase("finalize"):
            value: Any = spec.finalize(ro) if spec.finalize is not None else ro

        stats.phase_seconds = timer.as_dict()
        return ReductionResult(value=value, ro=ro, stats=stats)

    def run_iterative(
        self,
        make_spec: "Callable[[Any], ReductionSpec]",
        data: Any,
        iterations: int,
        update: "Callable[[ReductionResult, Any], Any]",
        state: Any,
        converged: "Callable[[Any, Any], bool] | None" = None,
    ) -> tuple[Any, list[ReductionResult]]:
        """The outer sequential loop of Figure 4's left column.

        ``make_spec(state)`` builds the reduction for the current state
        (e.g. current centroids); ``update(result, state)`` derives the next
        state from the combined reduction object; the optional
        ``converged(old, new)`` predicate ends the loop early (k-means'
        "repeat until the centroids are stable").

        Returns the final state and every pass's :class:`ReductionResult`.
        """
        check_positive_int(iterations, "iterations")
        results: list[ReductionResult] = []
        for _ in range(iterations):
            spec = make_spec(state)
            result = self.run(spec, data)
            results.append(result)
            new_state = update(result, state)
            if converged is not None and converged(state, new_state):
                state = new_state
                break
            state = new_state
        return state, results

    # -- one node's local pipeline ---------------------------------------------

    def _run_node(
        self, spec: ReductionSpec, data: Any, stats: RunStats
    ) -> tuple[ReductionObject, SharedMemStats, CombinationStats]:
        ro = spec.build_reduction_object()
        mgr = SharedMemManager(self.technique)
        accessors = mgr.setup(ro, self.num_threads)

        if self.splitter is not None:
            splits = self.splitter(data, self.num_threads)
            _validate_custom_splits(splits, data)
        elif self.chunk_size is not None:
            splits = chunked_splitter(data, self.chunk_size)
        else:
            splits = default_splitter(data, self.num_threads)

        elems = [0] * self.num_threads
        nsplits = [0] * self.num_threads

        def process(thread_id: int, split: Split) -> None:
            args = ReductionArgs(
                data=split.data,
                split=split,
                thread_id=thread_id,
                ro=accessors[thread_id],
                extras=spec.extras,
            )
            spec.reduction(args)
            elems[thread_id] += len(split)
            nsplits[thread_id] += 1

        if self.executor == "serial":
            for i, split in enumerate(splits):
                if len(split) == 0:
                    continue
                process(i % self.num_threads, split)
        else:
            queue = SplitQueue(splits)

            def worker(thread_id: int) -> None:
                while (s := queue.take()) is not None:
                    if len(s) == 0:
                        continue
                    process(thread_id, s)

            with ThreadPoolExecutor(max_workers=self.num_threads) as pool:
                futures = [pool.submit(worker, t) for t in range(self.num_threads)]
                for f in futures:
                    f.result()  # propagate worker exceptions

        stats.total_elements += sum(elems)
        if not stats.elements_per_thread:
            stats.elements_per_thread = elems
            stats.splits_per_thread = nsplits
        else:
            stats.elements_per_thread = [
                a + b for a, b in zip(stats.elements_per_thread, elems)
            ]
            stats.splits_per_thread = [
                a + b for a, b in zip(stats.splits_per_thread, nsplits)
            ]

        # Local combination.
        sm_stats = SharedMemStats(technique=self.technique)
        for acc in accessors:
            sm_stats.add(acc.stats)
        if self.technique is SharedMemTechnique.FULL_REPLICATION:
            if spec.combination is not None:
                combined = spec.combination([acc.ro for acc in accessors])  # type: ignore[attr-defined]
                if not isinstance(combined, ReductionObject):
                    raise FreerideError(
                        "custom combination must return a ReductionObject"
                    )
                ro.merge_from(combined)
                lc_stats = CombinationStats(strategy="custom", merges=len(accessors))
            else:
                combined, lc_stats = combine(
                    [acc.ro for acc in accessors],  # type: ignore[attr-defined]
                    self.parallel_merge_threshold,
                )
                ro.merge_from(combined)
            sm_stats.merge_elements += lc_stats.elements_merged
        else:
            lc_stats = CombinationStats(strategy="in_place")
        return ro, sm_stats, lc_stats
