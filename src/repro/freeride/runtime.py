"""The FREERIDE execution engine.

Implements the processing structure of the paper's Figure 4 (left):

.. code-block:: text

    {* Outer Sequential Loop *}  <- driven by the application (e.g. k-means)
    While() {
        {* Reduction Loop *}
        Foreach(element e) {
            (i, val) = Process(e);
            RObj(i) = Reduce(RObj(i), val);
        }
        Global Reduction to Combine RObj
    }

One :meth:`FreerideEngine.run` call executes one pass of the reduction loop:
split the input, run the local reduction on every split across threads
(map and reduce fused — each element is processed *and* reduced before the
next), perform the local combination (per shared-memory technique), the
global combination (across nodes, all-to-one or parallel merge), and
finalize.

Three executors are provided: ``"serial"`` (deterministic round-robin split
assignment — the mode the simulated machine models), ``"threads"`` (a real
thread pool pulling splits from a shared queue), and ``"process"`` (a
persistent worker-process pool sidestepping the GIL: the linearized dataset
is published into shared memory once per engine, workers attach it zero-copy
and accumulate into per-worker reduction-object replicas in a second shared
segment — full replication extended across address spaces; see
:mod:`repro.freeride.procexec`).

When a :class:`~repro.freeride.faults.FaultPolicy` (or injector) is
configured, split processing becomes fault tolerant: every attempt runs
against a fresh per-split *scratch* reduction object that is committed to
the thread's accessor only on success — atomically merged into the private
copy (full replication) or applied group-by-group under the lock table
(locking techniques) — so a failed or retried attempt never leaves partial
accumulations behind and no element is ever double counted.
"""

from __future__ import annotations

import itertools
import pickle
import threading
import time
import weakref
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np


def _validate_custom_splits(splits: "list[Split]", data: Any) -> None:
    """A user splitter must produce an exact, ordered partition."""
    if not isinstance(splits, list) or not all(isinstance(s, Split) for s in splits):
        raise SplitterError("custom splitter must return a list of Split")
    try:
        n = len(data)
    except TypeError:
        raise SplitterError("custom splitter data must be sized")
    _check_partition(splits, n)

from repro.freeride.combination import (
    PARALLEL_MERGE_THRESHOLD_BYTES,
    CombinationStats,
    combine,
)
from repro.freeride.faults import (
    FAIL_FAST,
    FaultInjector,
    FaultPolicy,
    InjectedFault,
    SplitFailureRecord,
    SplitTimeout,
)
from repro.freeride.delta import (
    DeltaSession,
    ROCheckpoint,
    contiguous_runs,
    mask_runs,
)
from repro.freeride.reduction_object import (
    INVERTIBLE_ACCUMULATE_OPS,
    ReductionObject,
)
from repro.freeride.sharedmem import (
    ROAccessor,
    ScratchAccessor,
    SharedBufferCache,
    SharedMemManager,
    SharedMemStats,
    SharedMemTechnique,
    close_shm_segment,
    create_shm_segment,
)
from repro.freeride.spec import ReductionArgs, ReductionSpec
from repro.freeride.splitter import (
    Split,
    SplitQueue,
    _check_partition,
    aligned_splits,
    chunked_splitter,
    default_splitter,
    split_descriptors,
)
from repro.obs.metrics import DEFAULT_COUNT_BUCKETS, MetricsRegistry
from repro.obs.profilestore import (
    MAX_FOOTPRINT_CELLS,
    ProfileStore,
    RunProfile,
    resolve_store,
    shape_class,
    split_layout_fingerprint,
    summarize_durations,
)
from repro.obs.tracer import NullTracer, Tracer, get_tracer
from repro.util.errors import FaultToleranceError, FreerideError, SplitterError
from repro.util.timing import PhaseTimer
from repro.util.validation import check_one_of, check_positive_int

__all__ = [
    "RunStats",
    "ReductionResult",
    "FreerideEngine",
    "REPLICATION_BUDGET_BYTES",
    "CONTENTION_FEEDBACK_THRESHOLD",
    "DELTA_COMMIT_SPLIT_ID",
]

#: pseudo split id the delta commit reports to a configured
#: :class:`~repro.freeride.faults.FaultInjector` — real splits are numbered
#: from 0, so ``FaultInjector(fail_split_ids={DELTA_COMMIT_SPLIT_ID},
#: fail_attempts=n)`` makes the first ``n`` commit attempts of a delta
#: epoch fail mid-commit (exercising checkpoint rollback) without touching
#: ordinary split processing.
DELTA_COMMIT_SPLIT_ID = -1

#: distinct shared-memory session keys for delta sessions of one process
_DELTA_SESSION_IDS = itertools.count()


#: smallest sub-range the replay planner probes the effect summary at when
#: the summary carries no alignment hint — below this, probing costs more
#: than just re-reducing the elements
_REPLAY_PROBE_LEAF = 16

#: average run length below which scattered/fragmented delta computes are
#: gathered into one contiguous buffer and reduced in a single kernel
#: dispatch — the kernel's fixed per-dispatch cost is roughly the
#: vectorized cost of this many elements, so shorter runs lose more to
#: dispatch overhead than the gather copy costs
_GATHER_RUN_THRESHOLD = 1024


def _replay_subranges(
    start: int,
    end: int,
    targets: "set[int]",
    per_range: "Callable[[int, int, int], frozenset[int] | None] | None",
    num_groups: int,
    leaf: int,
    out: "list[tuple[int, int]]",
) -> None:
    """Collect the sub-ranges of ``[start, end)`` that can touch ``targets``.

    Recursive footprint bisection over the effect summary: a range whose
    footprint is disjoint from the replayed groups is skipped whole, one
    fully inside them is replayed whole, and mixed ranges split in half —
    so a retraction in one window replays O(window) elements even when the
    surviving elements form one giant contiguous run.  Adjacent survivors
    are merged so the reduction sees maximal runs.
    """
    if start >= end:
        return
    footprint = per_range(start, end, num_groups) if per_range is not None else None
    if footprint is not None and not (footprint & targets):
        return
    if footprint is None or footprint <= targets or end - start <= leaf:
        if out and out[-1][1] == start:
            out[-1] = (out[-1][0], end)
        else:
            out.append((start, end))
        return
    mid = (start + end) // 2
    _replay_subranges(start, mid, targets, per_range, num_groups, leaf, out)
    _replay_subranges(mid, end, targets, per_range, num_groups, leaf, out)

#: ``technique="auto"``: replicating the reduction object across threads
#: beyond this many total bytes (``ro.nbytes * num_threads``) is considered
#: too expensive and the selector prefers a single-copy technique.
REPLICATION_BUDGET_BYTES = 64 * 1024 * 1024

#: ``technique="auto"``: when replication is over budget and the previous
#: traced run's ``ro.lock_acquisitions_per_split`` histogram averaged more
#: than this many acquisitions per split, the selector prefers colored
#: waves (when colorable) over cache-sensitive locking.
CONTENTION_FEEDBACK_THRESHOLD = 8.0


@dataclass
class RunStats:
    """Everything a run observed; the cost model consumes these counters."""

    num_threads: int = 1
    num_nodes: int = 1
    executor: str = "serial"
    #: the technique the run actually executed (always effective, never the
    #: request — a coerced or fallen-back run reports what really happened)
    technique: SharedMemTechnique = SharedMemTechnique.FULL_REPLICATION
    #: what the caller asked for: a technique value or ``"auto"``
    technique_requested: str = SharedMemTechnique.FULL_REPLICATION.value
    #: alias of :attr:`technique`, spelled out so a reader comparing request
    #: vs. outcome never has to guess which one ``technique`` means
    technique_effective: SharedMemTechnique = SharedMemTechnique.FULL_REPLICATION
    #: why the effective technique differs from the request (``auto``
    #: selection or colored fallback): ``{requested, chosen, reason,
    #: inputs}``; ``None`` when the request was honored verbatim
    technique_decision: dict[str, Any] | None = None
    #: wave-schedule summary when the run executed colored
    #: (:meth:`repro.freeride.coloring.SplitColoring.as_dict`), else ``None``
    coloring: dict[str, Any] | None = None
    #: element alignment the default splitter snapped split boundaries to
    #: (the effect analysis' ``GroupBounds.alignment`` wave hint); ``None``
    #: when the run used unaligned splits
    split_alignment: int | None = None
    total_elements: int = 0
    elements_per_thread: list[int] = field(default_factory=list)
    splits_per_thread: list[int] = field(default_factory=list)
    ro_updates: int = 0
    ro_size: int = 0
    #: compiled-kernel cache hits observed *during this run* (the delta of
    #: :func:`repro.compiler.cache.kernel_cache_stats` across the run, so
    #: back-to-back runs never inherit each other's hits)
    kernel_cache_hits: int = 0
    #: LRU evictions from the bounded in-memory kernel cache during this
    #: run (same per-run delta convention as :attr:`kernel_cache_hits`)
    kernel_cache_evictions: int = 0
    #: :meth:`repro.obs.MetricsRegistry.snapshot` of the run's metrics
    #: (split-duration histograms, RO contention, ...); empty when tracing
    #: is disabled — the metrics pipeline lives off the hot path
    metrics: dict[str, Any] = field(default_factory=dict)
    sharedmem: SharedMemStats = field(default_factory=SharedMemStats)
    local_combination: CombinationStats = field(default_factory=CombinationStats)
    global_combination: CombinationStats | None = None
    phase_seconds: dict[str, float] = field(default_factory=dict)
    # -- fault-tolerance accounting (all zero without a fault policy) ----------
    #: retry attempts beyond each split's first (includes straggler re-runs)
    retries: int = 0
    #: splits abandoned after exhausting retries (``skip_and_report`` only)
    failed_splits: int = 0
    #: failures raised by a configured :class:`FaultInjector`
    injected_faults: int = 0
    #: splits pushed back to the work queue for another worker (threads)
    requeues: int = 0
    #: attempts discarded for exceeding the policy's ``split_timeout``
    timeouts: int = 0
    #: per-split attempt counts (max across nodes when split ids repeat)
    split_attempts: dict[int, int] = field(default_factory=dict)
    #: one record per abandoned split
    failures: list[SplitFailureRecord] = field(default_factory=list)
    # -- incremental delta execution (all defaults outside run_delta) ----------
    #: delta epoch this result committed (``None`` for ordinary full runs)
    delta_epoch: int | None = None
    #: ``"append"``, ``"retract"`` or ``"append+retract"``
    delta_mode: str | None = None
    #: elements appended by this delta
    delta_appended: int = 0
    #: elements tombstoned by this delta
    delta_retracted: int = 0
    #: non-invertible groups re-reduced from surviving elements
    delta_groups_replayed: int = 0
    #: live elements re-processed by the replay pass (effect-summary bounded)
    delta_replay_elements: int = 0
    #: checkpoint pre-images copied this epoch (one per mutated group)
    delta_checkpoint_saves: int = 0
    #: checkpoint ``save_group`` calls answered by an existing pre-image
    delta_checkpoint_hits: int = 0


@dataclass
class ReductionResult:
    """Outcome of one reduction pass."""

    value: Any
    ro: ReductionObject
    stats: RunStats


class _EngineResources:
    """An engine's OS-level resources, releasable without the engine.

    Split out of :class:`FreerideEngine` so a ``weakref.finalize`` can shut
    everything down when the engine is garbage collected or the interpreter
    exits — an application that leaks an engine without calling ``close()``
    must not hang shutdown on live pool workers or leave ``/dev/shm``
    segments behind (``weakref.finalize`` callbacks run via ``atexit``
    *before* threading/multiprocessing teardown, so an orderly
    ``shutdown(wait=True)`` is still possible there).
    """

    __slots__ = ("thread_pool", "process_pool", "segments")

    def __init__(self) -> None:
        self.thread_pool: ThreadPoolExecutor | None = None
        self.process_pool: ProcessPoolExecutor | None = None
        #: shared-memory copies of published datasets (process executor)
        self.segments = SharedBufferCache()

    def release(self) -> None:
        if self.thread_pool is not None:
            self.thread_pool.shutdown(wait=True)
            self.thread_pool = None
        if self.process_pool is not None:
            self.process_pool.shutdown(wait=True)
            self.process_pool = None
        self.segments.close()


class FreerideEngine:
    """Runs :class:`~repro.freeride.spec.ReductionSpec` applications.

    Parameters
    ----------
    num_threads:
        threads per node ("One thread is allocated on one CPU" in §V).
    technique:
        shared-memory technique for reduction-object updates, or ``"auto"``
        to let the engine pick one per run from the reduction object's
        size, the splits' provable group footprints and (when tracing)
        lock-contention feedback; the choice is recorded in
        ``RunStats.technique_decision`` and as a ``technique.decision``
        trace event.  ``"colored"`` requests conflict-free wave execution
        and falls back to full replication (recording why) when no exact
        plan-time group bounds are available.
    executor:
        ``"serial"``, ``"threads"`` or ``"process"``.  The process executor
        requires full replication and compiled reductions (specs built by
        :meth:`~repro.compiler.translate.BoundReduction.make_spec`); see
        ``docs/PERFORMANCE.md`` for how to choose.
    chunk_size:
        if given, the input is cut into fixed-size chunks pulled dynamically;
        otherwise the default splitter produces one block per thread.
    num_nodes:
        cluster width for the global combination phase (each node runs the
        full local pipeline on its block of the data).
    parallel_merge_threshold:
        reduction objects at least this many bytes use the parallel merge.
    fault_policy:
        enables fault-tolerant split execution (retries with backoff, soft
        per-split timeouts, straggler re-dispatch, fail-fast or
        skip-and-report degradation).  ``None`` (the default) keeps the
        zero-overhead direct path.
    fault_injector:
        deterministic seeded failure/delay injection for testing recovery;
        implies a default :class:`FaultPolicy` if none is given.
    tracer:
        an explicit :class:`~repro.obs.Tracer` for this engine's runs.
        ``None`` (the default) resolves the process-wide tracer
        (:func:`repro.obs.get_tracer`) at every :meth:`run`, so
        ``with tracing(): ...`` around existing code just works.  When the
        resolved tracer is disabled the engine installs **no** per-split
        instrumentation — the execution path is byte-for-byte the
        pre-observability one.
    profile_store:
        persistent run-history recording and profile-guided execution
        (:mod:`repro.obs.profilestore`).  ``None``/``False`` (the default)
        disables the store entirely — zero store reads or writes anywhere,
        and the per-split hot path is untouched.  ``True`` opens the
        default store (``~/.cache/repro-profiles`` or
        ``$REPRO_PROFILE_STORE``); a path opens that directory; an
        existing :class:`~repro.obs.profilestore.ProfileStore` is used
        as-is.  With a store attached, every run appends one
        :class:`~repro.obs.profilestore.RunProfile`; ``technique="auto"``
        consults the store's history for this program, and kernels whose
        group footprints the effect analysis cannot bound (histogram)
        have their footprints *observed* at commit time so warm re-runs
        color into conflict-free waves (``coloring source="profile"``).
    """

    def __init__(
        self,
        num_threads: int = 1,
        technique: SharedMemTechnique | str = SharedMemTechnique.FULL_REPLICATION,
        executor: str = "serial",
        chunk_size: int | None = None,
        num_nodes: int = 1,
        parallel_merge_threshold: int = PARALLEL_MERGE_THRESHOLD_BYTES,
        splitter: "Callable[[Any, int], list[Split]] | None" = None,
        fault_policy: FaultPolicy | None = None,
        fault_injector: FaultInjector | None = None,
        tracer: "Tracer | NullTracer | None" = None,
        profile_store: "ProfileStore | str | bool | None" = None,
    ) -> None:
        self.num_threads = check_positive_int(num_threads, "num_threads")
        raw = (
            technique.value
            if isinstance(technique, SharedMemTechnique)
            else str(technique)
        )
        if raw == "auto":
            #: ``None`` marks adaptive selection: every run resolves the
            #: effective technique from the spec/splits/reduction object
            self.technique: SharedMemTechnique | None = None
        else:
            self.technique = SharedMemTechnique.parse(technique)
        #: the caller's request, verbatim (``"auto"`` or a technique value)
        self.technique_requested: str = raw if raw == "auto" else self.technique.value
        self.executor = check_one_of(
            executor, ("serial", "threads", "process"), "executor"
        )
        if (
            self.executor == "process"
            and self.technique is not None
            and self.technique is not SharedMemTechnique.FULL_REPLICATION
        ):
            raise FreerideError(
                "the process executor supports only the full_replication "
                "technique: a lock table cannot guard one reduction object "
                "across address spaces (and colored waves cannot barrier "
                "them); use technique='full_replication' or 'auto'"
            )
        #: mean ``ro.lock_acquisitions_per_split`` of this engine's most
        #: recent *traced* run — the ``auto`` selector's contention feedback.
        #: ``None`` until a traced run populates the histogram.
        self._last_lock_contention: float | None = None
        if chunk_size is not None:
            check_positive_int(chunk_size, "chunk_size")
        self.chunk_size = chunk_size
        self.num_nodes = check_positive_int(num_nodes, "num_nodes")
        self.parallel_merge_threshold = parallel_merge_threshold
        if splitter is not None and not callable(splitter):
            raise FreerideError("splitter must be callable (splitter_t)")
        #: custom ``splitter_t``; None selects the middleware default
        self.splitter = splitter
        if fault_policy is not None and not isinstance(fault_policy, FaultPolicy):
            raise FaultToleranceError("fault_policy must be a FaultPolicy or None")
        if fault_injector is not None and not isinstance(fault_injector, FaultInjector):
            raise FaultToleranceError("fault_injector must be a FaultInjector or None")
        self.fault_policy = fault_policy
        self.fault_injector = fault_injector
        if tracer is not None and not isinstance(tracer, (Tracer, NullTracer)):
            raise FreerideError("tracer must be a Tracer, NullTracer or None")
        #: explicit tracer; None falls back to the global tracer per run
        self.tracer = tracer
        #: persistent run-history store; None keeps the store fully disabled
        self.profile_store = resolve_store(profile_store)
        #: in-memory footprint cache: (digest, split fingerprint) -> map of
        #: (start, end) -> observed group set.  Lets the second run of one
        #: engine lifetime go profile-colored without re-reading the store.
        self._footprint_cache: dict[tuple[str, str], dict] = {}
        # Persistent worker pools (threads or processes) plus published
        # shared-memory segments, shared by every run() of this engine.  The
        # finalizer releases them even if close() is never called.
        self._res = _EngineResources()
        self._finalizer = weakref.finalize(
            self, _EngineResources.release, self._res
        )
        self._closed = False

    # -- worker-pool lifecycle -------------------------------------------------

    @property
    def _pool(self) -> ThreadPoolExecutor | None:
        """The persistent thread pool (``None`` until the first threaded run)."""
        return self._res.thread_pool

    def _get_pool(self) -> ThreadPoolExecutor:
        """The engine's persistent thread pool (created on first use).

        Reusing one pool across outer-sequential-loop iterations avoids
        rebuilding ``num_threads`` OS threads on every :meth:`run` call —
        the FREERIDE daemon threads live for the whole computation.
        """
        if self._closed:
            raise FreerideError("engine is closed; create a new FreerideEngine")
        if self._res.thread_pool is None:
            self._res.thread_pool = ThreadPoolExecutor(
                max_workers=self.num_threads, thread_name_prefix="freeride"
            )
        return self._res.thread_pool

    def _get_process_pool(self) -> ProcessPoolExecutor:
        """The engine's persistent worker-process pool (created on first use).

        Like the thread pool, it lives for the whole computation: workers
        keep their compiled-kernel and attached-segment caches warm across
        outer-loop iterations.
        """
        if self._closed:
            raise FreerideError("engine is closed; create a new FreerideEngine")
        if self._res.process_pool is None:
            # imported lazily: only process-mode engines pay for it
            from repro.freeride.procexec import create_process_pool

            self._res.process_pool = create_process_pool(self.num_threads)
        return self._res.process_pool

    def close(self) -> None:
        """Release the worker pools and shared-memory segments.  Idempotent."""
        self._closed = True
        self._finalizer()

    def __enter__(self) -> "FreerideEngine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- public entry ---------------------------------------------------------

    def run(self, spec: ReductionSpec, data: Any) -> ReductionResult:
        """Execute one reduction pass over ``data``."""
        if self._closed:
            raise FreerideError("engine is closed; create a new FreerideEngine")
        if (
            self.executor == "process"
            and self.technique is not None
            and self.technique is not SharedMemTechnique.FULL_REPLICATION
        ):
            # also checked at construction; re-checked here so an engine
            # whose .technique was mutated after init fails loudly instead
            # of running full replication while stamping the stats with the
            # technique it did *not* use
            raise FreerideError(
                "the process executor supports only the full_replication "
                "technique (got {0!r}); use 'full_replication' or 'auto'"
                .format(self.technique.value)
            )
        tracer = self.tracer if self.tracer is not None else get_tracer()
        metrics = MetricsRegistry() if tracer.enabled else None
        timer = PhaseTimer()
        kspec = spec.kernel_spec
        digest = kspec.digest if kspec is not None else None
        # Per-run profile context — built ONLY when a store is attached, so
        # the disabled path performs zero store work (one None check here).
        profile_ctx: dict[str, Any] | None = None
        if self.profile_store is not None:
            profile_ctx = {"wall_start": time.perf_counter(), "digest": digest}
        initial = self.technique or SharedMemTechnique.FULL_REPLICATION
        stats = RunStats(
            num_threads=self.num_threads,
            num_nodes=self.num_nodes,
            executor=self.executor,
            technique=initial,
            technique_requested=self.technique_requested,
            technique_effective=initial,
        )
        stats.sharedmem.technique = initial
        # imported lazily: the compiler package imports freeride, not vice versa
        from repro.compiler.cache import kernel_cache_stats

        cache_stats_before = kernel_cache_stats()

        with tracer.span(
            "engine.run",
            cat="engine",
            spec=spec.name,
            executor=self.executor,
            num_threads=self.num_threads,
            num_nodes=self.num_nodes,
            technique=self.technique_requested,
            digest=digest,
        ) as run_span:
            if self.num_nodes == 1:
                with timer.phase("local"), tracer.span("local", cat="phase"):
                    ro, sm_stats, lc_stats = self._run_node(
                        spec, data, stats, tracer, metrics, node=0,
                        profile_ctx=profile_ctx,
                    )
                stats.sharedmem = sm_stats
                stats.local_combination = lc_stats
            else:
                node_ros: list[ReductionObject] = []
                with timer.phase("local"), tracer.span("local", cat="phase"):
                    for node_id, node_block in enumerate(
                        default_splitter(data, self.num_nodes)
                    ):
                        node_ro, sm_stats, lc_stats = self._run_node(
                            spec, node_block.data, stats, tracer, metrics,
                            node=node_id, profile_ctx=profile_ctx,
                        )
                        stats.sharedmem.add(sm_stats)
                        stats.local_combination.strategy = lc_stats.strategy
                        stats.local_combination.merges += lc_stats.merges
                        stats.local_combination.elements_merged += (
                            lc_stats.elements_merged
                        )
                        stats.local_combination.rounds = max(
                            stats.local_combination.rounds, lc_stats.rounds
                        )
                        node_ros.append(node_ro)
                with timer.phase("global_combination"), tracer.span(
                    "global_combination", cat="phase"
                ):
                    with tracer.span(
                        "global_combination", cat="combination",
                        num_nodes=self.num_nodes,
                    ) as g_span:
                        ro, g_stats = combine(node_ros, self.parallel_merge_threshold)
                        g_span.set(
                            strategy=g_stats.strategy,
                            merges=g_stats.merges,
                            rounds=g_stats.rounds,
                            elements_merged=g_stats.elements_merged,
                        )
                    stats.global_combination = g_stats

            stats.ro_updates = ro.update_count
            stats.ro_size = ro.size
            cache_stats_after = kernel_cache_stats()
            stats.kernel_cache_hits = (
                cache_stats_after["hits"] - cache_stats_before["hits"]
            )
            stats.kernel_cache_evictions = (
                cache_stats_after["evictions"] - cache_stats_before["evictions"]
            )

            with timer.phase("finalize"), tracer.span("finalize", cat="phase"):
                value: Any = spec.finalize(ro) if spec.finalize is not None else ro
            run_span.set(
                total_elements=stats.total_elements,
                ro_updates=stats.ro_updates,
                kernel_cache_hits=stats.kernel_cache_hits,
                technique_effective=stats.technique_effective.value,
            )

        stats.phase_seconds = timer.as_dict()
        if metrics is not None:
            self._finish_metrics(metrics, stats)
        if profile_ctx is not None:
            self._append_profile(spec, stats, profile_ctx)
        return ReductionResult(value=value, ro=ro, stats=stats)

    def _finish_metrics(self, metrics: MetricsRegistry, stats: RunStats) -> None:
        """Fold the run's aggregate counters into the registry and snapshot.

        Also harvests the run's ``ro.lock_acquisitions_per_split``
        distribution into :attr:`_last_lock_contention`, the ``auto``
        selector's feedback signal — untraced runs record nothing, so the
        feedback simply goes stale rather than being zeroed.
        """
        metrics.gauge("engine.num_threads").set(stats.num_threads)
        metrics.gauge("engine.num_nodes").set(stats.num_nodes)
        metrics.counter("engine.elements").inc(stats.total_elements)
        metrics.counter("ro.updates").inc(stats.ro_updates)
        metrics.counter("ro.lock_acquisitions").inc(
            stats.sharedmem.lock_acquisitions
        )
        for name, value in (
            ("faults.retries", stats.retries),
            ("faults.failed_splits", stats.failed_splits),
            ("faults.injected", stats.injected_faults),
            ("faults.requeues", stats.requeues),
            ("faults.timeouts", stats.timeouts),
        ):
            if value:
                metrics.counter(name).inc(value)
        for phase, seconds in stats.phase_seconds.items():
            metrics.histogram("engine.phase_seconds." + phase).observe(seconds)
        stats.metrics = metrics.snapshot()
        contention = metrics.histogram(
            "ro.lock_acquisitions_per_split", DEFAULT_COUNT_BUCKETS
        )
        if contention.count:
            self._last_lock_contention = contention.mean

    def run_iterative(
        self,
        make_spec: "Callable[[Any], ReductionSpec]",
        data: Any,
        iterations: int,
        update: "Callable[[ReductionResult, Any], Any]",
        state: Any,
        converged: "Callable[[Any, Any], bool] | None" = None,
    ) -> tuple[Any, list[ReductionResult]]:
        """The outer sequential loop of Figure 4's left column.

        ``make_spec(state)`` builds the reduction for the current state
        (e.g. current centroids); ``update(result, state)`` derives the next
        state from the combined reduction object; the optional
        ``converged(old, new)`` predicate ends the loop early (k-means'
        "repeat until the centroids are stable").

        Returns the final state and every pass's :class:`ReductionResult`.
        """
        check_positive_int(iterations, "iterations")
        results: list[ReductionResult] = []
        for _ in range(iterations):
            spec = make_spec(state)
            result = self.run(spec, data)
            results.append(result)
            new_state = update(result, state)
            if converged is not None and converged(state, new_state):
                state = new_state
                break
            state = new_state
        return state, results

    # -- incremental delta execution -------------------------------------------

    def run_baseline(
        self,
        spec: "ReductionSpec | None" = None,
        data: Any = None,
        *,
        bound: Any = None,
        ro_layout: Any = None,
        finalize: "Callable[[ReductionObject], Any] | None" = None,
        checkpoint_capacity: int = 8,
        shm_key: str | None = None,
    ) -> tuple[ReductionResult, DeltaSession]:
        """Run a full pass and open a :class:`DeltaSession` over its result.

        Two calling conventions:

        * **compiled** — pass ``bound`` (a
          :class:`~repro.compiler.translate.BoundReduction`) plus
          ``ro_layout`` (and optionally ``finalize``); the engine builds the
          spec itself and later delta passes ride the full executor
          pipeline, including process workers over shared memory.
        * **manual** — pass ``spec`` and ``data`` (a sized sequence or
          numpy array); delta passes are computed with a parent-side
          serial walk of only the changed element ranges.

        The returned session owns the committed reduction object; feed it
        to :meth:`run_delta` to apply O(|Δ|) appends/retracts, and use
        ``session.ro_at(epoch)`` for ring-bounded historical snapshots.
        """
        if self._closed:
            raise FreerideError("engine is closed; create a new FreerideEngine")
        if bound is not None:
            if spec is not None or data is not None:
                raise FreerideError(
                    "run_baseline takes either (bound=, ro_layout=) or "
                    "(spec, data), not both"
                )
            if ro_layout is None:
                raise FreerideError("run_baseline(bound=...) requires ro_layout=")
            layout = [(int(n), str(op)) for n, op in ro_layout]
            key = shm_key or f"delta-session-{next(_DELTA_SESSION_IDS)}"

            def respec(
                session: DeltaSession, delta_range: "tuple[int, int] | None"
            ) -> tuple[ReductionSpec, Any]:
                spec2, idx = bound.make_spec(
                    layout, finalize=None, delta_range=delta_range
                )
                if spec2.kernel_spec is not None:
                    spec2.kernel_spec.shm_session = session.shm_key
                return spec2, idx

            def extend(session: DeltaSession, batch: Any) -> int:
                return bound.append_elements(batch)

            def shrink(session: DeltaSession, n_elements: int) -> None:
                bound.truncate_elements(n_elements)

            gather = None
            if getattr(bound, "gather_supported", False):

                def gather(session: DeltaSession, indices: Any, accessor: Any) -> int:
                    return bound.run_gathered(indices, accessor)

            base_spec, base_idx = bound.make_spec(layout, finalize=finalize)
            if base_spec.kernel_spec is not None:
                # session-keyed from the start, so the very first delta's
                # shared-memory publish is already tail-only
                base_spec.kernel_spec.shm_session = key
            result = self.run(base_spec, base_idx)
            n = int(bound.n_elements)
            session = DeltaSession(
                ro=result.ro,
                n_elements=n,
                live=np.ones(n, dtype=bool),
                epoch=0,
                checkpoints=ROCheckpoint(checkpoint_capacity),
                respec=respec,
                extend=extend,
                shrink=shrink,
                finalize=finalize,
                shm_key=key,
                compiled=True,
                gather=gather,
            )
            return result, session

        if spec is None or data is None:
            raise FreerideError(
                "run_baseline requires either bound= and ro_layout= "
                "(compiled) or spec and data (manual)"
            )

        def respec_manual(
            session: DeltaSession, delta_range: "tuple[int, int] | None"
        ) -> tuple[ReductionSpec, Any]:
            return spec, session.data

        def extend_manual(session: DeltaSession, batch: Any) -> int:
            if isinstance(session.data, np.ndarray):
                session.data = np.concatenate(
                    [session.data, np.asarray(batch, dtype=session.data.dtype)]
                )
            else:
                session.data = list(session.data) + list(batch)
            return len(session.data)

        def shrink_manual(session: DeltaSession, n_elements: int) -> None:
            session.data = session.data[:n_elements]

        result = self.run(spec, data)
        n = len(data)
        session = DeltaSession(
            ro=result.ro,
            n_elements=n,
            live=np.ones(n, dtype=bool),
            epoch=0,
            checkpoints=ROCheckpoint(checkpoint_capacity),
            respec=respec_manual,
            extend=extend_manual,
            shrink=shrink_manual,
            data=data,
            finalize=spec.finalize,
            compiled=False,
        )
        return result, session

    def _apply_ranges(
        self,
        spec: ReductionSpec,
        session: DeltaSession,
        runs: "list[tuple[int, int]]",
    ) -> ReductionObject:
        """Serially reduce element ranges into a fresh scratch object.

        The parent-side compute behind retraction and per-group replay:
        each ``[start, end)`` run is handed to the spec's local reduction
        with its *global* positions intact (compiled kernels receive the
        index range, manual kernels a data slice plus a position-true
        :class:`~repro.freeride.splitter.Split`), so position-dependent
        reductions see the same coordinates a full run would.
        """
        scratch = session.ro.clone_empty()
        accessor = ScratchAccessor(scratch)
        for start, end in runs:
            if start >= end:
                continue
            if session.compiled:
                chunk: Any = range(start, end)
            else:
                chunk = session.data[start:end]
            spec.reduction(
                ReductionArgs(
                    data=chunk,
                    split=Split(split_id=0, start=start, end=end, data=chunk),
                    thread_id=0,
                    ro=accessor,
                    extras=spec.extras,
                )
            )
        return scratch

    def _apply_scattered(
        self,
        spec: ReductionSpec,
        session: DeltaSession,
        idx: "np.ndarray | None" = None,
        runs: "list[tuple[int, int]] | None" = None,
    ) -> ReductionObject:
        """Reduce scattered elements into a fresh scratch object.

        The compute step behind retraction (``idx``: isolated positions)
        and fragmented replay (``runs``: many short live ranges).  The
        per-run dispatch of :meth:`_apply_ranges` pays the kernel's fixed
        call overhead once per run, which dwarfs the work for short runs,
        so when the session supports gathered execution
        (``session.gather`` — see ``BoundReduction.run_gathered``) the
        elements are copied into one contiguous buffer and reduced in a
        single dispatch.  Long runs and manual sessions fall back to the
        per-run walk, which reads the dataset in place.
        """
        if runs is None:
            assert idx is not None
            runs = contiguous_runs(idx)
        total = sum(e - s for s, e in runs)
        if (
            session.gather is not None
            and len(runs) > 1
            and total < len(runs) * _GATHER_RUN_THRESHOLD
        ):
            if idx is None:
                idx = np.concatenate(
                    [np.arange(s, e, dtype=np.intp) for s, e in runs]
                )
            scratch = session.ro.clone_empty()
            session.gather(session, idx, ScratchAccessor(scratch))
            return scratch
        return self._apply_ranges(spec, session, runs)

    def run_delta(
        self,
        session: DeltaSession,
        *,
        append: Any = None,
        retract: Any = None,
    ) -> ReductionResult:
        """Apply one delta epoch to a baseline session in O(|Δ|).

        ``append`` adds elements after the current end of the dataset (a
        batch in whatever form the session's dataset takes — appended rows
        for a compiled session, new elements for a manual one); ``retract``
        tombstones existing live positions.  The committed result is
        bit-identical to a cold full run over the surviving elements at
        their original positions — appends fold the tail in order,
        invertible (``add``) groups subtract the retracted contributions,
        and non-invertible (min/max) groups are re-reduced from the live
        elements whose effect-summary footprint intersects them.

        The commit is checkpointed: every group's pre-image is saved once
        per epoch before it is mutated, so a failure mid-commit (including
        one injected at :data:`DELTA_COMMIT_SPLIT_ID`) rolls the reduction
        object, dataset length and liveness back to the previous epoch in
        O(groups touched) and re-raises.  Sealed epochs stay in the
        session's checkpoint ring for ``session.ro_at(epoch)`` queries.
        """
        if self._closed:
            raise FreerideError("engine is closed; create a new FreerideEngine")
        if not isinstance(session, DeltaSession):
            raise FreerideError("run_delta requires the DeltaSession from run_baseline")
        if append is None and retract is None:
            raise FreerideError("run_delta needs append=... and/or retract=...")
        retract_idx = session.normalize_retract(retract)
        if append is None and retract_idx.size == 0:
            raise FreerideError("run_delta called with an empty delta")
        epoch = session.epoch + 1
        n_old = session.n_elements
        old_live = session.live_count
        old_updates = session.ro.update_count
        tracer = self.tracer if self.tracer is not None else get_tracer()
        cp = session.checkpoints
        saves0, hits0 = cp.saves, cp.hits
        new_n = n_old
        appended = 0
        delta_ro: ReductionObject | None = None
        stats: RunStats | None = None
        with tracer.span(
            "delta.apply",
            cat="delta",
            epoch=epoch,
            retracted=int(retract_idx.size),
            executor=self.executor,
        ) as span:
            try:
                if append is not None:
                    new_n = session.extend(session, append)
                    appended = new_n - n_old
                    if appended <= 0:
                        raise FreerideError(
                            "append batch added no elements (use retract= "
                            "alone for pure retraction)"
                        )
                    if session.compiled:
                        # the appended tail rides the full executor pipeline
                        # (threads / process workers, technique selection,
                        # fault tolerance) as a run over [n_old, new_n)
                        spec2, idx2 = session.respec(session, (n_old, new_n))
                        append_result = self.run(spec2, idx2)
                        delta_ro = append_result.ro
                        stats = append_result.stats
                spec_full, _ = session.respec(session, None)
                if delta_ro is None and appended:
                    delta_ro = self._apply_ranges(
                        spec_full, session, [(n_old, new_n)]
                    )

                # -- retract compute (never mutates the committed object) ------
                num_groups = session.ro.num_groups
                noninv = {
                    g
                    for g, (_, op) in enumerate(session.ro.layout())
                    if op not in INVERTIBLE_ACCUMULATE_OPS
                }
                scratch_r: ReductionObject | None = None
                ret_touched: frozenset[int] = frozenset()
                if retract_idx.size:
                    scratch_r = self._apply_scattered(
                        spec_full, session, retract_idx
                    )
                    ret_touched = scratch_r.touched_groups()
                replay_groups = sorted(g for g in ret_touched if g in noninv)

                # -- replay compute: re-reduce only the live runs whose
                # effect-summary footprint can reach a replayed group --------
                live_after = session.live.copy()
                if appended:
                    live_after = np.concatenate(
                        [live_after, np.ones(appended, dtype=bool)]
                    )
                live_after[retract_idx] = False
                scratch_p: ReductionObject | None = None
                replay_elements = 0
                if replay_groups:
                    bounds = getattr(spec_full, "group_bounds", None)
                    per_range = getattr(bounds, "groups_for_range", None)
                    leaf = (
                        getattr(bounds, "alignment", None) or _REPLAY_PROBE_LEAF
                    )
                    replay_runs: list[tuple[int, int]] = []
                    targets = set(replay_groups)
                    for start, end in mask_runs(live_after):
                        _replay_subranges(
                            start, end, targets, per_range,
                            num_groups, leaf, replay_runs,
                        )
                    replay_elements = sum(e - s for s, e in replay_runs)
                    scratch_p = self._apply_scattered(
                        spec_full, session, runs=replay_runs
                    )

                # -- checkpointed per-group commit -----------------------------
                cp.begin(epoch, session.ro, n_elements=n_old, live_count=old_live)
                attempt = session.commit_attempts.get(epoch, 0) + 1
                session.commit_attempts[epoch] = attempt
                try:
                    if delta_ro is not None:
                        for g in sorted(delta_ro.touched_groups()):
                            cp.save_group(session.ro, g)
                            session.ro.merge_group_from(g, delta_ro)
                    if self.fault_injector is not None:
                        # mid-commit seam: appended groups are already merged,
                        # retracts are not — a fault here must roll back
                        self.fault_injector.inject(DELTA_COMMIT_SPLIT_ID, attempt)
                    if scratch_r is not None:
                        for g in sorted(ret_touched):
                            if g in noninv:
                                continue
                            cp.save_group(session.ro, g)
                            session.ro.retract_group(g, scratch_r)
                    if scratch_p is not None:
                        for g in replay_groups:
                            cp.save_group(session.ro, g)
                            session.ro.reset_group(g)
                            session.ro.merge_group_from(g, scratch_p)
                    session.ro.update_count = (
                        old_updates
                        + (delta_ro.update_count if delta_ro is not None else 0)
                        - (scratch_r.update_count if scratch_r is not None else 0)
                    )
                    cp.commit()
                except BaseException:
                    cp.rollback(session.ro)
                    session.rollbacks += 1
                    span.set(rolled_back=True)
                    raise
            except BaseException:
                if new_n != n_old:
                    session.shrink(session, n_old)
                raise

            session.live = live_after
            session.n_elements = new_n
            session.epoch = epoch
            session.commit_attempts.pop(epoch, None)

            if stats is None:
                initial = self.technique or SharedMemTechnique.FULL_REPLICATION
                stats = RunStats(
                    num_threads=self.num_threads,
                    num_nodes=self.num_nodes,
                    executor=self.executor,
                    technique=initial,
                    technique_requested=self.technique_requested,
                    technique_effective=initial,
                )
            stats.delta_epoch = epoch
            stats.delta_mode = (
                "append+retract"
                if appended and retract_idx.size
                else ("append" if appended else "retract")
            )
            stats.delta_appended = appended
            stats.delta_retracted = int(retract_idx.size)
            stats.delta_groups_replayed = len(replay_groups)
            stats.delta_replay_elements = replay_elements
            stats.delta_checkpoint_saves = cp.saves - saves0
            stats.delta_checkpoint_hits = cp.hits - hits0
            stats.ro_updates = session.ro.update_count
            stats.ro_size = session.ro.size
            span.set(
                appended=appended,
                groups_replayed=len(replay_groups),
                replay_elements=replay_elements,
                checkpoint_saves=stats.delta_checkpoint_saves,
                checkpoint_hits=stats.delta_checkpoint_hits,
                epochs_retained=len(cp.epochs()),
            )

        value: Any = (
            session.finalize(session.ro)
            if session.finalize is not None
            else session.ro
        )
        return ReductionResult(value=value, ro=session.ro, stats=stats)

    # -- one node's local pipeline ---------------------------------------------

    def _run_node(
        self,
        spec: ReductionSpec,
        data: Any,
        stats: RunStats,
        tracer: "Tracer | NullTracer",
        metrics: MetricsRegistry | None,
        node: int,
        profile_ctx: "dict[str, Any] | None" = None,
    ) -> tuple[ReductionObject, SharedMemStats, CombinationStats]:
        ro = spec.build_reduction_object()

        # Splits before the shared-memory manager: technique resolution
        # (auto selection, colored wave layout) needs the split list.
        alignment_used: int | None = None
        if self.splitter is not None:
            splits = self.splitter(data, self.num_threads)
            _validate_custom_splits(splits, data)
        elif self.chunk_size is not None:
            splits = chunked_splitter(data, self.chunk_size)
        else:
            alignment_used = self._wave_alignment(spec)
            if alignment_used is not None:
                splits = aligned_splits(data, self.num_threads, alignment_used)
            else:
                splits = default_splitter(data, self.num_threads)
        if node == 0:
            stats.split_alignment = alignment_used
        if profile_ctx is not None and node == 0:
            profile_ctx["split_ranges"] = [(s.start, s.end) for s in splits]

        technique, coloring = self._resolve_technique(
            spec, splits, ro, stats, tracer, node, profile_ctx
        )
        mgr = SharedMemManager(technique)
        accessors = mgr.setup(ro, self.num_threads)

        elems = [0] * self.num_threads
        nsplits = [0] * self.num_threads

        fault_tolerant = (
            self.fault_policy is not None or self.fault_injector is not None
        )
        obs_ctx = (
            self._observation_ctx(
                spec, splits, ro, technique, coloring, fault_tolerant,
                profile_ctx, node,
            )
            if profile_ctx is not None
            else None
        )
        if not fault_tolerant:
            if self.executor == "process":
                self._execute_process_direct(
                    spec, splits, accessors, elems, nsplits, tracer, metrics,
                    node, profile_ctx,
                )
            else:
                self._execute_direct(
                    spec, splits, accessors, elems, nsplits, tracer, metrics,
                    node, coloring, obs_ctx,
                )
        elif self.executor == "process":
            self._execute_process_ft(
                spec, splits, accessors, stats, elems, nsplits,
                tracer, metrics, node, profile_ctx,
            )
        else:
            self._execute_fault_tolerant(
                spec, splits, accessors, ro, stats, elems, nsplits,
                tracer, metrics, node, coloring,
            )
        if obs_ctx is not None:
            assert profile_ctx is not None
            profile_ctx["footprints"] = obs_ctx["footprints"]
            profile_ctx["footprint_conflicts"] = obs_ctx["conflicts"]
            if obs_ctx["conflicts"] and tracer.enabled:
                tracer.event(
                    "profile.footprint_conflict", cat="engine", node=node,
                    conflicts=obs_ctx["conflicts"],
                )

        stats.total_elements += sum(elems)
        if not stats.elements_per_thread:
            stats.elements_per_thread = elems
            stats.splits_per_thread = nsplits
        else:
            stats.elements_per_thread = [
                a + b for a, b in zip(stats.elements_per_thread, elems)
            ]
            stats.splits_per_thread = [
                a + b for a, b in zip(stats.splits_per_thread, nsplits)
            ]

        # Local combination — mgr.finish is the single accounting path, so
        # num_locks / ro_memory_bytes / merge_elements are always reported.
        with tracer.span(
            "local_combination", cat="combination", node=node,
            technique=technique.value,
        ) as span:
            ro, sm_stats, lc_stats = mgr.finish(
                ro,
                accessors,
                combination=spec.combination,
                parallel_merge_threshold=self.parallel_merge_threshold,
            )
            span.set(
                strategy=lc_stats.strategy,
                merges=lc_stats.merges,
                rounds=lc_stats.rounds,
                elements_merged=lc_stats.elements_merged,
            )
        return ro, sm_stats, lc_stats

    def _wave_alignment(self, spec: ReductionSpec) -> int | None:
        """Split-boundary alignment from the effect analysis, if applicable.

        Only the default splitter under a coloring-capable technique
        (``colored`` or ``auto`` on an in-process executor) snaps
        boundaries: the alignment is the element-period of the kernel's
        ``elemIdx()``-derived group forms, and honoring it keeps per-split
        footprints disjoint so waves color wide.
        """
        if self.executor == "process":
            return None
        if not (
            self.technique is None
            or self.technique is SharedMemTechnique.COLORED
        ):
            return None
        gb = getattr(spec, "group_bounds", None)
        if gb is None or callable(gb):
            return None
        alignment = getattr(gb, "alignment", None)
        if not isinstance(alignment, int) or alignment <= 1:
            return None
        return alignment

    # -- technique resolution (auto selection + colored wave layout) -----------

    def _resolve_technique(
        self,
        spec: ReductionSpec,
        splits: "list[Split]",
        ro: ReductionObject,
        stats: RunStats,
        tracer: "Tracer | NullTracer",
        node: int,
        profile_ctx: "dict[str, Any] | None" = None,
    ) -> "tuple[SharedMemTechnique, Any]":
        """The technique this node's pipeline actually runs, plus its wave
        schedule (a :class:`~repro.freeride.coloring.SplitColoring`, or
        ``None`` for every non-colored technique).

        Explicit requests pass through untouched except ``"colored"``, which
        degrades to full replication — with the reason recorded — when no
        exact group bounds exist.  ``"auto"`` delegates to
        :meth:`_auto_select`.  Node 0 stamps the run stats (multi-node runs
        see the same spec, so the per-node choice only differs in degenerate
        splitter setups, and the paper's model is one technique per run).

        With a profile store attached and a coloring-capable request
        (``"auto"`` or ``"colored"``), persisted history joins the inputs:
        observed footprints become the coloring's ``source="profile"`` tier
        and past lock-contention outcomes feed the ``auto`` heuristic.
        """
        decision: dict[str, Any] | None = None
        coloring = None
        profiled = history = profile_key = None
        if (
            profile_ctx is not None
            and profile_ctx.get("digest") is not None
            and (
                self.technique is None
                or self.technique is SharedMemTechnique.COLORED
            )
        ):
            profiled, history, profile_key = self._profile_plan(
                splits, profile_ctx
            )
        if self.technique is None:  # "auto"
            chosen, coloring, decision = self._auto_select(
                spec, splits, ro,
                profiled=profiled, history=history, profile_key=profile_key,
            )
        elif self.technique is SharedMemTechnique.COLORED:
            coloring = self._try_coloring(spec, splits, ro, profiled=profiled)
            if coloring is None:
                chosen = SharedMemTechnique.FULL_REPLICATION
                decision = {
                    "requested": self.technique_requested,
                    "chosen": chosen.value,
                    "reason": (
                        "colored requires an exact plan-time group set for "
                        "every split (spec.group_bounds hook or compiler "
                        "bounds); none were available — falling back to "
                        "full replication"
                    ),
                    "inputs": self._decision_inputs(splits, ro, None),
                }
            else:
                chosen = SharedMemTechnique.COLORED
                if coloring.source == "profile":
                    decision = {
                        "requested": self.technique_requested,
                        "chosen": chosen.value,
                        "reason": (
                            "static bounds color at best serial waves, but "
                            "the profile store holds observed footprints "
                            "for this program and split layout — coloring "
                            "wider from profiled footprints"
                        ),
                        "inputs": self._decision_inputs(splits, ro, coloring),
                        "source": "profiled",
                        "profile_key": profile_key,
                    }
        else:
            chosen = self.technique
        if node == 0:
            stats.technique = chosen
            stats.technique_effective = chosen
            stats.sharedmem.technique = chosen
            stats.technique_decision = decision
            stats.coloring = coloring.as_dict() if coloring is not None else None
        if decision is not None and tracer.enabled:
            extra: dict[str, Any] = {}
            if "source" in decision:
                extra["source"] = decision["source"]
            if decision.get("profile_key") is not None:
                extra["profile_key"] = decision["profile_key"]
            tracer.event(
                "technique.decision", cat="engine", node=node,
                requested=decision["requested"], chosen=decision["chosen"],
                reason=decision["reason"], **extra, **decision["inputs"],
            )
        return chosen, coloring

    def _auto_select(
        self,
        spec: ReductionSpec,
        splits: "list[Split]",
        ro: ReductionObject,
        profiled: "dict[tuple[int, int], frozenset[int]] | None" = None,
        history: "list[dict[str, Any]] | None" = None,
        profile_key: "dict[str, str] | None" = None,
    ) -> "tuple[SharedMemTechnique, Any, dict[str, Any]]":
        """Heuristic for ``technique="auto"``; returns
        ``(technique, coloring | None, decision record)``.

        In order: the process executor can only replicate (coerce, honestly
        recorded); genuinely parallel colored waves beat everything (single
        RO, zero locks, no replica merges); an over-budget replication
        footprint forces a single-copy technique — colored if the previous
        traced run (or, failing that, persisted store history) showed real
        lock contention, else cache-sensitive locking; small reduction
        objects default to full replication, the paper's fastest technique
        when memory allows.

        The decision record carries ``source`` — ``"static"`` when only the
        cold-start heuristic spoke, ``"profiled"`` when store history
        (observed footprints or persisted contention) decided the outcome.
        """
        coloring = (
            None
            if self.executor == "process"
            else self._try_coloring(spec, splits, ro, profiled=profiled)
        )
        inputs = self._decision_inputs(splits, ro, coloring)
        source = "static"
        if self.executor == "process":
            chosen = SharedMemTechnique.FULL_REPLICATION
            reason = (
                "process executor supports only full_replication; coercing"
            )
        elif coloring is not None and coloring.max_wave_width >= 2:
            chosen = SharedMemTechnique.COLORED
            if coloring.source == "profile":
                source = "profiled"
                reason = (
                    "observed footprints from the profile store color this "
                    "split layout into parallel lock-free waves "
                    f"(max wave width {coloring.max_wave_width})"
                )
            else:
                reason = (
                    "exact group bounds admit parallel lock-free waves "
                    f"(max wave width {coloring.max_wave_width})"
                )
        elif inputs["replication_bytes"] > REPLICATION_BUDGET_BYTES:
            contention = self._last_lock_contention
            contention_source = "session"
            if contention is None and history:
                means = [
                    r["lock_contention_mean"]
                    for r in history
                    if isinstance(r.get("lock_contention_mean"), (int, float))
                ]
                if means:
                    contention = sum(means) / len(means)
                    contention_source = "profile"
                    inputs["lock_contention_mean"] = contention
            if (
                coloring is not None
                and contention is not None
                and contention > CONTENTION_FEEDBACK_THRESHOLD
            ):
                chosen = SharedMemTechnique.COLORED
                if contention_source == "profile" or coloring.source == "profile":
                    source = "profiled"
                witness = (
                    "persisted run history"
                    if contention_source == "profile"
                    else "the previous traced run"
                )
                reason = (
                    f"replication is over the memory budget and {witness} "
                    f"averaged {contention:.1f} lock acquisitions per "
                    "split; serialized colored waves avoid both"
                )
            else:
                chosen = SharedMemTechnique.CACHE_SENSITIVE_LOCKING
                reason = (
                    "replicating the reduction object "
                    f"({inputs['replication_bytes']} bytes across "
                    f"{self.num_threads} threads) exceeds the "
                    f"{REPLICATION_BUDGET_BYTES}-byte budget"
                )
        else:
            chosen = SharedMemTechnique.FULL_REPLICATION
            reason = "reduction object is small enough to replicate per thread"
        if chosen is not SharedMemTechnique.COLORED:
            coloring = None
        decision = {
            "requested": "auto",
            "chosen": chosen.value,
            "reason": reason,
            "inputs": inputs,
            "source": source,
        }
        if profile_key is not None:
            decision["profile_key"] = profile_key
        return chosen, coloring, decision

    @staticmethod
    def _try_coloring(
        spec: ReductionSpec,
        splits: "list[Split]",
        ro: ReductionObject,
        profiled: "dict[tuple[int, int], frozenset[int]] | None" = None,
    ) -> Any:
        """A wave schedule for these splits, or ``None`` if bounds are inexact.

        When a profiled footprint map is supplied, the profiled schedule is
        preferred over the static one only when it colors strictly *wider*
        waves: a conservative static bound (histogram's "any split may
        touch any bin") is exact but degenerates to one split per wave,
        and the observed footprints are exactly what recovers the lost
        parallelism.  A static schedule that already colors wide keeps its
        proof — profiled sets are predictions, never preferred on a tie.
        """
        # imported lazily: coloring pulls in the compiler's bounds analysis,
        # and the freeride package must stay importable without the compiler
        from repro.freeride.coloring import color_splits, resolve_group_sets

        group_sets, source = resolve_group_sets(spec, splits, ro.num_groups)
        coloring = (
            color_splits(group_sets, source=source)
            if group_sets is not None
            else None
        )
        if profiled is not None:
            # spec=None skips the static tiers: only the profiled map speaks
            prof_sets, prof_source = resolve_group_sets(
                None, splits, ro.num_groups, profiled=profiled
            )
            if prof_sets is not None:
                prof_coloring = color_splits(prof_sets, source=prof_source)
                if (
                    coloring is None
                    or prof_coloring.max_wave_width > coloring.max_wave_width
                ):
                    coloring = prof_coloring
        return coloring

    def _decision_inputs(
        self, splits: "list[Split]", ro: ReductionObject, coloring: Any
    ) -> dict[str, Any]:
        """Every signal the ``auto`` heuristic reads, recorded verbatim so a
        decision can be replayed from its stats alone."""
        return {
            "ro_bytes": ro.nbytes,
            "num_groups": ro.num_groups,
            "num_threads": self.num_threads,
            "num_splits": len(splits),
            "executor": self.executor,
            "colorable": coloring is not None,
            "max_wave_width": (
                coloring.max_wave_width if coloring is not None else 0
            ),
            "replication_bytes": ro.nbytes * self.num_threads,
            "replication_budget": REPLICATION_BUDGET_BYTES,
            "lock_contention_mean": self._last_lock_contention,
        }

    # -- profile store integration (plan-time only, never the hot path) --------

    def _profile_plan(
        self, splits: "list[Split]", profile_ctx: "dict[str, Any]"
    ) -> "tuple[dict | None, list[dict[str, Any]] | None, dict[str, str]]":
        """Store history for this run's ``(digest, layout, shape)`` key.

        Returns ``(profiled footprint map, history records, profile key)``.
        The footprint map is only fetched when this run could actually
        execute a profile-colored schedule (in-process, single node, no
        fault machinery); history is only read for ``"auto"`` requests,
        which are the sole consumer.  Both are plan-time reads — nothing
        here runs per split.
        """
        store = self.profile_store
        assert store is not None
        digest: str = profile_ctx["digest"]
        ranges = [(s.start, s.end) for s in splits]
        fingerprint = split_layout_fingerprint(ranges)
        shape = shape_class(sum(len(s) for s in splits), self.num_threads)
        profile_key = {
            "digest": digest,
            "split_fingerprint": fingerprint,
            "shape_class": shape,
        }
        profile_ctx.setdefault("profile_key", profile_key)
        profiled = None
        if (
            self.executor != "process"
            and self.num_nodes == 1
            and self.fault_policy is None
            and self.fault_injector is None
        ):
            profiled = self._footprint_cache.get((digest, fingerprint))
            if profiled is None:
                profiled = store.latest_footprints(digest, fingerprint)
                if profiled is not None:
                    self._footprint_cache[(digest, fingerprint)] = profiled
        history = None
        if self.technique is None:  # only "auto" consumes history
            history = store.history(digest, shape)
        return profiled, history, profile_key

    def _observation_ctx(
        self,
        spec: ReductionSpec,
        splits: "list[Split]",
        ro: ReductionObject,
        technique: SharedMemTechnique,
        coloring: Any,
        fault_tolerant: bool,
        profile_ctx: "dict[str, Any]",
        node: int,
    ) -> "dict[str, Any] | None":
        """Decide whether this run observes per-split group footprints.

        Footprints are observed in exactly two situations: (a) the run is
        executing full replication and no static tier colors the kernel
        into *parallel* waves — the histogram shape, where only
        observation can ever widen the schedule — or (b) the run is
        already profile-colored, so re-recording keeps the stored
        footprints fresh (self-healing after a data change).  Observation
        is gated to the plain in-process direct path on a single node: the
        process executor, fault machinery and multi-node runs keep their
        existing execution byte-for-byte.
        """
        if (
            node != 0
            or self.num_nodes != 1
            or self.executor == "process"
            or fault_tolerant
            or profile_ctx.get("digest") is None
        ):
            return None
        profile_colored = coloring is not None and coloring.source == "profile"
        if not profile_colored:
            if technique is SharedMemTechnique.COLORED:
                # a degenerate colored schedule executes one split at a
                # time, so scratch observation is race-free; a statically
                # wide schedule never needs profiling
                if coloring is not None and coloring.max_wave_width >= 2:
                    return None
            elif technique is not SharedMemTechnique.FULL_REPLICATION:
                return None
            else:
                # only observe kernels whose static schedule is serial (or
                # absent) — a statically wide coloring never needs profiling
                static = self._try_coloring(spec, splits, ro)
                if static is not None and static.max_wave_width >= 2:
                    return None
        return {
            # zero-length splits never execute; their footprint is empty
            "footprints": {
                (s.start, s.end): frozenset() for s in splits if len(s) == 0
            },
            "base_ro": ro,
            "lock": threading.Lock(),
            # profiled footprints are predictions, not proofs: commits of
            # profile-colored splits are serialized on this single lock so
            # a stale footprint can cost time but never correctness
            "commit_lock": threading.Lock() if profile_colored else None,
            "predicted": (
                {
                    splits[i].split_id: coloring.group_sets[i]
                    for i in range(len(splits))
                }
                if profile_colored
                else None
            ),
            "conflicts": 0,
        }

    def _append_profile(
        self, spec: ReductionSpec, stats: RunStats,
        profile_ctx: "dict[str, Any]",
    ) -> None:
        """Record one :class:`RunProfile` for the finished run.

        One record per :meth:`run` call — process-executor runs fold their
        workers' split durations into this single record rather than
        appending per worker.  Store I/O failures degrade to a warning:
        profiling must never fail a computation that already succeeded.
        """
        try:
            kspec = spec.kernel_spec
            digest = profile_ctx.get("digest")
            ranges = profile_ctx.get("split_ranges") or []
            fingerprint = split_layout_fingerprint(ranges) if ranges else None
            durations = profile_ctx.get("worker_durations")
            split_seconds = summarize_durations(durations) if durations else None
            contention_mean = None
            hists = stats.metrics.get("histograms", {}) if stats.metrics else {}
            if split_seconds is None:
                snap = hists.get("engine.split_seconds")
                if snap and snap.get("count"):
                    split_seconds = {
                        "count": snap["count"],
                        "mean": snap["mean"],
                        "p50": None,
                        "p95": None,
                        "max": snap["max"],
                    }
            csnap = hists.get("ro.lock_acquisitions_per_split")
            if csnap and csnap.get("count"):
                contention_mean = csnap["mean"]
            footprints = None
            observed = profile_ctx.get("footprints")
            if observed is not None and ranges:
                complete = all((a, b) in observed for a, b in ranges)
                cells = sum(len(g) for g in observed.values())
                if complete and cells <= MAX_FOOTPRINT_CELLS:
                    footprints = [
                        [a, b, sorted(observed[(a, b)])] for a, b in ranges
                    ]
                    if digest is not None and fingerprint is not None:
                        self._footprint_cache[(digest, fingerprint)] = {
                            (a, b): frozenset(observed[(a, b)])
                            for a, b in ranges
                        }
            decision = stats.technique_decision
            faults = {
                key: value
                for key in (
                    "retries", "failed_splits", "injected_faults",
                    "requeues", "timeouts",
                )
                if (value := getattr(stats, key))
            }
            native_cache = None
            if kspec is not None and kspec.native_disk_hit is not None:
                native_cache = {
                    "hits": int(kspec.native_disk_hit),
                    "misses": int(not kspec.native_disk_hit),
                }
            profile = RunProfile(
                digest=digest,
                spec_name=spec.name,
                shape_class=shape_class(
                    stats.total_elements, self.num_threads
                ),
                split_fingerprint=fingerprint,
                opt_level=kspec.opt_level if kspec is not None else None,
                backend=kspec.backend if kspec is not None else None,
                effective_backend=(
                    kspec.effective_backend if kspec is not None else None
                ),
                executor=self.executor,
                workers=self.num_threads,
                num_nodes=self.num_nodes,
                n_elements=stats.total_elements,
                num_splits=len(ranges),
                split_alignment=stats.split_alignment,
                technique_requested=stats.technique_requested,
                technique_effective=stats.technique_effective.value,
                decision=(
                    {
                        "chosen": decision["chosen"],
                        "reason": decision["reason"],
                        "source": decision.get("source", "static"),
                    }
                    if decision is not None
                    else None
                ),
                coloring=stats.coloring,
                wall_seconds=time.perf_counter() - profile_ctx["wall_start"],
                phase_seconds=dict(stats.phase_seconds),
                split_seconds=split_seconds,
                lock_acquisitions=stats.sharedmem.lock_acquisitions,
                lock_contention_mean=contention_mean,
                kernel_cache_hits=stats.kernel_cache_hits,
                kernel_cache_evictions=stats.kernel_cache_evictions,
                native_cache=native_cache,
                faults=faults,
                footprints=footprints,
            )
            assert self.profile_store is not None
            self.profile_store.append(profile)
        except OSError as exc:
            import warnings

            warnings.warn(
                f"profile store append failed: {exc!r}",
                RuntimeWarning,
                stacklevel=2,
            )

    # -- direct (zero-overhead) execution --------------------------------------

    def _execute_direct(
        self,
        spec: ReductionSpec,
        splits: list[Split],
        accessors: list[ROAccessor],
        elems: list[int],
        nsplits: list[int],
        tracer: "Tracer | NullTracer",
        metrics: MetricsRegistry | None,
        node: int,
        coloring: Any = None,
        obs_ctx: "dict[str, Any] | None" = None,
    ) -> None:
        if obs_ctx is None:
            def process(thread_id: int, split: Split) -> None:
                args = ReductionArgs(
                    data=split.data,
                    split=split,
                    thread_id=thread_id,
                    ro=accessors[thread_id],
                    extras=spec.extras,
                )
                spec.reduction(args)
                elems[thread_id] += len(split)
                nsplits[thread_id] += 1
        else:
            # Footprint observation (profile store attached): every split
            # runs into a fresh scratch reduction object so its touched
            # group set can be read off before the commit.  Profile-colored
            # runs additionally serialize their full-scratch commits on one
            # lock — the profiled footprint is a *prediction*, so the wave
            # schedule's disjointness is treated as a performance hint,
            # never a correctness requirement; a mis-predicted split is
            # counted and its fresh footprint re-recorded.
            base_ro = obs_ctx["base_ro"]
            footprints = obs_ctx["footprints"]
            fp_lock = obs_ctx["lock"]
            commit_lock = obs_ctx["commit_lock"]
            predicted = obs_ctx["predicted"]

            def process(thread_id: int, split: Split) -> None:
                scratch = base_ro.clone_empty()
                spec.reduction(
                    ReductionArgs(
                        data=split.data,
                        split=split,
                        thread_id=thread_id,
                        ro=ScratchAccessor(scratch),
                        extras=spec.extras,
                    )
                )
                groups = scratch.touched_groups()
                if predicted is None:
                    accessors[thread_id].merge_from_scratch(scratch)
                else:
                    stale = not groups <= predicted.get(
                        split.split_id, frozenset()
                    )
                    with commit_lock:
                        accessors[thread_id].merge_from_scratch(scratch)
                with fp_lock:
                    footprints[(split.start, split.end)] = groups
                    if predicted is not None and stale:
                        obs_ctx["conflicts"] += 1
                elems[thread_id] += len(split)
                nsplits[thread_id] += 1

        # Tracing wraps the plain closure only when enabled: the disabled
        # path installs zero per-split instrumentation (not even a branch
        # inside `process`), keeping the hot loop identical to before.
        if tracer.enabled:
            assert metrics is not None
            plain_process = process
            split_seconds = metrics.histogram("engine.split_seconds")
            contention = metrics.histogram(
                "ro.lock_acquisitions_per_split", DEFAULT_COUNT_BUCKETS
            )

            def process(thread_id: int, split: Split) -> None:
                acc_stats = accessors[thread_id].stats
                locks_before = acc_stats.lock_acquisitions
                with tracer.span(
                    "split",
                    cat="split",
                    split_id=split.split_id,
                    thread_id=thread_id,
                    node=node,
                    elements=len(split),
                ) as span:
                    plain_process(thread_id, split)
                    span.set(outcome="ok")
                split_seconds.observe(span.duration or 0.0)
                contention.observe(acc_stats.lock_acquisitions - locks_before)

        if self.executor == "serial":
            if coloring is not None:
                # Wave order, not split order: within a wave no two splits
                # share a group, so a cell's update sequence is the same
                # here as under the threaded colored schedule — serial and
                # threaded colored runs produce bit-identical floats.
                for wave in coloring.waves:
                    for i in wave:
                        if len(splits[i]) == 0:
                            continue
                        process(i % self.num_threads, splits[i])
            else:
                for i, split in enumerate(splits):
                    if len(split) == 0:
                        continue
                    process(i % self.num_threads, split)
        elif coloring is not None:
            # Colored waves: every split of one wave updates the single
            # shared reduction object lock-free (disjoint proven group
            # sets); the f.result() join is the inter-wave barrier.
            pool = self._get_pool()
            for wave in coloring.waves:
                live = [i for i in wave if len(splits[i]) > 0]
                if not live:
                    continue
                if len(live) == 1:
                    process(live[0] % self.num_threads, splits[live[0]])
                    continue
                queue = SplitQueue([splits[i] for i in live])

                def worker(thread_id: int, q: SplitQueue = queue) -> None:
                    while (s := q.take()) is not None:
                        process(thread_id, s)

                futures = [
                    pool.submit(worker, t)
                    for t in range(min(self.num_threads, len(live)))
                ]
                for f in futures:
                    f.result()  # barrier between waves + propagate errors
        else:
            queue = SplitQueue(splits)

            def worker(thread_id: int) -> None:
                while (s := queue.take()) is not None:
                    if len(s) == 0:
                        continue
                    process(thread_id, s)

            pool = self._get_pool()
            futures = [pool.submit(worker, t) for t in range(self.num_threads)]
            for f in futures:
                f.result()  # propagate worker exceptions

    # -- fault-tolerant execution ------------------------------------------------

    def _execute_fault_tolerant(
        self,
        spec: ReductionSpec,
        splits: list[Split],
        accessors: list[ROAccessor],
        base_ro: ReductionObject,
        stats: RunStats,
        elems: list[int],
        nsplits: list[int],
        tracer: "Tracer | NullTracer",
        metrics: MetricsRegistry | None,
        node: int,
        coloring: Any = None,
    ) -> None:
        self._validate_ft_spec(spec, splits)
        policy = self.fault_policy or FaultPolicy()
        injector = self.fault_injector
        lock = threading.Lock()
        # Colored runs commit each split's scratch restricted to its proven
        # group set: untouched groups stay out of the merge, so concurrent
        # commits within a wave never read-modify-write the same shared cell.
        commit_groups = (
            {splits[i].split_id: coloring.group_sets[i] for i in range(len(splits))}
            if coloring is not None
            else None
        )

        if self.executor == "serial":
            order = (
                [i for wave in coloring.waves for i in wave]
                if coloring is not None
                else range(len(splits))
            )
            for i in order:
                split = splits[i]
                if len(split) == 0:
                    continue
                tid = i % self.num_threads
                if self._run_split_with_retries(
                    spec, split, tid, accessors[tid], base_ro,
                    policy, injector, stats, lock, tracer, metrics, node,
                    commit_groups,
                ):
                    elems[tid] += len(split)
                    nsplits[tid] += 1
            return

        if coloring is not None:
            # One queue per wave, drained to completion before the next
            # starts: a retried or stolen split can only be re-dispatched
            # within its own wave, so the requeue path respects wave order.
            pool = self._get_pool()
            for wave in coloring.waves:
                live = [i for i in wave if len(splits[i]) > 0]
                if not live:
                    continue
                wave_queue = SplitQueue([splits[i] for i in live])
                wave_abort = threading.Event()

                def worker(
                    thread_id: int,
                    q: SplitQueue = wave_queue,
                    a: threading.Event = wave_abort,
                ) -> None:
                    try:
                        self._ft_worker(
                            spec, q, thread_id, accessors[thread_id], base_ro,
                            policy, injector, stats, lock, elems, nsplits, a,
                            tracer, metrics, node, commit_groups,
                        )
                    except BaseException:
                        q.poison()
                        a.set()
                        raise

                futures = [
                    pool.submit(worker, t)
                    for t in range(min(self.num_threads, len(live)))
                ]
                for f in futures:
                    f.result()  # barrier between waves + propagate errors
                stats.requeues += wave_queue.requeues
            return

        queue = SplitQueue(splits)
        abort = threading.Event()

        def worker(thread_id: int) -> None:
            try:
                self._ft_worker(
                    spec, queue, thread_id, accessors[thread_id], base_ro,
                    policy, injector, stats, lock, elems, nsplits, abort,
                    tracer, metrics, node,
                )
            except BaseException:
                # Unblock peers waiting on our in-flight work, then propagate.
                queue.poison()
                abort.set()
                raise

        pool = self._get_pool()
        futures = [pool.submit(worker, t) for t in range(self.num_threads)]
        for f in futures:
            f.result()  # propagate worker exceptions
        stats.requeues += queue.requeues

    def _ft_worker(
        self,
        spec: ReductionSpec,
        queue: SplitQueue,
        thread_id: int,
        accessor: ROAccessor,
        base_ro: ReductionObject,
        policy: FaultPolicy,
        injector: FaultInjector | None,
        stats: RunStats,
        lock: threading.Lock,
        elems: list[int],
        nsplits: list[int],
        abort: threading.Event,
        tracer: "Tracer | NullTracer",
        metrics: MetricsRegistry | None,
        node: int,
        commit_groups: "dict[int, frozenset[int]] | None" = None,
    ) -> None:
        while not abort.is_set():
            speculative = False
            item = queue.claim()
            if item is None:
                if policy.straggler_timeout is not None:
                    item = queue.steal_straggler(policy.straggler_timeout)
                    speculative = item is not None
                    if speculative and tracer.enabled:
                        tracer.event(
                            "split.steal", cat="fault",
                            split_id=item[0].split_id, thread_id=thread_id,
                            node=node,
                        )
                if item is None:
                    if queue.poisoned or not queue.outstanding():
                        return
                    time.sleep(0.0005)  # wait for in-flight peers
                    continue
            split, attempt = item
            if len(split) == 0:
                queue.complete(split)
                continue
            if attempt > 1:
                with lock:
                    stats.retries += 1
                backoff = policy.backoff_seconds(attempt - 1)
                if backoff:
                    time.sleep(backoff)
            self._note_attempt(stats, lock, split.split_id, attempt)
            scratch, exc = self._attempt_split(
                spec, split, thread_id, attempt, base_ro, policy, injector,
                stats, lock, tracer, metrics, node,
            )
            if scratch is not None:
                if queue.complete(split):
                    groups = (
                        commit_groups.get(split.split_id)
                        if commit_groups is not None
                        else None
                    )
                    accessor.merge_from_scratch(scratch, groups=groups)
                    elems[thread_id] += len(split)
                    nsplits[thread_id] += 1
                continue
            if speculative:
                continue  # the original attempt is still in flight
            if attempt < policy.max_attempts:
                queue.requeue(split)
                if tracer.enabled:
                    tracer.event(
                        "split.requeue", cat="fault",
                        split_id=split.split_id, attempt=attempt,
                        thread_id=thread_id, node=node,
                    )
                continue
            queue.abandon(split)
            if tracer.enabled:
                tracer.event(
                    "split.abandon", cat="fault",
                    split_id=split.split_id, attempts=attempt,
                    thread_id=thread_id, node=node, error=repr(exc),
                )
            if policy.mode == FAIL_FAST:
                queue.poison()
                abort.set()
                assert exc is not None
                raise exc
            with lock:
                stats.failed_splits += 1
                stats.failures.append(
                    SplitFailureRecord(
                        split_id=split.split_id,
                        attempts=attempt,
                        error=repr(exc),
                        elements_lost=len(split),
                    )
                )

    def _run_split_with_retries(
        self,
        spec: ReductionSpec,
        split: Split,
        thread_id: int,
        accessor: ROAccessor,
        base_ro: ReductionObject,
        policy: FaultPolicy,
        injector: FaultInjector | None,
        stats: RunStats,
        lock: threading.Lock,
        tracer: "Tracer | NullTracer",
        metrics: MetricsRegistry | None,
        node: int,
        commit_groups: "dict[int, frozenset[int]] | None" = None,
    ) -> bool:
        """Serial executor: attempt a split until it commits or exhausts.

        Returns True if the split's scratch object was committed.
        """
        last_exc: BaseException | None = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                stats.retries += 1
                backoff = policy.backoff_seconds(attempt - 1)
                if backoff:
                    time.sleep(backoff)
            self._note_attempt(stats, lock, split.split_id, attempt)
            scratch, exc = self._attempt_split(
                spec, split, thread_id, attempt, base_ro, policy, injector,
                stats, lock, tracer, metrics, node,
            )
            if scratch is not None:
                groups = (
                    commit_groups.get(split.split_id)
                    if commit_groups is not None
                    else None
                )
                accessor.merge_from_scratch(scratch, groups=groups)
                return True
            last_exc = exc
        if policy.mode == FAIL_FAST:
            assert last_exc is not None
            raise last_exc
        stats.failed_splits += 1
        stats.failures.append(
            SplitFailureRecord(
                split_id=split.split_id,
                attempts=policy.max_attempts,
                error=repr(last_exc),
                elements_lost=len(split),
            )
        )
        return False

    def _attempt_split(
        self,
        spec: ReductionSpec,
        split: Split,
        thread_id: int,
        attempt: int,
        base_ro: ReductionObject,
        policy: FaultPolicy,
        injector: FaultInjector | None,
        stats: RunStats,
        lock: threading.Lock,
        tracer: "Tracer | NullTracer",
        metrics: MetricsRegistry | None,
        node: int,
    ) -> tuple[ReductionObject | None, BaseException | None]:
        """One processing attempt; traced as one span per attempt."""
        if not tracer.enabled:
            return self._attempt_split_core(
                spec, split, thread_id, attempt, base_ro, policy, injector,
                stats, lock,
            )
        assert metrics is not None
        with tracer.span(
            "split",
            cat="split",
            split_id=split.split_id,
            thread_id=thread_id,
            node=node,
            attempt=attempt,
            elements=len(split),
        ) as span:
            scratch, exc = self._attempt_split_core(
                spec, split, thread_id, attempt, base_ro, policy, injector,
                stats, lock,
            )
            if scratch is not None:
                span.set(outcome="ok")
            else:
                span.set(outcome="failed", error=repr(exc))
        metrics.histogram("engine.split_seconds").observe(span.duration or 0.0)
        if scratch is None:
            if isinstance(exc, InjectedFault):
                tracer.event(
                    "fault.injected", cat="fault", split_id=split.split_id,
                    attempt=attempt, thread_id=thread_id, node=node,
                )
            elif isinstance(exc, SplitTimeout):
                tracer.event(
                    "fault.timeout", cat="fault", split_id=split.split_id,
                    attempt=attempt, thread_id=thread_id, node=node,
                )
        return scratch, exc

    def _attempt_split_core(
        self,
        spec: ReductionSpec,
        split: Split,
        thread_id: int,
        attempt: int,
        base_ro: ReductionObject,
        policy: FaultPolicy,
        injector: FaultInjector | None,
        stats: RunStats,
        lock: threading.Lock,
    ) -> tuple[ReductionObject | None, BaseException | None]:
        """One processing attempt into a fresh scratch reduction object.

        Returns ``(scratch, None)`` on success or ``(None, error)`` on
        failure — injected fault, application exception, or soft-timeout
        overrun.  The scratch object is only handed back on success, so the
        caller commits all of the attempt's accumulations or none of them.
        """
        scratch = base_ro.clone_empty()
        start = time.monotonic()
        try:
            if injector is not None:
                injector.inject(split.split_id, attempt)
            spec.reduction(
                ReductionArgs(
                    data=split.data,
                    split=split,
                    thread_id=thread_id,
                    ro=ScratchAccessor(scratch),
                    extras=spec.extras,
                    attempt=attempt,
                )
            )
        except InjectedFault as exc:
            with lock:
                stats.injected_faults += 1
            return None, exc
        except Exception as exc:
            return None, exc
        if (
            policy.split_timeout is not None
            and time.monotonic() - start > policy.split_timeout
        ):
            with lock:
                stats.timeouts += 1
            return None, SplitTimeout(
                f"split {split.split_id} attempt {attempt} exceeded the "
                f"{policy.split_timeout}s per-split timeout"
            )
        return scratch, None

    @staticmethod
    def _note_attempt(
        stats: RunStats, lock: threading.Lock, split_id: int, attempt: int
    ) -> None:
        with lock:
            stats.split_attempts[split_id] = max(
                stats.split_attempts.get(split_id, 0), attempt
            )

    @staticmethod
    def _validate_ft_spec(spec: ReductionSpec, splits: "list[Split]") -> None:
        if spec.combination is not None:
            raise FaultToleranceError(
                "fault tolerance requires the middleware default combination: "
                "a custom combination_t implies reduction-object state the "
                "engine cannot merge from a per-split scratch copy"
            )
        if len({s.split_id for s in splits}) != len(splits):
            raise FaultToleranceError(
                "fault tolerance requires unique split ids (retry and "
                "commit tracking is keyed by split id)"
            )

    # -- process-pool execution ----------------------------------------------------

    def _process_payload(
        self, spec: ReductionSpec, tracer: "Tracer | NullTracer", node: int
    ) -> dict[str, Any]:
        """The picklable task base shared by every worker task of one run.

        Publishes the spec's linearized dataset into the engine's
        shared-memory segment cache (a no-op after the first run over the
        same buffer) and flattens the :class:`~repro.freeride.spec.KernelSpec`
        into plain dict fields — workers receive segment *names*, never
        element data.
        """
        kspec = spec.kernel_spec
        if kspec is None:
            raise FreerideError(
                "the process executor requires a compiled reduction: build "
                "the spec with BoundReduction.make_spec (a hand-written "
                "ReductionSpec closure cannot be shipped to worker processes)"
            )
        if kspec.shm_session is not None:
            # delta sessions publish into one growable session segment —
            # a delta pass ships only the appended tail's bytes.  The
            # trusted prefix ends where the delta range starts, so bytes a
            # rolled-back batch left behind are rewritten, not reused.
            valid_prefix = None
            if kspec.delta_range is not None and kspec.n_elements:
                elem_size = len(kspec.data_raw) // kspec.n_elements
                valid_prefix = kspec.delta_range[0] * elem_size
            name, nbytes = self._res.segments.publish_session(
                kspec.shm_session, kspec.data_raw, valid_prefix=valid_prefix
            )
        else:
            name, nbytes = self._res.segments.publish(kspec.data_raw)
        return {
            "digest": kspec.digest,
            "source": kspec.source,
            "constants": kspec.constants,
            "opt_level": kspec.opt_level,
            "backend": kspec.backend,
            "class_name": kspec.class_name,
            "data_shm": name,
            "data_nbytes": nbytes,
            "dataset_type": kspec.dataset_type,
            "n_elements": kspec.n_elements,
            "extras": kspec.extras,
            "extras_epoch": kspec.extras_epoch,
            "technique": kspec.technique,
            "ro_layout": list(kspec.ro_layout),
            "trace_epoch": tracer.epoch if tracer.enabled else None,
            "node": node,
        }

    def _execute_process_direct(
        self,
        spec: ReductionSpec,
        splits: list[Split],
        accessors: list[ROAccessor],
        elems: list[int],
        nsplits: list[int],
        tracer: "Tracer | NullTracer",
        metrics: MetricsRegistry | None,
        node: int,
        profile_ctx: "dict[str, Any] | None" = None,
    ) -> None:
        """Direct path across processes: one block task per worker.

        Splits are assigned statically — worker ``w`` gets ``splits[w::W]``,
        the exact round-robin the serial executor walks — so the per-replica
        accumulation order (and therefore every float result, bit for bit)
        matches serial execution.  Workers accumulate into their replica slot
        of one shared reduction-object segment; the parent copies each slot
        into the matching accessor's private copy and lets the ordinary
        ``mgr.finish`` combination tree take over.
        """
        from repro.freeride import procexec

        payload = self._process_payload(spec, tracer, node)
        descriptors = split_descriptors(splits)
        ro_layout = payload["ro_layout"]
        ro_floats = sum(n for n, _ in ro_layout)
        width = self.num_threads
        pool = self._get_process_pool()
        seg = create_shm_segment(width * ro_floats * 8)
        view: np.ndarray | None = None
        try:
            futures = [
                pool.submit(
                    procexec.run_block_task,
                    {
                        **payload,
                        "slot": w,
                        "ro_floats": ro_floats,
                        "ro_shm": seg.name,
                        "splits": descriptors[w::width],
                    },
                )
                for w in range(width)
            ]
            results = [f.result() for f in futures]
            view = np.ndarray(
                (width * ro_floats,), dtype=np.float64, buffer=seg.buf
            )
            counters = spec.kernel_spec.counters if spec.kernel_spec else None
            split_seconds = contention = None
            if tracer.enabled:
                assert metrics is not None
                split_seconds = metrics.histogram("engine.split_seconds")
                contention = metrics.histogram(
                    "ro.lock_acquisitions_per_split", DEFAULT_COUNT_BUCKETS
                )
            for res in results:
                w = res["slot"]
                replica = accessors[w].ro  # type: ignore[attr-defined]
                replica._buffer[:] = view[w * ro_floats : (w + 1) * ro_floats]
                replica.update_count = res["update_count"]
                elems[w] += res["elements"]
                nsplits[w] += res["nsplits"]
                if counters is not None:
                    counters.add(res["counters"])
                if profile_ctx is not None:
                    # fold every worker's split durations into this run's
                    # single profile record (one RunProfile per engine run)
                    profile_ctx.setdefault("worker_durations", []).extend(
                        res["durations"]
                    )
                if tracer.enabled:
                    tracer.ingest(res["records"])
                    for dur in res["durations"]:
                        split_seconds.observe(dur)
                        contention.observe(0)  # replication: lock-free
        finally:
            # the view must die before the mapping can be released
            del view
            close_shm_segment(seg, unlink=True)

    def _execute_process_ft(
        self,
        spec: ReductionSpec,
        splits: list[Split],
        accessors: list[ROAccessor],
        stats: RunStats,
        elems: list[int],
        nsplits: list[int],
        tracer: "Tracer | NullTracer",
        metrics: MetricsRegistry | None,
        node: int,
        profile_ctx: "dict[str, Any] | None" = None,
    ) -> None:
        """Fault-tolerant path across processes: one task per split attempt.

        The parent drives the same :class:`SplitQueue` lifecycle the thread
        executor runs inside its workers — claim, straggler steal, retry
        with backoff, requeue, abandon — but dispatches each attempt as a
        worker task over ``num_threads`` lanes.  Results are committed
        through the exactly-once completion gate into the lane's accessor,
        so speculative duplicates and failed attempts never touch the
        reduction object; counter deltas from *failed* attempts still reach
        the ledger, matching thread-mode accounting.
        """
        from repro.freeride import procexec

        self._validate_ft_spec(spec, splits)
        payload = self._process_payload(spec, tracer, node)
        policy = self.fault_policy or FaultPolicy()
        lock = threading.Lock()
        queue = SplitQueue(splits)
        desc_by_id = {d[0]: d for d in split_descriptors(splits)}
        ro_layout = payload["ro_layout"]
        counters = spec.kernel_spec.counters if spec.kernel_spec else None
        pool = self._get_process_pool()
        free = list(range(self.num_threads))
        inflight: dict[Any, tuple[Split, int, bool, int]] = {}
        split_seconds = (
            metrics.histogram("engine.split_seconds")
            if tracer.enabled and metrics is not None
            else None
        )

        while True:
            while free:
                lane = free[0]
                speculative = False
                item = queue.claim()
                if item is None and policy.straggler_timeout is not None:
                    item = queue.steal_straggler(policy.straggler_timeout)
                    speculative = item is not None
                    if speculative and tracer.enabled:
                        tracer.event(
                            "split.steal", cat="fault",
                            split_id=item[0].split_id, thread_id=lane,
                            node=node,
                        )
                if item is None:
                    break
                split, attempt = item
                if len(split) == 0:
                    queue.complete(split)
                    continue
                free.pop(0)
                if attempt > 1:
                    with lock:
                        stats.retries += 1
                    backoff = policy.backoff_seconds(attempt - 1)
                    if backoff:
                        time.sleep(backoff)
                self._note_attempt(stats, lock, split.split_id, attempt)
                fut = pool.submit(
                    procexec.run_split_task,
                    {
                        **payload,
                        "lane": lane,
                        "split": desc_by_id[split.split_id],
                        "attempt": attempt,
                        "injector": self.fault_injector,
                        "split_timeout": policy.split_timeout,
                    },
                )
                inflight[fut] = (split, attempt, speculative, lane)
            if not inflight:
                if queue.poisoned or not queue.outstanding():
                    break
                time.sleep(0.0005)  # a requeue may still be racing in
                continue
            done, _ = futures_wait(
                inflight, timeout=0.05, return_when=FIRST_COMPLETED
            )
            for fut in done:
                split, attempt, speculative, lane = inflight.pop(fut)
                free.append(lane)
                res = fut.result()  # worker-process crashes propagate here
                if counters is not None:
                    counters.add(res["counters"])
                if profile_ctx is not None:
                    profile_ctx.setdefault("worker_durations", []).append(
                        res["duration"]
                    )
                if tracer.enabled:
                    tracer.ingest(res["records"])
                    if split_seconds is not None:
                        split_seconds.observe(res["duration"])
                outcome = res["outcome"]
                if outcome == "ok":
                    if queue.complete(split):
                        scratch = ReductionObject.from_layout(
                            ro_layout,
                            buffer=np.frombuffer(
                                res["buffer"], dtype=np.float64
                            ).copy(),
                            initialize=False,
                        )
                        scratch.update_count = res["update_count"]
                        accessors[lane].merge_from_scratch(scratch)
                        elems[lane] += len(split)
                        nsplits[lane] += 1
                    continue
                if outcome == "injected":
                    with lock:
                        stats.injected_faults += 1
                elif outcome == "timeout":
                    with lock:
                        stats.timeouts += 1
                if speculative:
                    continue  # the original attempt is still in flight
                if attempt < policy.max_attempts:
                    queue.requeue(split)
                    if tracer.enabled:
                        tracer.event(
                            "split.requeue", cat="fault",
                            split_id=split.split_id, attempt=attempt,
                            thread_id=lane, node=node,
                        )
                    continue
                queue.abandon(split)
                if tracer.enabled:
                    tracer.event(
                        "split.abandon", cat="fault",
                        split_id=split.split_id, attempts=attempt,
                        thread_id=lane, node=node, error=res["error"],
                    )
                if policy.mode == FAIL_FAST:
                    queue.poison()
                    raise self._rebuild_worker_error(res)
                with lock:
                    stats.failed_splits += 1
                    stats.failures.append(
                        SplitFailureRecord(
                            split_id=split.split_id,
                            attempts=attempt,
                            error=res["error"],
                            elements_lost=len(split),
                        )
                    )
        stats.requeues += queue.requeues

    @staticmethod
    def _rebuild_worker_error(res: dict[str, Any]) -> BaseException:
        """The worker's original exception, rebuilt in the parent.

        Fail-fast mode re-raises what the split actually hit (e.g.
        :class:`InjectedFault`, :class:`SplitTimeout`), exactly like the
        in-process executors; an unpicklable exception degrades to a
        :class:`FaultToleranceError` carrying its repr.
        """
        if res.get("exception") is not None:
            try:
                exc = pickle.loads(res["exception"])
                if isinstance(exc, BaseException):
                    return exc
            except Exception:
                pass
        return FaultToleranceError(
            f"split failed in worker process {res.get('pid')}: {res.get('error')}"
        )
