"""The developer-facing FREERIDE reduction specification.

Paper §III-A: an application developer writes a *local reduction* function
(process one split, updating the reduction object) and optionally a *global
reduction* (combination) and a *finalize*.  The splitter and combination have
middleware-provided defaults, which the paper's applications use.

:class:`ReductionSpec` bundles those callables; :class:`ReductionArgs` is the
Python rendering of the C ``reduction_args_t*`` handed to the local reduction
function (the split's data plus the reduction-object handle and any
application extras such as the k-means centroids).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.freeride.reduction_object import ReductionObject
from repro.freeride.sharedmem import ROAccessor
from repro.freeride.splitter import Split
from repro.util.errors import FreerideError

__all__ = ["ReductionArgs", "ReductionSpec"]


@dataclass
class ReductionArgs:
    """Arguments handed to the local reduction function for one split.

    Mirrors FREERIDE's ``reduction_args_t``: the split's data, the thread id,
    the reduction-object accessor (whose ``accumulate`` is Table I's
    ``accumulate(int, int, void*)``), and application extras.

    ``attempt`` is 1 for normal execution; under a fault policy it counts
    the processing attempts of this split (2 on the first retry, ...), so
    reduction functions and tests can observe recovery.  Reduction functions
    must stay idempotent per split — a retried attempt runs against a fresh
    scratch reduction object, but any *external* side effects would repeat.
    """

    data: Any
    split: Split
    thread_id: int
    ro: ROAccessor
    extras: dict[str, Any] = field(default_factory=dict)
    attempt: int = 1

    def __len__(self) -> int:
        return len(self.split)


@dataclass
class ReductionSpec:
    """A complete FREERIDE application specification.

    ``setup_reduction_object``
        allocates groups on a fresh reduction object (called once per run —
        corresponds to ``reduction_object_alloc`` in the init section).
    ``reduction``
        the local reduction: processes every element of a split and updates
        the reduction object through ``args.ro.accumulate``.
    ``combination``
        optional override of the middleware's default merge of per-thread
        copies.  ``None`` selects the default combination function, which is
        what the paper's applications use.
    ``finalize``
        optional post-processing producing the run's result from the final
        reduction object (the ``generate`` of the Chapel model).
    ``extras``
        read-only application state visible to the reduction function
        (e.g. the current centroids).  Must not be mutated during a run.
    """

    name: str
    setup_reduction_object: Callable[[ReductionObject], None]
    reduction: Callable[[ReductionArgs], None]
    combination: Callable[[list[ReductionObject]], ReductionObject] | None = None
    finalize: Callable[[ReductionObject], Any] | None = None
    extras: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not callable(self.setup_reduction_object):
            raise FreerideError("setup_reduction_object must be callable")
        if not callable(self.reduction):
            raise FreerideError("reduction must be callable")
        if self.combination is not None and not callable(self.combination):
            raise FreerideError("combination must be callable or None")
        if self.finalize is not None and not callable(self.finalize):
            raise FreerideError("finalize must be callable or None")

    def build_reduction_object(self) -> ReductionObject:
        """Allocate and initialize a fresh reduction object for a run."""
        ro = ReductionObject()
        self.setup_reduction_object(ro)
        if ro.num_groups == 0:
            raise FreerideError(
                f"spec {self.name!r} allocated no reduction-object groups"
            )
        return ro
