"""The developer-facing FREERIDE reduction specification.

Paper §III-A: an application developer writes a *local reduction* function
(process one split, updating the reduction object) and optionally a *global
reduction* (combination) and a *finalize*.  The splitter and combination have
middleware-provided defaults, which the paper's applications use.

:class:`ReductionSpec` bundles those callables; :class:`ReductionArgs` is the
Python rendering of the C ``reduction_args_t*`` handed to the local reduction
function (the split's data plus the reduction-object handle and any
application extras such as the k-means centroids).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.freeride.reduction_object import ReductionObject
from repro.freeride.sharedmem import ROAccessor
from repro.freeride.splitter import Split
from repro.util.errors import FreerideError

__all__ = ["ReductionArgs", "ReductionSpec", "KernelSpec"]


@dataclass
class KernelSpec:
    """A compact, picklable description of a compiled reduction kernel.

    The ``"process"`` executor cannot ship a :class:`ReductionSpec` to
    worker processes — its callables close over live numpy views and the
    parent's environment.  Instead, ``BoundReduction.make_spec`` attaches
    one of these: workers receive only the program (digest + source +
    constants + version + backend), re-key it into their own process-wide
    kernel cache (compiled once per worker on first miss), and rebind it
    against the shared-memory copy of the linearized dataset.

    ``data_raw`` and ``counters`` are *parent-side only* — the raw dataset
    buffer the engine publishes into shared memory, and the bound kernel's
    live :class:`~repro.machine.counters.OpCounters` ledger into which the
    engine folds the per-split counter deltas workers ship back.  Neither
    is ever pickled; the per-task payloads carry segment descriptors and
    fresh counter objects instead.
    """

    digest: str
    source: Any
    constants: dict[str, Any]
    opt_level: int
    backend: str
    class_name: str | None
    ro_layout: tuple[tuple[int, str], ...]
    n_elements: int
    dataset_type: Any
    extras: dict[str, Any]
    extras_epoch: int
    #: kernel variant the program was compiled for — ``"generic"`` or
    #: ``"colored"`` (the colored variant's batch path passes the
    #: ``exclusive`` hint); part of the worker-side kernel-cache key
    technique: str = "generic"
    #: the backend tier the compiled kernel actually dispatches to in the
    #: parent after fallbacks (native/batch/scalar) — recorded into
    #: persisted run profiles so history lookups can tell tiers apart
    effective_backend: str = "scalar"
    #: for native-tier kernels: True when the ``.so`` came from the on-disk
    #: kernel cache, False when this process ran the C compiler; ``None``
    #: for non-native tiers (also surfaced in persisted run profiles)
    native_disk_hit: bool | None = None
    #: for delta runs: the ``[start, end)`` element range this run covers —
    #: the appended tail of an incrementally grown dataset.  ``None`` for
    #: ordinary full runs.  All kernel tiers already take ``(_start,
    #: _end)``, so executors run delta ranges unmodified; the engine uses
    #: this to split only the range and to republish only the tail of the
    #: shared-memory dataset segment.
    delta_range: tuple[int, int] | None = None
    #: stable session key for shared-memory publication.  ``None`` selects
    #: the content-addressed cache (one segment per distinct buffer);
    #: delta sessions set a key so the engine publishes into one growable
    #: segment and ships only the appended tail on each delta run.
    shm_session: str | None = None
    data_raw: Any = field(repr=False, default=None)
    counters: Any = field(repr=False, default=None)


@dataclass
class ReductionArgs:
    """Arguments handed to the local reduction function for one split.

    Mirrors FREERIDE's ``reduction_args_t``: the split's data, the thread id,
    the reduction-object accessor (whose ``accumulate`` is Table I's
    ``accumulate(int, int, void*)``), and application extras.

    ``attempt`` is 1 for normal execution; under a fault policy it counts
    the processing attempts of this split (2 on the first retry, ...), so
    reduction functions and tests can observe recovery.  Reduction functions
    must stay idempotent per split — a retried attempt runs against a fresh
    scratch reduction object, but any *external* side effects would repeat.
    """

    data: Any
    split: Split
    thread_id: int
    ro: ROAccessor
    extras: dict[str, Any] = field(default_factory=dict)
    attempt: int = 1

    def __len__(self) -> int:
        return len(self.split)


@dataclass
class ReductionSpec:
    """A complete FREERIDE application specification.

    ``setup_reduction_object``
        allocates groups on a fresh reduction object (called once per run —
        corresponds to ``reduction_object_alloc`` in the init section).
    ``reduction``
        the local reduction: processes every element of a split and updates
        the reduction object through ``args.ro.accumulate``.
    ``combination``
        optional override of the middleware's default merge of per-thread
        copies.  ``None`` selects the default combination function, which is
        what the paper's applications use.
    ``finalize``
        optional post-processing producing the run's result from the final
        reduction object (the ``generate`` of the Chapel model).
    ``extras``
        read-only application state visible to the reduction function
        (e.g. the current centroids).  Must not be mutated during a run.
    ``kernel_spec``
        present only on specs built by ``BoundReduction.make_spec``: the
        picklable :class:`KernelSpec` the ``"process"`` executor ships to
        worker processes instead of the closures above.
    ``group_bounds``
        how the COLORED technique learns which reduction-object groups each
        split's updates can touch.  Either a callable
        ``(split, num_groups) -> iterable of group ids | None`` for
        reductions whose footprint varies per split, or a
        :class:`~repro.compiler.groupbounds.GroupBounds` result attached by
        the compiler (``BoundReduction.make_spec`` does this automatically).
        ``None`` means unknown — the engine then falls back from colored.
    """

    name: str
    setup_reduction_object: Callable[[ReductionObject], None]
    reduction: Callable[[ReductionArgs], None]
    combination: Callable[[list[ReductionObject]], ReductionObject] | None = None
    finalize: Callable[[ReductionObject], Any] | None = None
    extras: dict[str, Any] = field(default_factory=dict)
    kernel_spec: KernelSpec | None = None
    group_bounds: Any = None

    def __post_init__(self) -> None:
        if not callable(self.setup_reduction_object):
            raise FreerideError("setup_reduction_object must be callable")
        if not callable(self.reduction):
            raise FreerideError("reduction must be callable")
        if self.combination is not None and not callable(self.combination):
            raise FreerideError("combination must be callable or None")
        if self.finalize is not None and not callable(self.finalize):
            raise FreerideError("finalize must be callable or None")
        if self.kernel_spec is not None and not isinstance(self.kernel_spec, KernelSpec):
            raise FreerideError("kernel_spec must be a KernelSpec or None")

    def build_reduction_object(self) -> ReductionObject:
        """Allocate and initialize a fresh reduction object for a run."""
        ro = ReductionObject()
        self.setup_reduction_object(ro)
        if ro.num_groups == 0:
            raise FreerideError(
                f"spec {self.name!r} allocated no reduction-object groups"
            )
        return ro
