"""Worker-process side of the ``"process"`` executor.

The process executor extends FREERIDE's full-replication technique across
address spaces: the parent publishes the linearized dataset into a POSIX
shared-memory segment once per engine, and every task shipped to a worker is
just a compact picklable payload — the kernel's
:class:`~repro.freeride.spec.KernelSpec` fields plus ``(segment name,
nbytes)`` and ``(split_id, start, stop)`` descriptors.  Nothing element-sized
ever crosses the process boundary.

Workers keep two process-local caches:

* the ordinary process-wide kernel cache
  (:func:`repro.compiler.cache.compile_for_digest`): each worker recompiles a
  program once, on its first task for that digest;
* a bound-kernel cache keyed by ``(digest, opt level, backend, data
  segment)``: the shared dataset is attached and bound once, and extras
  (e.g. k-means centroids) are re-bound only when the parent's
  ``extras_epoch`` moved — one small re-linearization per outer-loop
  iteration, exactly like the in-process executors.

Two task shapes exist, mirroring the engine's two execution paths:

:func:`run_block_task`
    the direct (no-fault) path.  One task per worker per run; the worker
    processes its statically assigned splits (``splits[w::W]``, the same
    deterministic round-robin the serial executor uses) and accumulates
    straight into its replica slot of a parent-created shared-memory
    reduction-object segment — the zero-copy transport of results.

:func:`run_split_task`
    the fault-tolerant path.  One task per split *attempt*; the worker
    processes into a private scratch reduction object and returns its buffer
    without committing — the parent owns the
    :class:`~repro.freeride.splitter.SplitQueue` and its exactly-once
    ``complete()`` gate, so speculative straggler duplicates are discarded
    there just as in thread mode.

Both return per-task :class:`~repro.machine.counters.OpCounters` deltas and
(when tracing) :class:`~repro.obs.tracer.Span`/``Event`` records stamped with
the worker pid, which the parent folds into the run's ledger and trace.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any

import numpy as np

from repro.freeride.faults import InjectedFault, SplitTimeout
from repro.freeride.reduction_object import ReductionObject
from repro.freeride.sharedmem import (
    ReplicatedAccessor,
    ScratchAccessor,
    SharedMemTechnique,
    attach_shm_segment,
    close_shm_segment,
)
from repro.machine.counters import OpCounters
from repro.obs.tracer import Event, Span

__all__ = [
    "create_process_pool",
    "pick_start_method",
    "run_block_task",
    "run_split_task",
]

#: Environment override for the pool's multiprocessing start method.
START_METHOD_ENV = "REPRO_MP_START_METHOD"


def pick_start_method() -> str:
    """``fork`` where available (fast, inherits the parent's modules), else
    ``spawn`` (Windows, macOS default); ``REPRO_MP_START_METHOD`` overrides."""
    available = multiprocessing.get_all_start_methods()
    override = os.environ.get(START_METHOD_ENV)
    if override:
        if override not in available:
            raise ValueError(
                f"{START_METHOD_ENV}={override!r} is not available here; "
                f"choose from {available}"
            )
        return override
    return "fork" if "fork" in available else "spawn"


def create_process_pool(max_workers: int) -> ProcessPoolExecutor:
    """A persistent worker-process pool for one engine."""
    ctx = multiprocessing.get_context(pick_start_method())
    return ProcessPoolExecutor(max_workers=max_workers, mp_context=ctx)


# -- worker-side caches ---------------------------------------------------------
#
# Module globals: each worker process gets its own copies.  Entries live for
# the worker's lifetime (the pool is persistent per engine); segments the
# parent unlinks stay mapped here until the worker exits, which is safe on
# every platform with POSIX shared memory.

_DATA_SEGMENTS: dict[str, tuple[Any, np.ndarray]] = {}
_BOUND_CACHE: dict[tuple[str, int, str, str, str], list[Any]] = {}


def _attached_raw(name: str, nbytes: int) -> np.ndarray:
    """Attach (once) the parent's dataset segment; returns the uint8 view.

    Delta sessions grow a segment in place (the parent over-allocates and
    publishes only the appended tail), so a cached view that is shorter
    than the requested ``nbytes`` is re-taken over the same mapping — the
    attach itself still happens once per segment per worker.
    """
    entry = _DATA_SEGMENTS.get(name)
    if entry is None:
        shm = attach_shm_segment(name)
        raw = np.ndarray((nbytes,), dtype=np.uint8, buffer=shm.buf)
        _DATA_SEGMENTS[name] = entry = (shm, raw)
    elif entry[1].size < nbytes:
        shm = entry[0]
        raw = np.ndarray((nbytes,), dtype=np.uint8, buffer=shm.buf)
        _DATA_SEGMENTS[name] = entry = (shm, raw)
    return entry[1]


def _bound_for(task: dict[str, Any]):
    """The task's kernel, bound against the shared dataset (cached)."""
    # Imported here, not at module top: the freeride package must stay
    # importable without pulling in the compiler (layering), and only
    # process-mode workers ever reach this path.
    from repro.compiler.cache import compile_for_digest
    from repro.compiler.linearize import LinearizedBuffer

    technique = task.get("technique", "generic")
    key = (
        task["digest"],
        task["opt_level"],
        task["backend"],
        technique,
        task["data_shm"],
    )
    entry = _BOUND_CACHE.get(key)
    if entry is None or entry[2] != task["n_elements"]:
        # first task for this program+segment, or the dataset grew in
        # place (delta session): re-take the view and re-bind.  The
        # compile itself still hits the process-wide kernel cache.
        compiled = compile_for_digest(
            task["digest"],
            task["source"],
            task["constants"],
            opt_level=task["opt_level"],
            class_name=task["class_name"],
            backend=task["backend"],
            technique=technique,
        )
        raw = _attached_raw(task["data_shm"], task["data_nbytes"])
        buf = LinearizedBuffer(typ=task["dataset_type"], raw=raw)
        bound = compiled.bind(buf, task["extras"], n_elements=task["n_elements"])
        _BOUND_CACHE[key] = entry = [
            bound, task["extras_epoch"], task["n_elements"]
        ]
    elif entry[1] != task["extras_epoch"]:
        entry[0].update_extras(task["extras"])
        entry[1] = task["extras_epoch"]
    return entry[0]


def _worker_name() -> str:
    return f"freeride-worker-{os.getpid()}"


def _split_span(
    task: dict[str, Any],
    sid: int,
    thread_id: int,
    elements: int,
    start_pc: float,
    dur: float,
    **extra: Any,
) -> Span:
    """A ``split`` span in the parent tracer's timebase, pid-attributed."""
    pid = os.getpid()
    return Span(
        name="split",
        ts=start_pc - task["trace_epoch"],
        dur=dur,
        cat="split",
        tid=pid,
        thread=_worker_name(),
        args={
            "split_id": sid,
            "thread_id": thread_id,
            "node": task["node"],
            "elements": elements,
            "worker_pid": pid,
            **extra,
        },
    )


def run_block_task(task: dict[str, Any]) -> dict[str, Any]:
    """Direct path: process this worker's splits into its replica slot.

    The parent created one shared segment holding ``num_threads``
    contiguous reduction-object replicas; this worker's accumulations land
    directly in slot ``task["slot"]`` — no result pickling, no copies.
    """
    bound = _bound_for(task)
    kernel = bound.compiled.effective_kernel
    env = bound.env
    slot = task["slot"]
    ro_floats = task["ro_floats"]

    ro_shm = attach_shm_segment(task["ro_shm"])
    view = np.ndarray(
        (ro_floats,), dtype=np.float64, buffer=ro_shm.buf, offset=slot * ro_floats * 8
    )
    ro = ReductionObject.from_layout(task["ro_layout"], buffer=view)
    accessor = ReplicatedAccessor(ro, SharedMemTechnique.FULL_REPLICATION)
    counters = OpCounters()
    epoch = task["trace_epoch"]
    records: list[Span] = []
    elements = 0
    nsplits = 0
    durations: list[float] = []
    for sid, start, stop in task["splits"]:
        if stop <= start:
            continue
        t0 = time.perf_counter()
        kernel(start, stop, accessor, env, counters)
        dur = time.perf_counter() - t0
        elements += stop - start
        nsplits += 1
        durations.append(dur)
        if epoch is not None:
            records.append(
                _split_span(task, sid, slot, stop - start, t0, dur, outcome="ok")
            )
    result = {
        "slot": slot,
        "elements": elements,
        "nsplits": nsplits,
        "update_count": ro.update_count,
        "counters": counters,
        "records": records,
        "durations": durations,
        "pid": os.getpid(),
    }
    # Drop every view over the segment before closing the worker's mapping
    # (the parent still owns the segment and will unlink it after merging).
    del accessor, ro, view
    close_shm_segment(ro_shm)
    return result


def run_split_task(task: dict[str, Any]) -> dict[str, Any]:
    """Fault-tolerant path: one attempt of one split into a scratch object.

    Mirrors the thread executor's ``_attempt_split_core``: the injector
    fires first, the kernel accumulates into a private scratch reduction
    object, and a soft per-attempt timeout discards completed-but-late
    work.  Nothing is committed here — the scratch buffer is returned and
    the parent merges it only if the split's exactly-once completion gate
    accepts it.  Counter deltas are returned for *every* outcome, matching
    thread mode where a failed attempt's kernel work still hits the ledger.
    """
    bound = _bound_for(task)
    kernel = bound.compiled.effective_kernel
    env = bound.env
    sid, start, stop = task["split"]
    attempt = task["attempt"]
    injector = task["injector"]
    scratch = ReductionObject.from_layout(task["ro_layout"])
    counters = OpCounters()
    epoch = task["trace_epoch"]

    outcome = "ok"
    exc_obj: BaseException | None = None
    t0 = time.perf_counter()
    mono0 = time.monotonic()
    try:
        if injector is not None:
            injector.inject(sid, attempt)
        kernel(start, stop, ScratchAccessor(scratch), env, counters)
    except InjectedFault as exc:
        outcome, exc_obj = "injected", exc
    except Exception as exc:
        outcome, exc_obj = "error", exc
    elapsed = time.monotonic() - mono0
    timeout = task["split_timeout"]
    if outcome == "ok" and timeout is not None and elapsed > timeout:
        exc_obj = SplitTimeout(
            f"split {sid} attempt {attempt} exceeded the "
            f"{timeout}s per-split timeout"
        )
        outcome = "timeout"
    dur = time.perf_counter() - t0

    records: list[Span | Event] = []
    if epoch is not None:
        span_extra: dict[str, Any] = {"attempt": attempt}
        if outcome == "ok":
            span_extra["outcome"] = "ok"
        else:
            span_extra["outcome"] = "failed"
            span_extra["error"] = repr(exc_obj)
        records.append(
            _split_span(task, sid, task["lane"], stop - start, t0, dur, **span_extra)
        )
        event_name = {"injected": "fault.injected", "timeout": "fault.timeout"}.get(
            outcome
        )
        if event_name is not None:
            records.append(
                Event(
                    name=event_name,
                    ts=time.perf_counter() - epoch,
                    cat="fault",
                    tid=os.getpid(),
                    thread=_worker_name(),
                    args={
                        "split_id": sid,
                        "attempt": attempt,
                        "thread_id": task["lane"],
                        "node": task["node"],
                        "worker_pid": os.getpid(),
                    },
                )
            )

    exc_bytes: bytes | None = None
    if exc_obj is not None:
        try:
            exc_bytes = pickle.dumps(exc_obj)
        except Exception:
            exc_bytes = None  # parent falls back to the repr

    return {
        "outcome": outcome,
        "error": repr(exc_obj) if exc_obj is not None else None,
        "exception": exc_bytes,
        "buffer": scratch._buffer.tobytes() if outcome == "ok" else None,
        "update_count": scratch.update_count,
        "counters": counters,
        "records": records,
        "duration": dur,
        "pid": os.getpid(),
    }
