"""Combination phases: all-to-one reduce and parallel (tree) merge.

Paper §III-A: "The global combination phase can be achieved by a simple
all-to-one reduce algorithm.  If the size of the reduction object is large,
both local and global combination phases perform a parallel merge to speed up
the process."

Both strategies produce the same combined reduction object; they differ in
the *critical-path* number of merge rounds, which the simulated machine
prices (all-to-one: p-1 sequential merges; tree: ceil(log2 p) rounds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.freeride.reduction_object import ReductionObject
from repro.util.errors import FreerideError

__all__ = [
    "CombinationStats",
    "all_to_one_combine",
    "parallel_merge_combine",
    "combine",
    "PARALLEL_MERGE_THRESHOLD_BYTES",
]

#: Reduction objects at least this large use the parallel merge
#: ("if the size of the reduction object is large").
PARALLEL_MERGE_THRESHOLD_BYTES = 64 * 1024


@dataclass
class CombinationStats:
    """Accounting for one combination phase."""

    strategy: str = "all_to_one"
    merges: int = 0          # total pairwise merges performed
    rounds: int = 0          # critical-path rounds (parallelism-aware)
    elements_merged: int = 0  # total elements passed through merges


def all_to_one_combine(
    ros: Sequence[ReductionObject],
    target: ReductionObject | None = None,
) -> tuple[ReductionObject, CombinationStats]:
    """Sequentially fold every copy into ``target``.

    With no ``target`` the result is a fresh copy seeded from ``ros[0]``
    and the remaining copies are folded in (``len(ros) - 1`` merges).  With
    a caller-provided ``target`` every copy is folded into it (``len(ros)``
    merges).  The inputs are never mutated either way.
    """
    if not ros:
        raise FreerideError("nothing to combine")
    stats = CombinationStats(strategy="all_to_one")
    if target is None:
        target = ros[0].copy()
        rest = ros[1:]
    else:
        rest = ros
    for other in rest:
        target.merge_from(other)
        stats.merges += 1
        stats.elements_merged += target.size
    stats.rounds = stats.merges  # fully sequential
    return target, stats


def parallel_merge_combine(
    ros: Sequence[ReductionObject],
    target: ReductionObject | None = None,
) -> tuple[ReductionObject, CombinationStats]:
    """Tree merge: pairs merge concurrently, ceil(log2 p) rounds.

    The merge work itself is identical to all-to-one; only the critical path
    shrinks.  We perform the merges in tree order so the stats reflect the
    parallel schedule deterministically.  The inputs are never mutated: the
    left side of each first-touch merge is copied before merging, and a
    caller-provided ``target`` absorbs the tree's result in one final merge.
    """
    if not ros:
        raise FreerideError("nothing to combine")
    stats = CombinationStats(strategy="parallel_merge")
    live = list(ros)
    # owned[i] marks tree-private intermediates we are free to mutate;
    # original inputs are copied the first time they would be a merge target.
    owned = [False] * len(live)
    while len(live) > 1:
        nxt: list[ReductionObject] = []
        nxt_owned: list[bool] = []
        for i in range(0, len(live) - 1, 2):
            left = live[i] if owned[i] else live[i].copy()
            left.merge_from(live[i + 1])
            stats.merges += 1
            stats.elements_merged += left.size
            nxt.append(left)
            nxt_owned.append(True)
        if len(live) % 2 == 1:
            nxt.append(live[-1])
            nxt_owned.append(owned[-1])
        live, owned = nxt, nxt_owned
        stats.rounds += 1
    result = live[0]
    if target is not None:
        target.merge_from(result)
        stats.merges += 1
        stats.elements_merged += target.size
        stats.rounds += 1
        return target, stats
    return result, stats


def combine(
    ros: Sequence[ReductionObject],
    threshold_bytes: int = PARALLEL_MERGE_THRESHOLD_BYTES,
    target: ReductionObject | None = None,
) -> tuple[ReductionObject, CombinationStats]:
    """Pick the strategy by reduction-object size, like the middleware does.

    ``target``, when given, receives the combined result (the local
    combination merges per-thread copies straight into the run's base
    reduction object this way); the input copies are left untouched.
    """
    if not ros:
        raise FreerideError("nothing to combine")
    if len(ros) == 1 and target is None:
        return ros[0], CombinationStats(strategy="trivial")
    if ros[0].nbytes >= threshold_bytes:
        return parallel_merge_combine(ros, target)
    return all_to_one_combine(ros, target)


def expected_rounds(num_copies: int, strategy: str) -> int:
    """Critical-path merge rounds for a strategy (used by the cost model)."""
    if num_copies <= 1:
        return 0
    if strategy == "parallel_merge":
        return math.ceil(math.log2(num_copies))
    return num_copies - 1
