"""Combination phases: all-to-one reduce and parallel (tree) merge.

Paper §III-A: "The global combination phase can be achieved by a simple
all-to-one reduce algorithm.  If the size of the reduction object is large,
both local and global combination phases perform a parallel merge to speed up
the process."

Both strategies produce the same combined reduction object; they differ in
the *critical-path* number of merge rounds, which the simulated machine
prices (all-to-one: p-1 sequential merges; tree: ceil(log2 p) rounds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.freeride.reduction_object import ReductionObject
from repro.util.errors import FreerideError

__all__ = [
    "CombinationStats",
    "all_to_one_combine",
    "parallel_merge_combine",
    "combine",
    "PARALLEL_MERGE_THRESHOLD_BYTES",
]

#: Reduction objects at least this large use the parallel merge
#: ("if the size of the reduction object is large").
PARALLEL_MERGE_THRESHOLD_BYTES = 64 * 1024


@dataclass
class CombinationStats:
    """Accounting for one combination phase."""

    strategy: str = "all_to_one"
    merges: int = 0          # total pairwise merges performed
    rounds: int = 0          # critical-path rounds (parallelism-aware)
    elements_merged: int = 0  # total elements passed through merges


def all_to_one_combine(
    ros: Sequence[ReductionObject],
) -> tuple[ReductionObject, CombinationStats]:
    """Sequentially fold every copy into the first one."""
    if not ros:
        raise FreerideError("nothing to combine")
    stats = CombinationStats(strategy="all_to_one")
    target = ros[0]
    for other in ros[1:]:
        target.merge_from(other)
        stats.merges += 1
        stats.elements_merged += target.size
    stats.rounds = stats.merges  # fully sequential
    return target, stats


def parallel_merge_combine(
    ros: Sequence[ReductionObject],
) -> tuple[ReductionObject, CombinationStats]:
    """Tree merge: pairs merge concurrently, ceil(log2 p) rounds.

    The merge work itself is identical to all-to-one; only the critical path
    shrinks.  We perform the merges in tree order so the stats reflect the
    parallel schedule deterministically.
    """
    if not ros:
        raise FreerideError("nothing to combine")
    stats = CombinationStats(strategy="parallel_merge")
    live = list(ros)
    while len(live) > 1:
        nxt: list[ReductionObject] = []
        for i in range(0, len(live) - 1, 2):
            live[i].merge_from(live[i + 1])
            stats.merges += 1
            stats.elements_merged += live[i].size
            nxt.append(live[i])
        if len(live) % 2 == 1:
            nxt.append(live[-1])
        live = nxt
        stats.rounds += 1
    return live[0], stats


def combine(
    ros: Sequence[ReductionObject],
    threshold_bytes: int = PARALLEL_MERGE_THRESHOLD_BYTES,
) -> tuple[ReductionObject, CombinationStats]:
    """Pick the strategy by reduction-object size, like the middleware does."""
    if not ros:
        raise FreerideError("nothing to combine")
    if len(ros) == 1:
        return ros[0], CombinationStats(strategy="trivial")
    if ros[0].nbytes >= threshold_bytes:
        return parallel_merge_combine(ros)
    return all_to_one_combine(ros)


def expected_rounds(num_copies: int, strategy: str) -> int:
    """Critical-path merge rounds for a strategy (used by the cost model)."""
    if num_copies <= 1:
        return 0
    if strategy == "parallel_merge":
        return math.ceil(math.log2(num_copies))
    return num_copies - 1
