"""Diagnostics framework for the reduction-safety analyzer.

Every check in :mod:`repro.analysis` reports :class:`Diagnostic` records
with a *stable* code from :data:`CODES` (``RS001``...), a severity, and an
optional source :class:`Span` taken from the mini-Chapel AST's ``line``/
``col`` fields.  Codes are stable across releases so CI annotations and
suppressions can key on them; new checks get new codes, retired checks
leave their code reserved.

The renderer produces compiler-style output::

    examples/lint_reductions.py:23:5: error RS002: write to shared class
    field 'total' bypasses the reduction object
       |     total = total + x;
       |     ^
    hint: fold per-element updates through roAdd/roMin/roMax

:func:`render_diagnostics` accepts an optional ``{file: source_text}`` map
to include the offending source line.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping

__all__ = [
    "Severity",
    "Span",
    "Diagnostic",
    "DiagnosticBag",
    "CODES",
    "DEFAULT_SEVERITIES",
    "diag",
    "render_diagnostic",
    "render_diagnostics",
    "summarize",
]


class Severity(enum.IntEnum):
    """Diagnostic severity; ordered so ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


#: Stable diagnostic codes and their one-line titles.
CODES: dict[str, str] = {
    # -- general -------------------------------------------------------------
    "RS000": "mini-Chapel source failed to parse",
    "RS001": "analysis incomplete: reduction could not be lowered or planned",
    # -- forall race detector ------------------------------------------------
    "RS002": "write to shared class field bypasses the reduction object",
    "RS003": "loop-carried dependence: shared field is read and written across forall iterations",
    "RS004": "combine discards per-task accumulator state",
    "RS005": "accumulate parameter aliases a class field",
    "RS006": "local declaration shadows a class field or the data parameter",
    "RS007": "dynamic index cannot be bounds-checked statically",
    "RS008": "accumulate mutates the (shared, linearized) input element",
    # -- reduce-op algebra checker -------------------------------------------
    "RS010": "identity element is mutable shared state aliased across clones",
    "RS011": "combine is not associative over seeded trials",
    "RS012": "combine is not commutative over seeded trials",
    "RS013": "identity element is not neutral under combine",
    "RS014": "clone() does not produce a fresh identity-state accumulator",
    "RS015": "ReduceScanOp does not override accumulate/combine",
    "RS020": "floating-point reduction: result depends on reassociation (nondeterministic in parallel)",
    # -- invertibility checker (delta execution) -----------------------------
    "RS034": "reduction is invertible: retract hook verified over seeded trials",
    "RS035": "reduction is not invertible: no retract hook, deltas fall back to per-group replay",
    "RS036": "floating-point retract: op(inv(op(a,x),x)) recovers a only up to rounding (cancellation)",
    "RS037": "retract hook is wrong: op(inv(op(a,x),x)) != a on seeded trials",
    # -- plan validator ------------------------------------------------------
    "RS030": "computeIndex out of bounds: index range exceeds the level domain",
    "RS031": "strength-reduction hoist violates its contiguity invariant",
    "RS032": "incremental hoist step does not match the layout unit size",
    "RS033": "compilation plan is inconsistent with the lowered access sites",
    # -- symbolic effect analysis --------------------------------------------
    "RS100": "reduction-object group index provably out of bounds",
    "RS101": "dead accumulate site: guarding condition is statically false",
    "RS102": "group index is neither affine in the element index nor bounded",
}

#: Default severity per code (overridable per Diagnostic at creation).
DEFAULT_SEVERITIES: dict[str, Severity] = {
    "RS000": Severity.ERROR,
    "RS001": Severity.WARNING,
    "RS002": Severity.ERROR,
    "RS003": Severity.ERROR,
    "RS004": Severity.ERROR,
    "RS005": Severity.ERROR,
    "RS006": Severity.WARNING,
    "RS007": Severity.INFO,
    "RS008": Severity.ERROR,
    "RS010": Severity.ERROR,
    "RS011": Severity.ERROR,
    "RS012": Severity.ERROR,
    "RS013": Severity.ERROR,
    "RS014": Severity.ERROR,
    "RS015": Severity.ERROR,
    "RS020": Severity.WARNING,
    "RS034": Severity.INFO,
    "RS035": Severity.INFO,
    "RS036": Severity.WARNING,
    "RS037": Severity.ERROR,
    "RS030": Severity.ERROR,
    "RS031": Severity.ERROR,
    "RS032": Severity.ERROR,
    "RS033": Severity.ERROR,
    "RS100": Severity.ERROR,
    "RS101": Severity.WARNING,
    "RS102": Severity.WARNING,
}


@dataclass(frozen=True)
class Span:
    """A source position: 1-based line/column, ``0`` meaning unknown."""

    line: int = 0
    col: int = 0
    file: str | None = None

    @classmethod
    def of(cls, node: Any, file: str | None = None) -> "Span":
        """Span of an AST node (anything exposing ``line``/``col``)."""
        return cls(
            line=getattr(node, "line", 0) or 0,
            col=getattr(node, "col", 0) or 0,
            file=file,
        )

    def shifted(self, line_offset: int, file: str | None = None) -> "Span":
        """Translate an embedded-source span into its host file.

        A mini-Chapel string literal starting on host line ``L`` maps its
        internal line ``n`` to host line ``L + n - 1``.
        """
        if not self.line:
            return Span(file=file or self.file)
        return Span(self.line + line_offset, self.col, file or self.file)

    def __str__(self) -> str:
        place = self.file or "<source>"
        if self.line:
            return f"{place}:{self.line}:{self.col or 1}"
        return place


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, with a stable code and a source span."""

    code: str
    severity: Severity
    message: str
    span: Span = field(default_factory=Span)
    #: the construct the finding is about (class name, op name, ...)
    subject: str | None = None
    hint: str | None = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def is_error(self) -> bool:
        return self.severity >= Severity.ERROR

    @property
    def title(self) -> str:
        return CODES[self.code]

    def in_file(self, file: str, line_offset: int = 0) -> "Diagnostic":
        """Re-home the diagnostic into a host file (embedded sources)."""
        return replace(self, span=self.span.shifted(line_offset, file))

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "file": self.span.file,
            "line": self.span.line,
            "col": self.span.col,
            "subject": self.subject,
            "hint": self.hint,
        }


def diag(
    code: str,
    message: str,
    *,
    node: Any = None,
    file: str | None = None,
    subject: str | None = None,
    hint: str | None = None,
    severity: Severity | None = None,
) -> Diagnostic:
    """Build a Diagnostic with the code's default severity."""
    return Diagnostic(
        code=code,
        severity=severity if severity is not None else DEFAULT_SEVERITIES[code],
        message=message,
        span=Span.of(node, file) if node is not None else Span(file=file),
        subject=subject,
        hint=hint,
    )


class DiagnosticBag:
    """An ordered, sortable collection of diagnostics."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self._items: list[Diagnostic] = list(diagnostics)

    def add(self, d: Diagnostic) -> None:
        self._items.append(d)

    def extend(self, ds: Iterable[Diagnostic]) -> None:
        self._items.extend(ds)

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self._items if d.severity >= Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self._items if d.severity == Severity.WARNING]

    @property
    def infos(self) -> list[Diagnostic]:
        return [d for d in self._items if d.severity == Severity.INFO]

    @property
    def has_errors(self) -> bool:
        return any(d.severity >= Severity.ERROR for d in self._items)

    def max_severity(self) -> Severity | None:
        return max((d.severity for d in self._items), default=None)

    def sorted(self) -> list[Diagnostic]:
        """Stable order: file, line, column, code."""
        return sorted(
            self._items,
            key=lambda d: (d.span.file or "", d.span.line, d.span.col, d.code),
        )


def render_diagnostic(
    d: Diagnostic, sources: Mapping[str, str] | None = None
) -> str:
    """Render one diagnostic; includes the source line when available."""
    head = f"{d.span}: {d.severity} {d.code}: {d.message}"
    if d.subject:
        head = f"{head} [{d.subject}]"
    lines = [head]
    src = sources.get(d.span.file or "", None) if sources else None
    if src is not None and d.span.line:
        src_lines = src.splitlines()
        if 1 <= d.span.line <= len(src_lines):
            text = src_lines[d.span.line - 1]
            lines.append(f"   | {text}")
            caret_pad = " " * (max(d.span.col, 1) - 1)
            lines.append(f"   | {caret_pad}^")
    if d.hint:
        lines.append(f"hint: {d.hint}")
    return "\n".join(lines)


def render_diagnostics(
    diagnostics: Iterable[Diagnostic],
    sources: Mapping[str, str] | None = None,
) -> str:
    """Render a batch (sorted) plus a one-line summary."""
    bag = (
        diagnostics
        if isinstance(diagnostics, DiagnosticBag)
        else DiagnosticBag(diagnostics)
    )
    parts = [render_diagnostic(d, sources) for d in bag.sorted()]
    parts.append(summarize(bag))
    return "\n".join(parts)


def summarize(diagnostics: Iterable[Diagnostic]) -> str:
    bag = (
        diagnostics
        if isinstance(diagnostics, DiagnosticBag)
        else DiagnosticBag(diagnostics)
    )
    return (
        f"{len(bag.errors)} error(s), {len(bag.warnings)} warning(s), "
        f"{len(bag.infos)} info(s)"
    )
