"""Unified symbolic effect analysis over the lowered kernel IR.

One flow-sensitive abstract interpretation of a ``LoweredReduction``'s
accumulate body computes, for every reduction-object update and every
data/extra access site, a **split-parametric access summary**: a
:class:`~repro.analysis.affine.Form` over the element index.  Evaluating a
form over a split's element range yields the interval of group/array
indices that split can touch — so a per-split footprint is one cheap
evaluation, not a re-analysis.

This is the single range engine behind three consumers that previously
carried private, weaker analyses:

* ``repro.compiler.groupbounds`` re-derives :class:`GroupBounds` from the
  accumulate summaries (and per-split group sets from
  ``groups_for_range``), so compiler-bounded apps color into genuinely
  wide waves;
* ``repro.compiler.batch`` upgrades its boolean taint to *bounded-gather
  proofs*: a lane-varying access index whose summary proves containment
  in the declared extent vectorizes via ``np.take`` instead of forcing a
  whole-kernel scalar fallback;
* ``repro.analysis.plancheck`` checks access indices against
  ``computeIndex``'s layout domains using the same interpretation.

The analysis mirrors the structure of the original group-bounds
interpreter — loop fixpoints with record suppression, condition
narrowing, pointwise environment joins — but over symbolic forms instead
of constant intervals, which is what keeps clamp patterns
(``max(0, min(b, hi))`` or the two-``if`` variant) and ``elemIdx()``
arithmetic precise.

Three diagnostics ride on the summaries:

``RS100`` (error)
    a reduction-object group index *provably* reaches a negative value
    (exactness-tracked: reported only when the protruding value is
    actually achieved by some execution);
``RS101`` (warning)
    a dead accumulate site — its guarding condition is statically false,
    so the update can never execute;
``RS102`` (warning)
    a group index that is neither affine in the element index nor
    bounded, which disables the colored technique.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from repro.analysis.affine import (
    ELEM,
    TOP,
    Bounds,
    Form,
    const,
    f_abs,
    f_add,
    f_clamp,
    f_div,
    f_floor,
    f_max,
    f_min,
    f_mod,
    f_mul,
    f_neg,
    f_sub,
    f_toint,
    unknown,
)
from repro.analysis.diagnostics import Diagnostic, diag
from repro.chapel import ast as A
from repro.chapel.types import PrimitiveType
from repro.compiler.lower import LoweredReduction

__all__ = [
    "ELEM_RANGE",
    "AccumulateEffect",
    "EffectSummary",
    "analyze_effects",
]

#: The element index ranges over ``[0, +inf)``; every index is achieved in
#: some run, so the range is exact.
ELEM_RANGE = Bounds(0, None, exact=True)

#: Fixpoint iteration cap for loop bodies; variables still changing after
#: this many rounds are widened to unknown.
_MAX_LOOP_ITERATIONS = 8

_CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")


def _is_int_scalar(ctype: object) -> bool:
    return isinstance(ctype, PrimitiveType) and ctype.dtype.kind in "iu"


# ----------------------------------------------------------------- summaries


@dataclass(frozen=True)
class AccumulateEffect:
    """One ``roAdd``/``roMin``/``roMax`` call's symbolic group index."""

    op: str
    group: Form
    line: int = 0
    col: int = 0
    #: statically unreachable (guarding condition provably false)
    dead: bool = False

    def group_bounds(self, elem: Bounds) -> Bounds:
        """Interval of group indices touched over the element range."""
        return self.group.eval(elem)


@dataclass(frozen=True)
class EffectSummary:
    """The per-reduction result of :func:`analyze_effects`."""

    name: str
    accumulates: tuple[AccumulateEffect, ...]
    #: ``(id(site.expr), index group, dim) -> forms`` recorded for every
    #: access-site index expression (joined over all flow paths)
    index_forms: dict[tuple[int, int, int], tuple[Form, ...]] = field(
        default_factory=dict, compare=False, repr=False
    )
    diagnostics: tuple[Diagnostic, ...] = ()

    @property
    def live_accumulates(self) -> tuple[AccumulateEffect, ...]:
        return tuple(a for a in self.accumulates if not a.dead)

    def group_interval(self, elem: Bounds = ELEM_RANGE) -> Bounds | None:
        """Join of the group intervals over all accumulate sites.

        ``None`` when the body performs no reduction-object updates.
        """
        effs = self.accumulates
        if not effs:
            return None
        iv = effs[0].group_bounds(elem)
        for eff in effs[1:]:
            iv = iv.join(eff.group_bounds(elem))
        return iv

    def groups_for_range(
        self, start: int, end: int, num_groups: int
    ) -> frozenset[int] | None:
        """Group ids an element range ``[start, end)`` can touch.

        Evaluates each accumulate form over the (exact) element interval
        and unions the clipped integer ranges — the split-parametric
        footprint the colored technique needs.  ``None`` when any live
        accumulate is unbounded over the range.
        """
        if end <= start:
            return frozenset()
        rng = Bounds(start, end - 1, exact=True)
        out: set[int] = set()
        for eff in self.live_accumulates:
            iv = eff.group_bounds(rng)
            if not iv.bounded:
                return None
            lo = max(0, _ceil_int(iv.lo))
            hi = min(num_groups - 1, _floor_int(iv.hi))
            if lo <= hi:
                out.update(range(lo, hi + 1))
        return frozenset(out)

    def index_bounds(
        self, site_expr_id: int, group: int, dim: int,
        elem: Bounds = ELEM_RANGE,
    ) -> Bounds:
        """Joined interval of one access-site index expression."""
        forms = self.index_forms.get((site_expr_id, group, dim))
        if not forms:
            return TOP
        iv = forms[0].eval(elem)
        for f in forms[1:]:
            iv = iv.join(f.eval(elem))
        return iv

    def index_form(
        self, site_expr_id: int, group: int, dim: int
    ) -> Form | None:
        """The unique form of one index expression, if flow-independent."""
        forms = self.index_forms.get((site_expr_id, group, dim))
        if forms and len(forms) == 1:
            return forms[0]
        return None

    def alignment(self) -> int | None:
        """Combined element-period of the element-dependent group forms.

        Split boundaries placed at multiples of this value keep per-split
        group footprints from straddling a window (see
        ``repro.freeride.splitter.aligned_splits``).  ``None`` when no
        live group form exposes a period.
        """
        align = 1
        found = False
        for eff in self.live_accumulates:
            if not eff.group.depends_on_elem:
                continue
            a = eff.group.alignment()
            if a is None or a <= 0:
                return None
            align = _lcm(align, a)
            found = True
        return align if found else None

    def fingerprint(self) -> str:
        """Stable digest of the accumulate summaries."""
        text = ";".join(
            f"{a.op}:{a.group.describe()}:{int(a.dead)}"
            for a in self.accumulates
        )
        return hashlib.sha256(text.encode()).hexdigest()[:12]


def _ceil_int(v: float | int) -> int:
    i = int(v)
    return i if i >= v else i + 1


def _floor_int(v: float | int) -> int:
    i = int(v)
    return i if i <= v else i - 1


def _lcm(a: int, b: int) -> int:
    import math

    return a * b // math.gcd(a, b)


# ------------------------------------------------------------------ analyzer


_Env = dict[str, Form]


class _Analyzer:
    """One flow-sensitive walk over an accumulate body, on the Form domain."""

    def __init__(self, lowered: LoweredReduction) -> None:
        self.low = lowered
        self.constants = {
            k: v
            for k, v in lowered.constants.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }
        self.record = True
        self.reachable = True
        self.accumulates: list[AccumulateEffect] = []
        self.index_forms: dict[tuple[int, int, int], list[Form]] = {}

    # -- expressions ---------------------------------------------------------

    def eval(self, expr: A.Expr, env: _Env) -> Form:
        site = self.low.sites.get(id(expr))
        if site is not None:
            for gi, group in enumerate(site.index_exprs):
                for dim, ie in enumerate(group):
                    f = self.eval(ie, env)
                    if self.record:
                        forms = self.index_forms.setdefault(
                            (id(expr), gi, dim), []
                        )
                        if f not in forms:
                            forms.append(f)
            return unknown(TOP, int_typed=_is_int_scalar(site.scalar))
        if isinstance(expr, A.IntLit):
            return const(expr.value)
        if isinstance(expr, A.RealLit):
            return const(float(expr.value))
        if isinstance(expr, A.BoolLit):
            return const(1 if expr.value else 0)
        if isinstance(expr, A.Ident):
            if expr.name in env:
                return env[expr.name]
            if expr.name in self.constants:
                return const(self.constants[expr.name])
            etype = self.low.extra_types.get(expr.name)
            return unknown(TOP, int_typed=_is_int_scalar(etype))
        if isinstance(expr, A.BinOp):
            if expr.op in _CMP_OPS or expr.op in ("&&", "||"):
                # Conditions are handled by _truth/narrowing; as a value
                # a comparison is just a boolean.
                self.eval(expr.left, env)
                self.eval(expr.right, env)
                return unknown(Bounds(0, 1), int_typed=True)
            left = self.eval(expr.left, env)
            right = self.eval(expr.right, env)
            if expr.op == "+":
                return f_add(left, right)
            if expr.op == "-":
                return f_sub(left, right)
            if expr.op == "*":
                return f_mul(left, right)
            if expr.op == "/":
                return f_div(left, right)
            if expr.op == "%":
                return f_mod(left, right)
            return unknown()
        if isinstance(expr, A.UnaryOp):
            operand = self.eval(expr.operand, env)
            if expr.op == "-":
                return f_neg(operand)
            return unknown(Bounds(0, 1), int_typed=True)  # logical not
        if isinstance(expr, A.Call):
            return self._call(expr, env)
        return unknown()

    def _call(self, expr: A.Call, env: _Env) -> Form:
        name = expr.name
        if name == "elemIdx":
            return ELEM
        args = [self.eval(a, env) for a in expr.args]
        if name in A.RO_INTRINSICS:
            return unknown()
        if name in ("min", "max") and len(args) == 2:
            return (f_min if name == "min" else f_max)(args[0], args[1])
        if name == "toInt" and len(args) == 1:
            return f_toint(args[0])
        if name == "floor" and len(args) == 1:
            return f_floor(args[0])
        if name == "abs" and len(args) == 1:
            return f_abs(args[0])
        if name == "sqrt" and args:
            # sqrt is monotone and non-negative on its domain
            return unknown(Bounds(0, None), int_typed=False)
        if name == "exp" and args:
            return unknown(Bounds(0, None), int_typed=False)
        return unknown(int_typed=False)

    # -- conditions ----------------------------------------------------------

    def _truth(self, cond: A.Expr, env: _Env) -> bool | None:
        """Three-valued static truth of a condition (over-approximate)."""
        if isinstance(cond, A.BoolLit):
            return cond.value
        if isinstance(cond, A.UnaryOp) and cond.op == "!":
            t = self._truth(cond.operand, env)
            return None if t is None else not t
        if not isinstance(cond, A.BinOp):
            return None
        if cond.op == "&&":
            lt = self._truth(cond.left, env)
            rt = self._truth(cond.right, env)
            if lt is False or rt is False:
                return False
            if lt is True and rt is True:
                return True
            return None
        if cond.op == "||":
            lt = self._truth(cond.left, env)
            rt = self._truth(cond.right, env)
            if lt is True or rt is True:
                return True
            if lt is False and rt is False:
                return False
            return None
        if cond.op not in _CMP_OPS:
            return None
        was_recording, self.record = self.record, False
        try:
            ia = self.eval(cond.left, env).eval(ELEM_RANGE)
            ib = self.eval(cond.right, env).eval(ELEM_RANGE)
        finally:
            self.record = was_recording
        return _cmp_truth(cond.op, ia, ib)

    def narrow(self, cond: A.Expr, truth: bool, env: _Env) -> _Env:
        """Refine ``env`` under ``cond == truth`` (new dict)."""
        env = dict(env)
        self._narrow_into(cond, truth, env)
        return env

    def _narrow_into(self, cond: A.Expr, truth: bool, env: _Env) -> None:
        if isinstance(cond, A.UnaryOp) and cond.op == "!":
            self._narrow_into(cond.operand, not truth, env)
            return
        if not isinstance(cond, A.BinOp):
            return
        if cond.op == "&&" and truth:
            self._narrow_into(cond.left, True, env)
            self._narrow_into(cond.right, True, env)
            return
        if cond.op == "||" and not truth:
            self._narrow_into(cond.left, False, env)
            self._narrow_into(cond.right, False, env)
            return
        if cond.op not in ("<", "<=", ">", ">=", "=="):
            return
        if isinstance(cond.left, A.Ident) and cond.left.name in env:
            self._narrow_var(cond.left.name, cond.op, cond.right, truth, env)
        if isinstance(cond.right, A.Ident) and cond.right.name in env:
            mirrored = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "=="}
            self._narrow_var(
                cond.right.name, mirrored[cond.op], cond.left, truth, env
            )

    def _narrow_var(
        self,
        name: str,
        op: str,
        bound_expr: A.Expr,
        truth: bool,
        env: _Env,
    ) -> None:
        was_recording, self.record = self.record, False
        try:
            bound_form = self.eval(bound_expr, env)
        finally:
            self.record = was_recording
        bound = bound_form.eval(ELEM_RANGE)
        form = env.get(name)
        if form is None:
            return
        if not truth:
            negated = {"<": ">=", "<=": ">", ">": "<=", ">=": "<"}
            if op == "==":  # != gives no refinement
                return
            op = negated[op]
        is_int = form.is_int and bound_form.is_int
        lo = hi = None
        if op == "<":
            hi = None if bound.hi is None else (
                bound.hi - 1 if is_int else bound.hi
            )
        elif op == "<=":
            hi = bound.hi
        elif op == ">":
            lo = None if bound.lo is None else (
                bound.lo + 1 if is_int else bound.lo
            )
        elif op == ">=":
            lo = bound.lo
        elif op == "==":
            lo, hi = bound.lo, bound.hi
        if lo is None and hi is None:
            return
        if form.kind == "unknown":
            env[name] = unknown(
                form.bounds.meet_lo(lo).meet_hi(hi), form.int_typed
            )
            return
        narrowed = f_clamp(form, lo, hi)
        if not bound_form.is_const and narrowed.eval(ELEM_RANGE).exact:
            # A clamp against a data-dependent bound over-approximates the
            # branch values but cannot claim its hull is fully achieved.
            iv = narrowed.eval(ELEM_RANGE)
            narrowed = unknown(replace(iv, exact=False), form.is_int)
        env[name] = narrowed

    # -- statements ----------------------------------------------------------

    def block(self, block: A.Block, env: _Env) -> _Env:
        for stmt in block.stmts:
            env = self.stmt(stmt, env)
        return env

    def stmt(self, stmt: A.Stmt, env: _Env) -> _Env:
        if isinstance(stmt, A.VarDeclStmt):
            decl = stmt.decl
            env = dict(env)
            if decl.init is not None:
                env[decl.name] = self.eval(decl.init, env)
            else:
                int_typed = (
                    isinstance(decl.type, A.NamedTypeExpr)
                    and decl.type.name == "int"
                )
                env[decl.name] = unknown(TOP, int_typed=int_typed)
            return env
        if isinstance(stmt, A.Assign):
            if not isinstance(stmt.target, A.Ident):
                return env  # array-element stores don't bind locals
            value = self.eval(stmt.value, env)
            if stmt.op is not None:
                cur = env.get(stmt.target.name, unknown())
                value = {
                    "+": f_add, "-": f_sub, "*": f_mul, "/": f_div,
                }.get(stmt.op, lambda _a, _b: unknown())(cur, value)
            env = dict(env)
            env[stmt.target.name] = value
            return env
        if isinstance(stmt, A.IfStmt):
            return self._if(stmt, env)
        if isinstance(stmt, A.ForStmt):
            return self._for(stmt, env)
        if isinstance(stmt, A.ExprStmt):
            expr = stmt.expr
            if (
                isinstance(expr, A.Call)
                and expr.name in A.RO_INTRINSICS
                and expr.args
            ):
                group = self.eval(expr.args[0], env)
                for a in expr.args[1:]:
                    self.eval(a, env)
                if self.record:
                    self.accumulates.append(
                        AccumulateEffect(
                            op=A.RO_INTRINSICS[expr.name],
                            group=group,
                            line=expr.line or 0,
                            col=expr.col or 0,
                            dead=not self.reachable,
                        )
                    )
            else:
                self.eval(expr, env)
            return env
        if isinstance(stmt, A.Block):  # pragma: no cover - not produced
            return self.block(stmt, env)
        return env  # ReturnStmt and friends: no bindings change

    def _if(self, stmt: A.IfStmt, env: _Env) -> _Env:
        self.eval(stmt.cond, env)  # record sites inside the condition
        truth = self._truth(stmt.cond, env)
        then_narrow = self.narrow(stmt.cond, True, env)
        else_narrow = self.narrow(stmt.cond, False, env)

        saved = self.reachable
        self.reachable = saved and truth is not False
        then_env = self.block(stmt.then, then_narrow)
        self.reachable = saved and truth is not True
        else_env = (
            self.block(stmt.orelse, else_narrow)
            if stmt.orelse is not None
            else else_narrow
        )
        self.reachable = saved

        if truth is True:
            return then_env
        if truth is False:
            return else_env
        cmp_var = _simple_cmp_var(stmt.cond)
        return self._join_envs(
            then_env, else_env,
            before=env, then_narrow=then_narrow, else_narrow=else_narrow,
            cmp_var=cmp_var,
        )

    def _for(self, stmt: A.ForStmt, env: _Env) -> _Env:
        lo = self.eval(stmt.range.lo, env).eval(ELEM_RANGE)
        hi = self.eval(stmt.range.hi, env).eval(ELEM_RANGE)
        loop_form = unknown(
            Bounds(
                lo.lo,
                hi.hi,
                exact=lo.exact and hi.exact,
                vars=lo.vars | hi.vars | {stmt.var},
            ),
            int_typed=True,
        )

        # Fixpoint over the body WITHOUT recording: intermediate
        # environments may be narrower than the loop invariant.
        recording, self.record = self.record, False
        cur = dict(env)
        converged = False
        for _ in range(_MAX_LOOP_ITERATIONS):
            inner = dict(cur)
            inner[stmt.var] = loop_form
            out = self.block(stmt.body, inner)
            out.pop(stmt.var, None)
            new = self._join_envs(cur, out)
            if new == cur:
                converged = True
                break
            cur = new
        if not converged:
            for name in set(cur) | set(env):
                if cur.get(name) != env.get(name):
                    cur[name] = unknown()
        self.record = recording

        # One final pass under the stable invariant records the effects.
        inner = dict(cur)
        inner[stmt.var] = loop_form
        out = self.block(stmt.body, inner)
        out.pop(stmt.var, None)
        return self._join_envs(cur, out)

    # -- joins ---------------------------------------------------------------

    def _join_envs(
        self,
        a: _Env,
        b: _Env,
        *,
        before: _Env | None = None,
        then_narrow: _Env | None = None,
        else_narrow: _Env | None = None,
        cmp_var: str | None = None,
    ) -> _Env:
        """Pointwise join; a variable bound on only one path is dropped."""
        out: _Env = {}
        for name in a.keys() & b.keys():
            fa, fb = a[name], b[name]
            if fa == fb:
                out[name] = fa
                continue
            if cmp_var == name and before is not None:
                moved = self._conditional_move(
                    name, fa, fb, before, then_narrow, else_narrow
                )
                if moved is not None:
                    out[name] = moved
                    continue
            out[name] = _collapse_join(fa, fb)
        return out

    @staticmethod
    def _conditional_move(
        name: str,
        then_form: Form,
        else_form: Form,
        before: _Env,
        then_narrow: _Env | None,
        else_narrow: _Env | None,
    ) -> Form | None:
        """Recognize ``if (v OP c) { v = <bound>; }`` as a clamp.

        Sound only because the condition is a *simple* comparison on
        ``v`` (checked by the caller): the branch that kept ``v`` holds
        its complement-narrowed clamp, and the branch that assigned holds
        exactly the clamp's bound, so the clamp alone describes both
        paths pointwise.
        """
        base = before.get(name)

        def matches(assigned: Form, kept: Form, kept_narrow: _Env | None) -> bool:
            return (
                assigned.is_const
                and kept_narrow is not None
                and kept == kept_narrow.get(name)
                and kept.kind == "clamp"
                and kept != base
                and (kept.lo == assigned.value or kept.hi == assigned.value)
            )

        if matches(then_form, else_form, else_narrow):
            return else_form
        if matches(else_form, then_form, then_narrow):
            return then_form
        return None


def _collapse_join(fa: Form, fb: Form) -> Form:
    """Fallback join: an unknown leaf covering both forms' value ranges."""
    int_typed = fa.is_int and fb.is_int
    if fa.kind == "unknown" and fb.kind == "unknown":
        return unknown(fa.bounds.join(fb.bounds), int_typed)
    return unknown(fa.eval(ELEM_RANGE).join(fb.eval(ELEM_RANGE)), int_typed)


def _cmp_truth(op: str, a: Bounds, b: Bounds) -> bool | None:
    """Static truth of ``a OP b`` from over-approximate intervals."""

    def lt(x: Bounds, y: Bounds, strict: bool) -> bool | None:
        # always x < y (or <=)?
        if x.hi is not None and y.lo is not None and (
            x.hi < y.lo if strict else x.hi <= y.lo
        ):
            return True
        # always NOT (x < y), i.e. x >= y (or x > y)?
        if x.lo is not None and y.hi is not None and (
            x.lo >= y.hi if strict else x.lo > y.hi
        ):
            return False
        return None

    if op == "<":
        return lt(a, b, strict=True)
    if op == "<=":
        return lt(a, b, strict=False)
    if op == ">":
        return lt(b, a, strict=True)
    if op == ">=":
        return lt(b, a, strict=False)
    disjoint = (
        a.hi is not None and b.lo is not None and a.hi < b.lo
    ) or (a.lo is not None and b.hi is not None and a.lo > b.hi)
    same_point = (
        a.is_point and b.is_point and a.lo == b.lo and a.exact and b.exact
    )
    if op == "==":
        if disjoint:
            return False
        if same_point:
            return True
        return None
    if op == "!=":
        if disjoint:
            return True
        if same_point:
            return False
        return None
    return None


def _simple_cmp_var(cond: A.Expr) -> str | None:
    """The variable name of a bare ``v OP expr`` comparison, else None."""
    while isinstance(cond, A.UnaryOp) and cond.op == "!":
        cond = cond.operand
    if not isinstance(cond, A.BinOp) or cond.op not in _CMP_OPS:
        return None
    if isinstance(cond.left, A.Ident) and not isinstance(cond.right, A.Ident):
        return cond.left.name
    if isinstance(cond.right, A.Ident) and not isinstance(cond.left, A.Ident):
        return cond.right.name
    return None


# --------------------------------------------------------------- entry point


_HUGE = 10**18


def analyze_effects(
    lowered: LoweredReduction, file: str | None = None
) -> EffectSummary:
    """Run the effect analysis over one lowered reduction."""
    analyzer = _Analyzer(lowered)
    analyzer.block(lowered.body, {})

    diags: list[Diagnostic] = []
    for eff in analyzer.accumulates:
        node = A.IntLit(0, line=eff.line, col=eff.col) if eff.line else None
        if eff.dead:
            diags.append(
                diag(
                    "RS101",
                    f"{eff.op} update is unreachable: its guarding "
                    "condition is statically false, so this accumulate "
                    "site is dead",
                    node=node,
                    file=file,
                    subject=lowered.name,
                )
            )
            continue
        iv = eff.group_bounds(ELEM_RANGE)
        if iv.definitely_outside(0, _HUGE):
            diags.append(
                diag(
                    "RS100",
                    f"group index of {eff.op} provably reaches "
                    f"{iv.lo:g}, outside the reduction object "
                    f"(summary {eff.group.describe()} spans {iv})",
                    node=node,
                    file=file,
                    subject=lowered.name,
                    hint="clamp the group index to [0, groups-1] before "
                    "the reduction-object update",
                )
            )
        elif not iv.bounded and not eff.group.is_affine_elem:
            diags.append(
                diag(
                    "RS102",
                    f"group index of {eff.op} is data-dependent and "
                    f"unbounded (summary {eff.group.describe()}); the "
                    "colored technique cannot apply to this reduction",
                    node=node,
                    file=file,
                    subject=lowered.name,
                    hint="clamp the group index (min/max or if-clamps) so "
                    "its range becomes a function of the constants",
                )
            )

    return EffectSummary(
        name=lowered.name,
        accumulates=tuple(analyzer.accumulates),
        index_forms={
            k: tuple(v) for k, v in analyzer.index_forms.items()
        },
        diagnostics=tuple(diags),
    )
