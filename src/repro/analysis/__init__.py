"""Reduction-safety analyzer for the Chapel-to-FREERIDE pipeline.

Static checks over mini-Chapel reduction classes, the lowered IR, and the
:class:`~repro.chapel.reduce_op.ReduceScanOp` registry:

* :mod:`~repro.analysis.diagnostics` — stable-coded :class:`Diagnostic`
  records (``RS001``…) with source spans and a compiler-style renderer;
* :mod:`~repro.analysis.races` — the forall race detector;
* :mod:`~repro.analysis.algebra` — associativity / commutativity /
  identity checks for reduce ops (seeded, deterministic);
* :mod:`~repro.analysis.affine` — the shared symbolic range engine
  (:class:`Bounds` intervals with exactness, affine :class:`Form` terms of
  the element index);
* :mod:`~repro.analysis.effects` — the unified effect analysis: one
  abstract interpretation of a lowered accumulate body yielding
  split-parametric access summaries (group footprints per element range,
  bounded-gather proofs, RS1xx diagnostics);
* :mod:`~repro.analysis.plancheck` — cross-checks compilation plans
  against ``computeIndex`` layout metadata;
* :mod:`~repro.analysis.driver` — file/directory front end used by
  ``python -m repro.analyze``.
"""

from repro.analysis.diagnostics import (
    CODES,
    DEFAULT_SEVERITIES,
    Diagnostic,
    DiagnosticBag,
    Severity,
    Span,
    diag,
    render_diagnostic,
    render_diagnostics,
    summarize,
)
from repro.analysis.intervals import Interval, eval_interval
from repro.analysis.affine import TOP, Bounds, Form
from repro.analysis.effects import (
    ELEM_RANGE,
    AccumulateEffect,
    EffectSummary,
    analyze_effects,
)
from repro.analysis.races import check_class_races, check_program_races
from repro.analysis.algebra import (
    TRIAL_SEED,
    check_reduce_op,
    check_registry,
)
from repro.analysis.plancheck import validate_plan
from repro.analysis.driver import (
    AnalysisReport,
    analyze_file,
    analyze_path,
    analyze_program,
    analyze_source,
    guess_constants,
    iter_chapel_sources,
)

__all__ = [
    "CODES",
    "DEFAULT_SEVERITIES",
    "Diagnostic",
    "DiagnosticBag",
    "Severity",
    "Span",
    "diag",
    "render_diagnostic",
    "render_diagnostics",
    "summarize",
    "Interval",
    "eval_interval",
    "TOP",
    "Bounds",
    "Form",
    "ELEM_RANGE",
    "AccumulateEffect",
    "EffectSummary",
    "analyze_effects",
    "check_class_races",
    "check_program_races",
    "TRIAL_SEED",
    "check_reduce_op",
    "check_registry",
    "validate_plan",
    "AnalysisReport",
    "analyze_file",
    "analyze_path",
    "analyze_program",
    "analyze_source",
    "guess_constants",
    "iter_chapel_sources",
]
