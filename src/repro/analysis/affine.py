"""Affine symbolic forms over the element index — the shared range engine.

Every static analysis in this repo ultimately asks the same question:
*what values can this index expression take?*  Before this module existed
there were three independent answers — the ``_Iv`` intervals in
``repro.compiler.groupbounds``, the boolean taint in
``repro.compiler.batch`` and the exactness intervals in
``repro.analysis.plancheck`` — each with its own blind spots.  This module
is the single abstract domain behind all of them (driven by the
interpreter in :mod:`repro.analysis.effects`).

Two layers:

:class:`Bounds`
    a numeric interval with *independently* optional endpoints (condition
    narrowing produces half-open intervals), an exactness bit (every value
    in the hull is achieved for some execution) and the variable set the
    value ranges over (repeated variables break exactness of a hull).

:class:`Form`
    a small symbolic expression over one distinguished symbol — the
    **element index** ``e`` — closed under ``+ - *``, real division,
    ``toInt``/``floor`` truncation, modulo and ``min``/``max`` clamping.
    A form is *split-parametric*: :meth:`Form.eval` maps any interval of
    element indices to the interval of values the expression takes over
    it, so a per-split footprint is one evaluation, not a re-analysis.
    Data-dependent subexpressions collapse to :data:`UNKNOWN` leaves that
    still carry whatever bounds clamps and comparisons have pinned down.

The clamp algebra is what fixes the historical one-sided-clamp widening:
``max(0, x)`` narrows to ``[0, +inf)`` and a later ``min(·, hi)`` composes
into an exact ``[0, hi]`` instead of widening straight to unbounded.
:meth:`Form.alignment` exposes the element-period of ``e // k`` and
``e % k`` shapes, which the runtime uses to align split boundaries so
colored waves stay conflict-free (see ``repro.freeride.splitter``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = [
    "Bounds",
    "Form",
    "TOP",
    "ELEM",
    "const",
    "unknown",
    "f_add",
    "f_sub",
    "f_mul",
    "f_neg",
    "f_div",
    "f_mod",
    "f_toint",
    "f_floor",
    "f_abs",
    "f_min",
    "f_max",
    "f_clamp",
]

_ELEM_VAR = "$e"


# ---------------------------------------------------------------------- Bounds


@dataclass(frozen=True)
class Bounds:
    """``[lo, hi]`` with optional endpoints, exactness and variable set."""

    lo: float | int | None
    hi: float | int | None
    exact: bool = False
    vars: frozenset[str] = field(default_factory=frozenset)

    @classmethod
    def point(cls, v: float | int) -> "Bounds":
        return cls(v, v, exact=True)

    @classmethod
    def top(cls) -> "Bounds":
        return cls(None, None, exact=False)

    @property
    def bounded(self) -> bool:
        return self.lo is not None and self.hi is not None

    @property
    def is_point(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def _exact_with(self, other: "Bounds") -> bool:
        # A hull of f(x) op g(y) is exact only when both operands are exact
        # and range over disjoint variables (independence).
        return self.exact and other.exact and not (self.vars & other.vars)

    def add(self, other: "Bounds") -> "Bounds":
        return Bounds(
            None if self.lo is None or other.lo is None else self.lo + other.lo,
            None if self.hi is None or other.hi is None else self.hi + other.hi,
            exact=self._exact_with(other),
            vars=self.vars | other.vars,
        )

    def sub(self, other: "Bounds") -> "Bounds":
        return self.add(other.neg())

    def neg(self) -> "Bounds":
        return Bounds(
            None if self.hi is None else -self.hi,
            None if self.lo is None else -self.lo,
            exact=self.exact,
            vars=self.vars,
        )

    def mul(self, other: "Bounds") -> "Bounds":
        if not (self.bounded and other.bounded):
            return Bounds(None, None, vars=self.vars | other.vars)
        products = [
            self.lo * other.lo, self.lo * other.hi,
            self.hi * other.lo, self.hi * other.hi,
        ]
        # Scaling by ±1 or 0 keeps every value achieved; any other factor
        # leaves holes, and a product of two proper ranges always does.
        one_point = self.is_point or other.is_point
        unit = (self.is_point and abs(self.lo) <= 1) or (
            other.is_point and abs(other.lo) <= 1
        )
        return Bounds(
            min(products),
            max(products),
            exact=one_point and unit and self._exact_with(other),
            vars=self.vars | other.vars,
        )

    def div_const(self, c: float | int) -> "Bounds":
        """Real division by a nonzero constant (exactness lost: holes)."""
        if c == 0:
            return Bounds.top()
        lo, hi = (self.lo, self.hi) if c > 0 else (self.hi, self.lo)
        return Bounds(
            None if lo is None else lo / c,
            None if hi is None else hi / c,
            exact=False,
            vars=self.vars,
        )

    def floordiv_const(self, c: int) -> "Bounds":
        """Floor division by a positive integer constant.

        Contiguity (hence exactness) is preserved: ``//`` maps a contiguous
        integer range onto a contiguous integer range.
        """
        if c <= 0:
            return Bounds.top()
        return Bounds(
            None if self.lo is None else math.floor(self.lo) // c,
            None if self.hi is None else math.floor(self.hi) // c,
            exact=self.exact,
            vars=self.vars,
        )

    def mod_const(self, c: int) -> "Bounds":
        """Python-semantics ``% c`` for a positive integer constant."""
        if c <= 0:
            return Bounds.top()
        if self.bounded:
            lo, hi = math.floor(self.lo), math.floor(self.hi)
            if hi - lo + 1 <= c and lo % c <= hi % c:
                # The range fits inside one modulus window: residues are the
                # same contiguous run, exactness preserved.
                return Bounds(lo % c, hi % c, exact=self.exact, vars=self.vars)
            # Wraps at least once: every residue is achieved iff the input
            # covers >= c consecutive integers exactly.
            return Bounds(
                0, c - 1, exact=self.exact and hi - lo + 1 >= c, vars=self.vars
            )
        return Bounds(0, c - 1, exact=False, vars=self.vars)

    def trunc(self, known_int: bool) -> "Bounds":
        """Truncation toward zero (``toInt``); monotone non-decreasing."""
        if known_int:
            return self
        return Bounds(
            None if self.lo is None else math.trunc(self.lo),
            None if self.hi is None else math.trunc(self.hi),
            exact=False,  # a real range need not hit every integer
            vars=self.vars,
        )

    def floor(self, known_int: bool) -> "Bounds":
        if known_int:
            return self
        return Bounds(
            None if self.lo is None else math.floor(self.lo),
            None if self.hi is None else math.floor(self.hi),
            exact=False,
            vars=self.vars,
        )

    def clamp_lo(self, bound: float | int | None) -> "Bounds":
        """Narrow to ``value >= bound``; clamping preserves exactness."""
        if bound is None:
            return self
        lo = bound if self.lo is None else max(self.lo, bound)
        hi = self.hi if self.hi is None else max(self.hi, bound)
        return Bounds(lo, hi, exact=self.exact, vars=self.vars)

    def clamp_hi(self, bound: float | int | None) -> "Bounds":
        if bound is None:
            return self
        hi = bound if self.hi is None else min(self.hi, bound)
        lo = self.lo if self.lo is None else min(self.lo, bound)
        return Bounds(lo, hi, exact=self.exact, vars=self.vars)

    def meet_lo(self, bound: float | int | None) -> "Bounds":
        """Condition narrowing ``value >= bound`` (no value is moved, so the
        upper end and exactness survive; an emptied interval stays empty)."""
        if bound is None:
            return self
        lo = bound if self.lo is None else max(self.lo, bound)
        return Bounds(lo, self.hi, exact=self.exact, vars=self.vars)

    def meet_hi(self, bound: float | int | None) -> "Bounds":
        if bound is None:
            return self
        hi = bound if self.hi is None else min(self.hi, bound)
        return Bounds(self.lo, hi, exact=self.exact, vars=self.vars)

    def join(self, other: "Bounds") -> "Bounds":
        """Lattice join (smallest interval containing both)."""
        return Bounds(
            None if self.lo is None or other.lo is None
            else min(self.lo, other.lo),
            None if self.hi is None or other.hi is None
            else max(self.hi, other.hi),
            exact=False,
            vars=self.vars | other.vars,
        )

    def min_with(self, other: "Bounds") -> "Bounds":
        lo = (
            None if self.lo is None or other.lo is None
            else min(self.lo, other.lo)
        )
        hi = (
            self.hi if other.hi is None
            else other.hi if self.hi is None
            else min(self.hi, other.hi)
        )
        return Bounds(lo, hi, exact=self._exact_with(other),
                      vars=self.vars | other.vars)

    def max_with(self, other: "Bounds") -> "Bounds":
        return self.neg().min_with(other.neg()).neg()

    def abs_(self) -> "Bounds":
        if not self.bounded:
            lo = 0 if (self.lo is None and self.hi is None) else None
            if self.lo is not None and self.lo >= 0:
                return self
            return Bounds(0 if self.hi is not None and self.hi >= 0 else lo,
                          None, exact=False, vars=self.vars)
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return self.neg()
        return Bounds(0, max(-self.lo, self.hi), exact=self.exact,
                      vars=self.vars)

    def definitely_outside(self, low: int, high: int) -> bool:
        """True when some *achieved* value falls outside ``[low, high]``.

        Requires exactness on the protruding side — on an inexact hull a
        protruding endpoint may never be achieved.
        """
        if not self.exact:
            return False
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            return False  # empty (dead path): touches nothing
        return (self.lo is not None and self.lo < low) or (
            self.hi is not None and self.hi > high
        )

    def contained_in(self, low: int, high: int) -> bool:
        """True when **every** possible value lies inside ``[low, high]``.

        Needs only boundedness, not exactness — an over-approximation that
        fits is a proof of containment.
        """
        return (
            self.lo is not None
            and self.hi is not None
            and self.lo >= low
            and self.hi <= high
        )

    def __str__(self) -> str:
        lo = "-inf" if self.lo is None else f"{self.lo:g}"
        hi = "+inf" if self.hi is None else f"{self.hi:g}"
        return f"[{lo}, {hi}]{'' if self.exact else '~'}"


TOP = Bounds.top()


# ------------------------------------------------------------------------ Form


@dataclass(frozen=True)
class Form:
    """A symbolic value: one node of the affine-form expression tree.

    ``kind`` is one of ``const``, ``elem``, ``unknown``, ``add``, ``mul``,
    ``neg``, ``div``, ``mod``, ``toint``, ``floor``, ``abs``, ``min``,
    ``max``, ``clamp``.  Leaves: ``const`` carries ``value``; ``unknown``
    carries ``bounds`` (whatever clamps/comparisons pinned down) and
    ``int_typed``; ``elem`` is the element index (int, >= 0).  ``clamp``
    carries constant ``lo``/``hi``; ``mod``/``div`` with a constant
    right-hand side carry it in ``value``.
    """

    kind: str
    operands: tuple["Form", ...] = ()
    value: float | int | None = None
    lo: float | int | None = None
    hi: float | int | None = None
    bounds: Bounds = TOP
    int_typed: bool = True

    # -- structure -----------------------------------------------------------

    @property
    def is_const(self) -> bool:
        return self.kind == "const"

    @property
    def is_int(self) -> bool:
        if self.kind == "const":
            return isinstance(self.value, int)
        if self.kind in ("elem", "toint", "floor", "mod"):
            return True
        if self.kind == "unknown":
            return self.int_typed
        if self.kind == "div":
            return False
        return all(op.is_int for op in self.operands)

    @property
    def depends_on_elem(self) -> bool:
        if self.kind == "elem":
            return True
        return any(op.depends_on_elem for op in self.operands)

    @property
    def is_affine_elem(self) -> bool:
        """Whether the form is built from ``e``, constants, clamps, ``//``
        and ``%`` — i.e. evaluates tightly over any split range."""
        if self.kind in ("const", "elem"):
            return True
        if self.kind == "unknown":
            return False
        return all(op.is_affine_elem for op in self.operands)

    # -- evaluation ----------------------------------------------------------

    def eval(self, elem: Bounds) -> Bounds:
        """Interval of values over the element-index interval ``elem``."""
        if self.kind == "const":
            return Bounds.point(self.value)
        if self.kind == "elem":
            if elem.is_point:
                return elem
            return replace(elem, vars=elem.vars | {_ELEM_VAR})
        if self.kind == "unknown":
            return self.bounds
        if self.kind == "add":
            return self.operands[0].eval(elem).add(self.operands[1].eval(elem))
        if self.kind == "mul":
            return self.operands[0].eval(elem).mul(self.operands[1].eval(elem))
        if self.kind == "neg":
            return self.operands[0].eval(elem).neg()
        if self.kind == "div":
            inner = self.operands[0].eval(elem)
            if self.value is not None:
                return inner.div_const(self.value)
            return Bounds(None, None, vars=inner.vars)
        if self.kind == "mod":
            return self.operands[0].eval(elem).mod_const(self.value)
        if self.kind in ("toint", "floor"):
            inner = self.operands[0]
            # toInt(x / c) and floor(x / c) over a non-negative integer
            # numerator are floor division: contiguity (exactness) survives.
            if (
                inner.kind == "div"
                and inner.value is not None
                and isinstance(inner.value, int)
                and inner.value > 0
                and inner.operands[0].is_int
            ):
                num = inner.operands[0].eval(elem)
                if self.kind == "floor" or (num.lo is not None and num.lo >= 0):
                    return num.floordiv_const(inner.value)
            iv = inner.eval(elem)
            return iv.trunc(inner.is_int) if self.kind == "toint" else iv.floor(
                inner.is_int
            )
        if self.kind == "abs":
            return self.operands[0].eval(elem).abs_()
        if self.kind == "min":
            return self.operands[0].eval(elem).min_with(
                self.operands[1].eval(elem)
            )
        if self.kind == "max":
            return self.operands[0].eval(elem).max_with(
                self.operands[1].eval(elem)
            )
        if self.kind == "clamp":
            return self.operands[0].eval(elem).clamp_lo(self.lo).clamp_hi(
                self.hi
            )
        raise AssertionError(f"unhandled form kind {self.kind!r}")

    # -- runtime hints -------------------------------------------------------

    def alignment(self) -> Optional[int]:
        """The element-period of the form, when it has one.

        ``e // k`` and ``e % k`` shapes (possibly clamped or shifted by a
        constant) change value only at multiples of ``k``; split boundaries
        aligned to ``k`` therefore keep per-split footprints disjoint.
        """
        if self.kind == "clamp":
            return self.operands[0].alignment()
        if self.kind in ("toint", "floor"):
            inner = self.operands[0]
            if (
                inner.kind == "div"
                and isinstance(inner.value, int)
                and inner.value > 0
                and inner.operands[0].kind == "elem"
            ):
                return inner.value
            return self.operands[0].alignment()
        if self.kind == "mod" and self.operands[0].kind == "elem":
            return self.value
        if self.kind == "add":
            a, b = self.operands
            if a.is_const and not a.depends_on_elem:
                return b.alignment()
            if b.is_const and not b.depends_on_elem:
                return a.alignment()
        if self.kind in ("min", "max"):
            a, b = self.operands
            if not a.depends_on_elem:
                return b.alignment()
            if not b.depends_on_elem:
                return a.alignment()
        return None

    # -- rendering -----------------------------------------------------------

    def describe(self) -> str:
        """Stable, human-readable rendering (diagnostics + fingerprints)."""
        k = self.kind
        if k == "const":
            return f"{self.value:g}" if isinstance(self.value, float) else str(
                self.value
            )
        if k == "elem":
            return "e"
        if k == "unknown":
            return f"?{self.bounds}"
        if k == "add":
            return f"({self.operands[0].describe()} + {self.operands[1].describe()})"
        if k == "mul":
            return f"({self.operands[0].describe()} * {self.operands[1].describe()})"
        if k == "neg":
            return f"(-{self.operands[0].describe()})"
        if k == "div":
            rhs = (
                f"{self.value:g}" if isinstance(self.value, float)
                else str(self.value)
            ) if self.value is not None else "?"
            return f"({self.operands[0].describe()} / {rhs})"
        if k == "mod":
            return f"({self.operands[0].describe()} % {self.value})"
        if k in ("toint", "floor", "abs"):
            return f"{k}({self.operands[0].describe()})"
        if k in ("min", "max"):
            return (
                f"{k}({self.operands[0].describe()}, "
                f"{self.operands[1].describe()})"
            )
        if k == "clamp":
            parts = [self.operands[0].describe()]
            if self.lo is not None:
                parts.append(f"lo={self.lo}")
            if self.hi is not None:
                parts.append(f"hi={self.hi}")
            return f"clamp({', '.join(parts)})"
        raise AssertionError(f"unhandled form kind {k!r}")

    def __str__(self) -> str:
        return self.describe()


ELEM = Form("elem")


def const(v: float | int) -> Form:
    return Form("const", value=v)


def unknown(bounds: Bounds = TOP, int_typed: bool = False) -> Form:
    return Form("unknown", bounds=bounds, int_typed=int_typed)


def _const_val(f: Form) -> float | int | None:
    return f.value if f.kind == "const" else None


# Smart constructors: fold constants, keep clamp chains flat, and collapse
# anything structurally dead to a leaf so forms stay small.


def f_add(a: Form, b: Form) -> Form:
    av, bv = _const_val(a), _const_val(b)
    if av is not None and bv is not None:
        return const(av + bv)
    if av == 0:
        return b
    if bv == 0:
        return a
    return Form("add", (a, b))


def f_sub(a: Form, b: Form) -> Form:
    return f_add(a, f_neg(b))


def f_neg(a: Form) -> Form:
    v = _const_val(a)
    if v is not None:
        return const(-v)
    if a.kind == "neg":
        return a.operands[0]
    return Form("neg", (a,))


def f_mul(a: Form, b: Form) -> Form:
    av, bv = _const_val(a), _const_val(b)
    if av is not None and bv is not None:
        return const(av * bv)
    if av == 1:
        return b
    if bv == 1:
        return a
    if av == 0 or bv == 0:
        return const(0)
    return Form("mul", (a, b))


def f_div(a: Form, b: Form) -> Form:
    av, bv = _const_val(a), _const_val(b)
    if bv is not None and bv != 0:
        if av is not None:
            return const(av / bv)
        return Form("div", (a,), value=bv)
    return Form("div", (a, b))


def f_mod(a: Form, b: Form) -> Form:
    av, bv = _const_val(a), _const_val(b)
    if isinstance(bv, int) and bv > 0:
        if isinstance(av, int):
            return const(av % bv)
        return Form("mod", (a,), value=bv)
    return unknown(int_typed=a.is_int and b.is_int)


def f_toint(a: Form) -> Form:
    v = _const_val(a)
    if v is not None:
        return const(math.trunc(v))
    if a.is_int:
        return a
    return Form("toint", (a,))


def f_floor(a: Form) -> Form:
    v = _const_val(a)
    if v is not None:
        return const(math.floor(v))
    if a.is_int:
        return a
    return Form("floor", (a,))


def f_abs(a: Form) -> Form:
    v = _const_val(a)
    if v is not None:
        return const(abs(v))
    return Form("abs", (a,))


def f_min(a: Form, b: Form) -> Form:
    av, bv = _const_val(a), _const_val(b)
    if av is not None and bv is not None:
        return const(min(av, bv))
    if bv is not None:
        return f_clamp(a, None, bv)
    if av is not None:
        return f_clamp(b, None, av)
    return Form("min", (a, b))


def f_max(a: Form, b: Form) -> Form:
    av, bv = _const_val(a), _const_val(b)
    if av is not None and bv is not None:
        return const(max(av, bv))
    if bv is not None:
        return f_clamp(a, bv, None)
    if av is not None:
        return f_clamp(b, av, None)
    return Form("max", (a, b))


def f_clamp(a: Form, lo: float | int | None, hi: float | int | None) -> Form:
    """``max(lo, min(a, hi))`` — clamp chains fold into one node, which is
    exactly the one-sided-clamp composition the old interval analysis lost:
    ``f_clamp(f_clamp(x, 0, None), None, 7)`` is one ``clamp(x, lo=0, hi=7)``.
    """
    if a.kind == "clamp":
        new_lo, new_hi = a.lo, a.hi
        if lo is not None:
            new_lo = lo if new_lo is None else max(new_lo, lo)
            if new_hi is not None:
                new_hi = max(new_hi, lo)  # outer max wins over inner hi
        if hi is not None:
            new_hi = hi if new_hi is None else min(new_hi, hi)
            if new_lo is not None:
                new_lo = min(new_lo, hi)
        return f_clamp(a.operands[0], new_lo, new_hi)
    v = _const_val(a)
    if v is not None:
        if lo is not None:
            v = max(v, lo)
        if hi is not None:
            v = min(v, hi)
        return const(v)
    if lo is None and hi is None:
        return a
    return Form("clamp", (a,), lo=lo, hi=hi)
