"""Reduce-op algebra checker: associativity, commutativity, identity.

The FREERIDE execution model is only correct when the reduction operation
is associative and commutative and its identity element is neutral — task
splits accumulate independently and combine in an order the middleware
chooses.  This module verifies every builtin and user-registered
:class:`~repro.chapel.reduce_op.ReduceScanOp` with

* **structural checks** — ``accumulate``/``combine`` overridden (RS015),
  ``clone()`` returning a fresh identity-state instance (RS014), and the
  identity element not being mutable state shared across clones (RS010);
* **deterministic property-based trials** — seeded input families (ints,
  floats, booleans, ``(value, index)`` pairs) are folded in different
  split shapes and orders; any observable difference is an associativity
  (RS011), commutativity (RS012) or identity (RS013) violation.

Floating-point reductions get special treatment: reassociation that only
moves the result by rounding noise is reported as the ``RS020`` *warning*
(parallel results are run-shape-dependent but numerically equivalent),
while differences beyond tolerance stay hard errors.

The delta executor adds a fourth property: **invertibility**.  An op with
a ``retract`` hook (``sum``, ``xor``, user ops registered with
``inverse=``) can undo an accumulated element directly, so retractions
cost O(|Δ|); :func:`check_invertibility` verifies the hook with seeded
``op(inv(op(a, x), x)) == a`` trials.  A verified hook reports RS034
(info), an op without one reports RS035 (info — deltas fall back to
per-group replay), a float hook that only recovers the state up to
rounding reports the RS036 *warning* (cancellation — the RS020 analogue),
and a hook that fails the trials outright is an RS037 error (and
:func:`~repro.chapel.reduce_op.register_reduce_op` refuses it).

All trials are seeded (:data:`TRIAL_SEED`); the checker is deterministic.
"""

from __future__ import annotations

import math
import random
from typing import Any, Iterable, Sequence

from repro.chapel.reduce_op import REDUCE_OPS, ReduceScanOp, supports_retract
from repro.analysis.diagnostics import Diagnostic, diag

__all__ = [
    "TRIAL_SEED",
    "check_invertibility",
    "check_reduce_op",
    "check_registry",
    "sample_family",
]

TRIAL_SEED = 0x5EED
_NUM_TRIALS = 8
_REL_TOL = 1e-6
_ABS_TOL = 1e-9

#: Deterministic input families, probed in order; the first one the op's
#: ``accumulate`` accepts is used for the trials.  Values are chosen to
#: exercise ties (duplicates), sign changes, non-dyadic floats (so float
#: reassociation visibly rounds), and index tie-breaking for loc ops.
_FAMILIES: dict[str, list[Any]] = {
    "int": [3, -1, 7, 0, 7, 2, -5, 11, 4, 3, -1, 6],
    "float": [0.1, 2.5, -1.75, 3.7, 0.2, -0.3, 1.1, 4.9, 0.1, -2.2, 5.3, 0.7],
    # NaN-bearing floats (dyadic otherwise, so only NaN handling — not
    # rounding — can distinguish fold orders): a min/max that compares
    # with a bare ``<`` keeps whichever side of the comparison NaN landed
    # on and silently becomes order-dependent.  NaN sits in the probe
    # prefix so ops that cannot digest it reject the family outright.
    "float_nan": [
        0.5,
        float("nan"),
        -1.75,
        2.5,
        0.25,
        float("nan"),
        3.5,
        -0.5,
        1.25,
        0.75,
    ],
    "pair": [
        (3.0, 4),
        (1.0, 7),
        (1.0, 2),
        (5.5, 1),
        (1.0, 9),
        (8.25, 3),
        (3.0, 0),
        (-2.0, 6),
        (-2.0, 5),
        (8.25, 8),
    ],
    "bool": [True, False, True, True, False, False, True, False, True, True],
}
_FAMILY_ORDER = ("int", "float", "float_nan", "pair", "bool")


def sample_family(cls: type[ReduceScanOp]) -> tuple[str, list[Any]] | None:
    """Pick the first input family the op's accumulate accepts."""
    fams = accepted_families(cls)
    if not fams:
        return None
    fam = fams[0]
    return fam, list(_FAMILIES[fam])


def accepted_families(cls: type[ReduceScanOp]) -> list[str]:
    """Every input family the op's accumulate/generate accepts."""
    out: list[str] = []
    for fam in _FAMILY_ORDER:
        xs = _FAMILIES[fam]
        try:
            op = cls()
            for x in xs[:4]:
                op.accumulate(x)
            op.generate()
        except Exception:
            continue
        out.append(fam)
    return out


def _values_close(a: Any, b: Any) -> tuple[bool, bool]:
    """Return (equal_exactly, equal_within_float_tolerance)."""
    if isinstance(a, tuple) and isinstance(b, tuple):
        if len(a) != len(b):
            return False, False
        exact, close = True, True
        for x, y in zip(a, b):
            e, c = _values_close(x, y)
            exact, close = exact and e, close and c
        return exact, close
    if isinstance(a, float) or isinstance(b, float):
        try:
            # two NaNs count as the same result: an op that produces NaN
            # under every fold order is order-independent, even though
            # ``nan == nan`` is False
            if math.isnan(a) and math.isnan(b):
                return True, True
            exact = a == b
            close = math.isclose(a, b, rel_tol=_REL_TOL, abs_tol=_ABS_TOL)
        except TypeError:
            return False, False
        return exact, close
    eq = a == b
    return eq, eq


def _fold(cls: type[ReduceScanOp], xs: Iterable[Any]) -> ReduceScanOp:
    op = cls()
    for x in xs:
        op.accumulate(x)
    return op


def _result(op: ReduceScanOp) -> Any:
    return op.generate()


def _shared_mutable_identity(cls: type[ReduceScanOp]) -> str | None:
    """Detect an identity that aliases mutable state across clones."""
    ident = getattr(cls, "identity", None)
    if isinstance(ident, (list, dict, set, bytearray)):
        return (
            f"class-level identity is a shared mutable "
            f"{type(ident).__name__} instance"
        )
    if callable(ident):
        try:
            a, b = ident(), ident()
        except Exception:
            return None
        if a is b and isinstance(a, (list, dict, set, bytearray)):
            return "identity() returns the same mutable object on every call"
    return None


def check_reduce_op(
    cls: type[ReduceScanOp], name: str | None = None
) -> list[Diagnostic]:
    """Run all algebra checks on one ReduceScanOp class."""
    label = name or cls.__name__
    diags: list[Diagnostic] = []

    # -- structural -----------------------------------------------------------
    missing = [
        m
        for m in ("accumulate", "combine")
        if getattr(cls, m, None) is getattr(ReduceScanOp, m)
    ]
    if missing:
        diags.append(
            diag(
                "RS015",
                f"reduction {label!r} does not override {' and '.join(missing)}",
                subject=label,
                hint="a ReduceScanOp must implement both the local "
                "(accumulate) and global (combine) reduction functions",
            )
        )
        return diags  # trials would only raise NotImplementedError

    reason = _shared_mutable_identity(cls)
    if reason is not None:
        diags.append(
            diag(
                "RS010",
                f"reduction {label!r}: {reason}; every clone() aliases the "
                "same accumulator state across tasks",
                subject=label,
                hint="use a zero-argument callable building a fresh value, "
                "e.g. identity = list",
            )
        )
        return diags  # trials over aliased state would double-report

    families = accepted_families(cls)
    if not families:
        diags.append(
            diag(
                "RS001",
                f"reduction {label!r}: no sample input family accepted; "
                "algebra trials skipped",
                subject=label,
            )
        )
        return diags
    xs = list(_FAMILIES[families[0]])

    # -- clone freshness -------------------------------------------------------
    try:
        seeded = _fold(cls, xs[:3])
        clone = seeded.clone()
        fresh_result = _result(cls())
        exact, close = _values_close(_result(clone), fresh_result)
        if not close:
            diags.append(
                diag(
                    "RS014",
                    f"reduction {label!r}: clone() of a non-empty accumulator "
                    f"yields {_result(clone)!r}, expected the identity state "
                    f"{fresh_result!r}",
                    subject=label,
                    hint="clone() must return a new accumulator at the "
                    "identity, not a copy of the current state",
                )
            )
    except Exception as exc:  # structural failure surfaces as RS014 too
        diags.append(
            diag(
                "RS014",
                f"reduction {label!r}: clone() raised {exc!r}",
                subject=label,
            )
        )
        return diags

    # -- seeded trials ---------------------------------------------------------
    rng = random.Random(TRIAL_SEED)
    float_noise = False
    seen_codes: set[str] = set()
    for family in families:
        for _trial in range(_NUM_TRIALS):
            pool = list(_FAMILIES[family])
            rng.shuffle(pool)
            cut1 = rng.randrange(1, len(pool) - 1)
            cut2 = rng.randrange(cut1 + 1, len(pool))
            a, b, c = pool[:cut1], pool[cut1:cut2], pool[cut2:]
            outcomes = (
                _associativity_trial(cls, label, a, b, c),
                _commutativity_trial(cls, label, a, b),
                _identity_trial(cls, label, a),
            )
            for out in outcomes:
                if out is None:
                    continue
                kind, d = out
                if kind == "error":
                    if d.code not in seen_codes:
                        seen_codes.add(d.code)
                        diags.append(d)
                else:
                    float_noise = True
        if seen_codes:
            break  # one family's hard violations are enough

    if float_noise and not any(d.is_error for d in diags):
        diags.append(
            diag(
                "RS020",
                f"reduction {label!r} over floats: combine order changes the "
                "result by rounding noise; parallel runs are numerically "
                "equivalent but bit-for-bit nondeterministic",
                subject=label,
                hint="expected for floating-point + / *; pin num_tasks for "
                "bit-exact reproducibility",
            )
        )
    return diags


def _verdict(
    code: str, label: str, lhs: Any, rhs: Any, what: str, hint: str
) -> tuple[str, Diagnostic] | None:
    exact, close = _values_close(lhs, rhs)
    if exact:
        return None
    if close:
        return ("noise", diag("RS020", "", subject=label))  # marker only
    return (
        "error",
        diag(
            code,
            f"reduction {label!r} is not {what}: {lhs!r} != {rhs!r} on a "
            f"seeded trial (seed {TRIAL_SEED:#x})",
            subject=label,
            hint=hint,
        ),
    )


def _associativity_trial(
    cls: type[ReduceScanOp],
    label: str,
    a: Sequence[Any],
    b: Sequence[Any],
    c: Sequence[Any],
) -> tuple[str, Diagnostic] | None:
    left = _fold(cls, a)
    left.combine(_fold(cls, b))
    left.combine(_fold(cls, c))  # (A . B) . C
    bc = _fold(cls, b)
    bc.combine(_fold(cls, c))
    right = _fold(cls, a)
    right.combine(bc)  # A . (B . C)
    return _verdict(
        "RS011",
        label,
        _result(left),
        _result(right),
        "associative",
        "FREERIDE may combine task states in any grouping; the global "
        "reduction must not depend on it",
    )


def _commutativity_trial(
    cls: type[ReduceScanOp], label: str, a: Sequence[Any], b: Sequence[Any]
) -> tuple[str, Diagnostic] | None:
    ab = _fold(cls, a)
    ab.combine(_fold(cls, b))
    ba = _fold(cls, b)
    ba.combine(_fold(cls, a))
    return _verdict(
        "RS012",
        label,
        _result(ab),
        _result(ba),
        "commutative",
        "task states may merge in any order (e.g. all_to_one vs. "
        "parallel_merge); ties must break on a total order",
    )


def _identity_trial(
    cls: type[ReduceScanOp], label: str, a: Sequence[Any]
) -> tuple[str, Diagnostic] | None:
    seeded = _fold(cls, a)
    expect = _result(_fold(cls, a))
    seeded.combine(cls())  # fold in an identity-state task (empty split)
    out = _verdict(
        "RS013",
        label,
        _result(seeded),
        expect,
        "identity-preserving",
        "combining with a fresh (empty-split) task state must be a no-op",
    )
    if out is not None:
        return out
    fresh = cls()
    fresh.combine(_fold(cls, a))  # left identity
    return _verdict(
        "RS013",
        label,
        _result(fresh),
        expect,
        "identity-preserving",
        "an empty task state combined with a full one must equal the full one",
    )


def check_invertibility(
    cls: type[ReduceScanOp], name: str | None = None
) -> list[Diagnostic]:
    """Learn whether a reduce op can retract elements (delta execution).

    Seeded trials fold a random prefix ``a``, accumulate one more element
    ``x``, retract it, and require the state to return to ``fold(a)`` —
    i.e. ``op(inv(op(a, x), x)) == a`` — plus a batch round-trip
    (accumulate a suffix, retract it element-wise).  Verdicts:

    * no ``retract`` hook → ``RS035`` (info): deltas replay per group;
    * hook verified exactly → ``RS034`` (info): direct O(|Δ|) retract;
    * hook exact only up to float tolerance → ``RS034`` + ``RS036``
      (warning): cancellation can leave rounding residue, bit-identity
      needs exactly representable data;
    * hook wrong beyond tolerance (or raising) → ``RS037`` (error).
    """
    label = name or cls.__name__
    if not supports_retract(cls):
        return [
            diag(
                "RS035",
                f"reduction {label!r} has no retract hook; delta retractions "
                "fall back to per-group re-reduction",
                subject=label,
                hint="pass inverse=(state, x) -> state to register_reduce_op "
                "if the op is algebraically invertible",
            )
        ]
    # NaN data is excluded: no hook can undo a NaN absorption
    # (``x + nan - nan`` is ``nan``, not ``x``), so NaN-bearing trials
    # would condemn every float inverse.  Retracting NaN-poisoned state
    # falls back to replay regardless of the hook's verdict here.
    families = [f for f in accepted_families(cls) if f != "float_nan"]
    if not families:
        return [
            diag(
                "RS001",
                f"reduction {label!r}: no sample input family accepted; "
                "invertibility trials skipped",
                subject=label,
            )
        ]
    rng = random.Random(TRIAL_SEED)
    float_noise = False
    for family in families:
        for _trial in range(_NUM_TRIALS):
            pool = list(_FAMILIES[family])
            rng.shuffle(pool)
            cut = rng.randrange(1, len(pool))
            prefix, suffix = pool[:cut], pool[cut:]
            expect = _result(_fold(cls, prefix))
            # single-element round trip: op(inv(op(a, x), x)) == a
            single = _fold(cls, prefix)
            single.accumulate(suffix[0])
            # batch round trip: retract the whole suffix element-wise
            batch = _fold(cls, pool)
            try:
                single.retract(suffix[0])
                for x in reversed(suffix):
                    batch.retract(x)
            except Exception as exc:
                return [
                    diag(
                        "RS037",
                        f"reduction {label!r}: retract raised {exc!r} on a "
                        f"seeded trial (seed {TRIAL_SEED:#x})",
                        subject=label,
                    )
                ]
            for got in (_result(single), _result(batch)):
                exact, close = _values_close(got, expect)
                if exact:
                    continue
                if close:
                    float_noise = True
                    continue
                return [
                    diag(
                        "RS037",
                        f"reduction {label!r}: op(inv(op(a, x), x)) yields "
                        f"{got!r}, expected {expect!r} on a seeded trial "
                        f"(seed {TRIAL_SEED:#x}); the inverse hook does not "
                        "undo accumulate",
                        subject=label,
                        hint="the hook must satisfy inverse(op_state_after_x, "
                        "x) == op_state_before_x for every reachable state",
                    )
                ]
    diags = [
        diag(
            "RS034",
            f"reduction {label!r}: retract hook verified over seeded trials; "
            "delta retractions run in O(|delta|)",
            subject=label,
        )
    ]
    if float_noise:
        diags.append(
            diag(
                "RS036",
                f"reduction {label!r} over floats: retracting an element "
                "recovers the prior state only up to rounding (catastrophic "
                "cancellation is possible); delta runs are numerically but "
                "not bit-for-bit equal to a cold re-run",
                subject=label,
                hint="use exactly representable (integer/dyadic) inputs, or "
                "re-run from a checkpoint when bit-exactness matters",
            )
        )
    return diags


def check_registry(
    ops: dict[str, type[ReduceScanOp]] | None = None,
) -> list[Diagnostic]:
    """Check every (de-aliased) op in the registry (builtin + registered)."""
    ops = REDUCE_OPS if ops is None else ops
    by_cls: dict[type[ReduceScanOp], list[str]] = {}
    for name, cls in ops.items():
        by_cls.setdefault(cls, []).append(name)
    diags: list[Diagnostic] = []
    for cls, names in by_cls.items():
        label = f"{cls.__name__} ({', '.join(sorted(names))})"
        diags.extend(check_reduce_op(cls, name=label))
    return diags
