"""Analysis driver: run every check over sources, files and directories.

Entry points, from narrow to wide:

* :func:`analyze_program` — parsed :class:`~repro.chapel.ast.Program`:
  race-checks every reduction class and, for each class that lowers,
  validates the compilation plan at every optimization level;
* :func:`analyze_source` — mini-Chapel source text (parse + the above);
* :func:`analyze_file` — a ``.chpl``/``.chapel`` file, or a ``.py`` file
  whose mini-Chapel programs are embedded as string literals (the repo's
  apps and examples style) — embedded diagnostics are re-homed to host
  file/line;
* :func:`analyze_path` — a file or a directory tree, returning an
  :class:`AnalysisReport`.

Scalar class fields (``k``, ``dim``…) must be compile-time constants to
lower; when the caller supplies none, :func:`guess_constants` fills in
small representative values so plan validation can still run.
"""

from __future__ import annotations

import ast as pyast
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.chapel import ast as A
from repro.chapel.parser import parse_program
from repro.compiler.lower import lower_reduction
from repro.compiler.passes import plan_compilation
from repro.util.errors import ChapelSyntaxError, ReproError
from repro.analysis.diagnostics import Diagnostic, DiagnosticBag, Span, diag
from repro.analysis.plancheck import validate_plan
from repro.analysis.races import check_program_races, uses_ro_intrinsics

__all__ = [
    "AnalysisReport",
    "analyze_program",
    "analyze_source",
    "analyze_file",
    "analyze_path",
    "guess_constants",
    "iter_chapel_sources",
]

#: Representative values for scalar class fields when no constants given.
_GUESS_VALUES = {"int": 2, "real": 1.5, "bool": True}

#: Extensions treated as raw mini-Chapel source.
CHAPEL_SUFFIXES = (".chpl", ".chapel")


def guess_constants(cls: A.ClassDecl) -> dict[str, Any]:
    """Small representative values for the class's scalar fields.

    Lowering requires every scalar field (``k``, ``dim``, ``bins``…) as a
    compile-time constant.  For analysis we only need *plausible* values —
    domain shapes scale with them but the checked invariants do not.
    """
    out: dict[str, Any] = {}
    for f in cls.fields:
        if isinstance(f.type, A.NamedTypeExpr) and f.type.name in _GUESS_VALUES:
            out[f.name] = _GUESS_VALUES[f.type.name]
    return out


def analyze_program(
    program: A.Program,
    constants: dict[str, Any] | None = None,
    class_name: str | None = None,
    file: str | None = None,
    effects: bool = False,
) -> list[Diagnostic]:
    """Run race detection and plan validation over one parsed program.

    With ``effects=True``, additionally runs the symbolic effect analysis
    (:func:`repro.analysis.effects.analyze_effects`) per class and reports
    its RS1xx diagnostics — provably out-of-bounds group indices (RS100),
    dead accumulate sites (RS101), non-affine unbounded group indices
    (RS102).
    """
    diags: list[Diagnostic] = []
    for cls in program.classes:
        if class_name is not None and cls.name != class_name:
            continue
        cls_diags = list(check_program_races(program, cls.name, file=file))
        if not uses_ro_intrinsics(cls):
            # Figure-2 interpreter style: never fed to the compiler, so
            # there is no plan to validate.
            diags.extend(cls_diags)
            continue
        consts = dict(guess_constants(cls))
        if constants:
            consts.update(constants)
        has_errors = any(d.is_error for d in cls_diags)
        # The bounds walk is plan-independent; dedupe identical findings
        # reported by validate_plan at several optimization levels.
        seen: set[tuple[str, int, int, str]] = set()
        try:
            if effects:
                from repro.analysis.effects import analyze_effects

                lowered = lower_reduction(program, consts, cls.name)
                for d in analyze_effects(lowered, file=file).diagnostics:
                    key = (d.code, d.span.line, d.span.col, d.message)
                    if key not in seen:
                        seen.add(key)
                        cls_diags.append(d)
            for level in (0, 1, 2):
                lowered = lower_reduction(program, consts, cls.name)
                plan = plan_compilation(lowered, level)
                for d in validate_plan(lowered, plan, file=file):
                    key = (d.code, d.span.line, d.span.col, d.message)
                    if key in seen:
                        continue
                    seen.add(key)
                    cls_diags.append(d)
        except ReproError as exc:
            # A class the compiler rejects outright: only worth a warning
            # when the race detector did not already explain why.
            if not has_errors:
                cls_diags.append(
                    diag(
                        "RS001",
                        f"class {cls.name!r} could not be lowered or planned: "
                        f"{exc}",
                        node=cls,
                        file=file,
                        subject=cls.name,
                    )
                )
        diags.extend(cls_diags)
    return diags


def analyze_source(
    source: str,
    file: str | None = None,
    constants: dict[str, Any] | None = None,
    class_name: str | None = None,
    effects: bool = False,
) -> list[Diagnostic]:
    """Parse mini-Chapel source text and analyze it."""
    try:
        program = parse_program(source)
    except ChapelSyntaxError as exc:
        d = diag("RS000", str(exc), file=file)
        return [
            replace(d, span=Span(exc.line, exc.column, file))
        ]
    return analyze_program(
        program, constants, class_name, file=file, effects=effects
    )


def iter_chapel_sources(py_source: str) -> Iterator[tuple[int, str]]:
    """Embedded mini-Chapel programs in a Python file's string literals.

    Yields ``(line_offset, chapel_source)`` for every string literal that
    mentions ``ReduceScanOp`` or ``class`` + ``accumulate`` and parses as a
    mini-Chapel program with at least one class.  ``line_offset`` maps the
    literal's internal line 1 to its host line (``host = offset + line``).
    """
    try:
        tree = pyast.parse(py_source)
    except SyntaxError:
        return
    for node in pyast.walk(tree):
        if not (isinstance(node, pyast.Constant) and isinstance(node.value, str)):
            continue
        text = node.value
        if "accumulate" not in text or "class" not in text:
            continue
        try:
            program = parse_program(text)
        except ReproError:
            continue
        if not program.classes:
            continue
        # A triple-quoted literal's first source line is the line of the
        # opening quotes; the literal text itself starts with a newline,
        # so internal line n sits on host line node.lineno + n - 1.
        yield node.lineno - 1, text


def analyze_file(
    path: str | Path,
    constants: dict[str, Any] | None = None,
    effects: bool = False,
) -> list[Diagnostic]:
    """Analyze one file (raw mini-Chapel, or Python with embedded sources)."""
    path = Path(path)
    text = path.read_text()
    if path.suffix in CHAPEL_SUFFIXES:
        return analyze_source(
            text, file=str(path), constants=constants, effects=effects
        )
    diags: list[Diagnostic] = []
    for line_offset, chapel_src in iter_chapel_sources(text):
        for d in analyze_source(chapel_src, constants=constants, effects=effects):
            diags.append(d.in_file(str(path), line_offset))
    return diags


@dataclass
class AnalysisReport:
    """Everything :func:`analyze_path` found, plus the sources for rendering."""

    diagnostics: DiagnosticBag = field(default_factory=DiagnosticBag)
    files_scanned: int = 0
    files_with_findings: int = 0
    #: file -> source text (for the renderer's source-line excerpts)
    sources: dict[str, str] = field(default_factory=dict)

    @property
    def has_errors(self) -> bool:
        return self.diagnostics.has_errors


def _iter_files(path: Path) -> Iterable[Path]:
    if path.is_file():
        yield path
        return
    for sub in sorted(path.rglob("*")):
        if sub.is_file() and sub.suffix in CHAPEL_SUFFIXES + (".py",):
            yield sub


def analyze_path(
    path: str | Path,
    constants: dict[str, Any] | None = None,
    effects: bool = False,
) -> AnalysisReport:
    """Analyze a file or every analyzable file under a directory."""
    root = Path(path)
    report = AnalysisReport()
    for f in _iter_files(root):
        try:
            found = analyze_file(f, constants=constants, effects=effects)
        except (OSError, UnicodeDecodeError):
            continue
        report.files_scanned += 1
        if found:
            report.files_with_findings += 1
            report.diagnostics.extend(found)
            try:
                report.sources[str(f)] = f.read_text()
            except (OSError, UnicodeDecodeError):  # pragma: no cover
                pass
    return report
