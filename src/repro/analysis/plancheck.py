"""Plan validator: cross-check optimization plans against layout metadata.

The opt-1/opt-2 passes annotate access sites with hoists and linearization
modes; the code generator then trusts those annotations.  This validator
re-derives the invariants independently from the lowered IR
(:class:`repro.compiler.lower.AccessSite`, the :class:`MappingInfo` layout
metadata) and the mini-Chapel AST:

``RS030``
    an index expression's achieved range provably exceeds the level's
    domain — ``computeIndex`` would address outside the linearized buffer
    at run time (bounds must be *exact* to fire; see
    :mod:`repro.analysis.affine`);
``RS031``
    a strength-reduced hoist whose site is not actually contiguous
    (non-zero trailing offset) or whose hoist loop does not drive the
    innermost index;
``RS032``
    an incremental hoist whose per-iteration byte step disagrees with the
    layout's ``unitSize`` at the varying level;
``RS033``
    plan/IR inconsistencies: sites without a plan, data sites left nested,
    or extras left nested at opt-2;
``RS007``
    (info) a data-dependent index the validator cannot bound statically.
"""

from __future__ import annotations

from repro.chapel import ast as A
from repro.compiler.lower import AccessSite, LoweredReduction
from repro.compiler.passes import CompilationPlan, LoopHoist
from repro.analysis.diagnostics import Diagnostic, diag
from repro.analysis.effects import ELEM_RANGE, analyze_effects

__all__ = ["validate_plan"]


def _site_wrapped(site: AccessSite) -> bool:
    """Whether the site's MappingInfo carries a synthetic leading level."""
    info = site.info
    assert info is not None
    return info.levels == len(site.index_exprs) + 1


def _check_site_bounds(
    lowered: LoweredReduction, file: str | None
) -> list[Diagnostic]:
    """RS030/RS007 for every access-site index, via the effect analysis.

    One flow-sensitive abstract interpretation
    (:func:`repro.analysis.effects.analyze_effects`) records a symbolic
    form per index occurrence; each form is evaluated over the full
    element range and compared against ``computeIndex``'s layout metadata.
    Unreached occurrences (statically dead branches) record no form and
    are skipped — dead code addresses nothing.
    """
    diags: list[Diagnostic] = []
    summary = analyze_effects(lowered, file=file)
    reported_rs007: set[int] = set()
    for sid, site in lowered.sites.items():
        info = site.info
        if info is None or not site.index_exprs:
            continue
        offset = 1 if _site_wrapped(site) else 0
        for gi, group in enumerate(site.index_exprs):
            level = gi + offset
            if level >= len(info.domains):  # pragma: no cover - lower invariant
                continue
            domain = info.domains[level]
            for dim, ie in enumerate(group):
                if dim >= domain.rank:  # pragma: no cover - lower invariant
                    continue
                rng = domain.ranges[dim]
                iv = summary.index_bounds(sid, gi, dim, ELEM_RANGE)
                if iv is None:
                    continue
                if iv.definitely_outside(rng.low, rng.high):
                    diags.append(
                        diag(
                            "RS030",
                            f"index {ie} of {site.kind} access {site.expr} "
                            f"spans {iv} but the level domain is "
                            f"[{rng.low}..{rng.high}]: computeIndex would "
                            "address outside the linearized buffer",
                            node=ie if (ie.line or ie.col) else site.expr,
                            file=file,
                            subject=lowered.name,
                            hint="clamp or rescale the index to the "
                            "declared domain",
                        )
                    )
                elif (
                    iv.lo is None
                    and iv.hi is None
                    and sid not in reported_rs007
                ):
                    reported_rs007.add(sid)
                    diags.append(
                        diag(
                            "RS007",
                            f"index {ie} of {site.kind} access {site.expr} "
                            "is data-dependent; bounds cannot be verified "
                            "statically",
                            node=ie if (ie.line or ie.col) else site.expr,
                            file=file,
                            subject=lowered.name,
                        )
                    )
    return diags


def _loop_vars(loop: A.ForStmt) -> set[str]:
    """The loop's variable plus every nested loop variable."""
    out = {loop.var}
    stack: list[A.Stmt] = list(loop.body.stmts)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, A.ForStmt):
            out.add(stmt.var)
            stack.extend(stmt.body.stmts)
        elif isinstance(stmt, A.IfStmt):
            stack.extend(stmt.then.stmts)
            if stmt.orelse is not None:
                stack.extend(stmt.orelse.stmts)
        elif isinstance(stmt, A.Block):
            stack.extend(stmt.stmts)
    return out


def _check_hoist(
    lowered: LoweredReduction,
    hoist: LoopHoist,
    file: str | None,
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    site = hoist.site
    info = site.info
    assert info is not None
    if info.trailing_offset != 0:
        diags.append(
            diag(
                "RS031",
                f"hoisted access {site.expr} has a trailing member offset of "
                f"{info.trailing_offset} bytes: its innermost scalars are not "
                "contiguous, so the hoisted row view reads the wrong fields",
                node=site.expr,
                file=file,
                subject=lowered.name,
            )
        )
    last = site.index_exprs[-1] if site.index_exprs else ()
    # The row base is emitted just before hoist.loop; the innermost index
    # must be a bare loop variable bound by that loop or one nested in it
    # (LICM may have climbed the hoist outward past invariant loops).
    drives = (
        len(last) == 1
        and isinstance(last[0], A.Ident)
        and last[0].name in _loop_vars(hoist.loop)
    )
    if not drives:
        diags.append(
            diag(
                "RS031",
                f"hoist for {site.expr} is placed on loop "
                f"{hoist.loop.var!r}, which does not drive the innermost "
                "index of the access",
                node=site.expr,
                file=file,
                subject=lowered.name,
            )
        )
    if hoist.incremental is not None:
        offset = 1 if _site_wrapped(site) else 0
        level = hoist.var_group + offset
        if not (0 <= level < len(info.unit_size)):
            diags.append(
                diag(
                    "RS032",
                    f"incremental hoist for {site.expr} varies level "
                    f"{hoist.var_group}, outside the access's "
                    f"{info.levels} layout levels",
                    node=site.expr,
                    file=file,
                    subject=lowered.name,
                )
            )
        elif hoist.step_bytes != info.unit_size[level]:
            diags.append(
                diag(
                    "RS032",
                    f"incremental hoist for {site.expr} steps "
                    f"{hoist.step_bytes} bytes per iteration of "
                    f"{hoist.incremental.var!r} but the layout unit size at "
                    f"that level is {info.unit_size[level]} bytes",
                    node=site.expr,
                    file=file,
                    subject=lowered.name,
                )
            )
    return diags


def validate_plan(
    lowered: LoweredReduction,
    plan: CompilationPlan,
    file: str | None = None,
    backend: str = "scalar",
) -> list[Diagnostic]:
    """Validate one compilation plan against the lowered reduction.

    ``backend`` may be ``"scalar"`` or ``"batch"``.  Plans are
    backend-independent — the batch backend consumes the very same
    ``SitePlan``/``LoopHoist`` decisions (as strided lane views instead of
    per-element reads) — so both values run the identical checks; the
    parameter exists so callers can validate the pair they are about to
    execute and so future batch-only invariants have a home.
    """
    if backend not in ("scalar", "batch"):
        raise ValueError(
            f"backend must be 'scalar' or 'batch', got {backend!r}"
        )
    diags: list[Diagnostic] = []

    # 1. Index bounds against computeIndex's layout metadata (all levels).
    diags.extend(_check_site_bounds(lowered, file))

    # 2. Plan completeness and mode consistency.
    unplanned = set(lowered.sites) - set(plan.site_plans)
    if unplanned:
        exprs = ", ".join(
            str(lowered.sites[i].expr) for i in sorted(unplanned)
        )
        diags.append(
            diag(
                "RS033",
                f"{len(unplanned)} access site(s) have no plan entry: {exprs}",
                file=file,
                subject=lowered.name,
            )
        )
    for sp in plan.site_plans.values():
        if sp.site.kind == "data" and sp.mode == "nested":
            diags.append(
                diag(
                    "RS033",
                    f"data access {sp.site.expr} planned as 'nested': data "
                    "always lives in the linearized buffer",
                    node=sp.site.expr,
                    file=file,
                    subject=lowered.name,
                )
            )
        if plan.opt_level >= 2 and sp.site.kind == "extra" and sp.mode == "nested":
            diags.append(
                diag(
                    "RS033",
                    f"extra access {sp.site.expr} left 'nested' at opt-2: "
                    "opt-2 linearizes every structured class field",
                    node=sp.site.expr,
                    file=file,
                    subject=lowered.name,
                )
            )

    # 3. Hoist invariants (opt-1's strength reduction, incremental form).
    for hoists in plan.loop_hoists.values():
        for h in hoists:
            diags.extend(_check_hoist(lowered, h, file))
    for hoists in plan.incremental_hoists.values():
        for h in hoists:
            diags.extend(_check_hoist(lowered, h, file))

    return diags
