"""Forall race detector over mini-Chapel reduction-class ASTs.

The translated forall executes ``accumulate`` concurrently, one call per
input element, with *class fields* shared across all tasks (they become
read-only extras buffers in the FREERIDE kernel) and all cross-iteration
state required to flow through the explicit reduction object.  This module
walks accumulate/combine/generate bodies and flags everything that breaks
that contract:

``RS002``
    a write to a shared class field that bypasses the reduction object —
    lost updates / torn writes once the forall runs in parallel;
``RS003``
    the write additionally *reads* the shared field (``sum = sum + x``):
    a loop-carried scalar dependence the reduction object must carry;
``RS004``
    a Figure-2-style accumulator class (no RO intrinsics, per-task field
    state) whose ``combine`` never reads the other instance — per-task
    state is silently discarded by the global reduction;
``RS005`` / ``RS006``
    aliasing hazards: the accumulate parameter sharing a name with a class
    field makes the lowered access ambiguous between the linearized input
    buffer and an extras buffer (``RS005``, error); a local merely
    shadowing one is ``RS006`` (warning);
``RS008``
    a write through the accumulate parameter — mutating the shared
    linearized input buffer.

Classes are classified by whether any method uses the ``roAdd``/``roMin``/
``roMax`` intrinsics.  With intrinsics (the compiled style), fields are
shared and read-only; without (the paper's Figure 2 interpreter style),
fields are per-task accumulator state and field writes are the intended
idiom — only the combine contract is checked.
"""

from __future__ import annotations

from repro.chapel import ast as A
from repro.analysis.diagnostics import Diagnostic, diag

__all__ = ["check_program_races", "check_class_races", "uses_ro_intrinsics"]


def _walk_stmts(block: A.Block):
    """Yield every statement in a block, recursively."""
    for stmt in block.stmts:
        yield stmt
        if isinstance(stmt, A.ForStmt):
            yield from _walk_stmts(stmt.body)
        elif isinstance(stmt, A.IfStmt):
            yield from _walk_stmts(stmt.then)
            if stmt.orelse is not None:
                yield from _walk_stmts(stmt.orelse)
        elif isinstance(stmt, A.Block):
            yield from _walk_stmts(stmt)


def _walk_exprs(expr: A.Expr):
    yield expr
    if isinstance(expr, A.BinOp):
        yield from _walk_exprs(expr.left)
        yield from _walk_exprs(expr.right)
    elif isinstance(expr, A.UnaryOp):
        yield from _walk_exprs(expr.operand)
    elif isinstance(expr, A.Index):
        yield from _walk_exprs(expr.base)
        for i in expr.indices:
            yield from _walk_exprs(i)
    elif isinstance(expr, A.Member):
        yield from _walk_exprs(expr.base)
    elif isinstance(expr, A.Call):
        for a in expr.args:
            yield from _walk_exprs(a)


def _stmt_exprs(stmt: A.Stmt, include_assign_target: bool = False):
    """Expressions read by one statement (not recursing into sub-blocks)."""
    if isinstance(stmt, A.VarDeclStmt):
        if stmt.decl.init is not None:
            yield stmt.decl.init
    elif isinstance(stmt, A.Assign):
        yield stmt.value
        if include_assign_target:
            yield stmt.target
        else:
            # target *index* expressions are reads even when the root is not
            root, chain = _chain_root(stmt.target)
            for node in chain:
                if isinstance(node, A.Index):
                    yield from node.indices
    elif isinstance(stmt, A.ForStmt):
        yield stmt.range.lo
        yield stmt.range.hi
    elif isinstance(stmt, A.IfStmt):
        yield stmt.cond
    elif isinstance(stmt, A.ExprStmt):
        yield stmt.expr
    elif isinstance(stmt, A.ReturnStmt):
        if stmt.value is not None:
            yield stmt.value


def _chain_root(expr: A.Expr) -> tuple[A.Expr, list[A.Expr]]:
    chain: list[A.Expr] = []
    cur = expr
    while isinstance(cur, (A.Index, A.Member)):
        chain.append(cur)
        cur = cur.base
    chain.reverse()
    return cur, chain


def uses_ro_intrinsics(cls: A.ClassDecl) -> bool:
    """Whether any method calls ``roAdd``/``roMin``/``roMax``.

    This separates the two reduction-class styles: the *compiled* style
    (explicit reduction object; fields are shared read-only extras) from
    the paper's Figure-2 *interpreter* style (fields are per-task
    accumulator state; never fed to the compiler).
    """
    for method in cls.methods:
        for stmt in _walk_stmts(method.body):
            for top in _stmt_exprs(stmt, include_assign_target=True):
                for e in _walk_exprs(top):
                    if isinstance(e, A.Call) and e.name in A.RO_INTRINSICS:
                        return True
    return False


def _names_read(body: A.Block, skip_assign_targets: bool = True) -> set[str]:
    """Root identifier names read anywhere in a body."""
    out: set[str] = set()
    for stmt in _walk_stmts(body):
        for top in _stmt_exprs(stmt, include_assign_target=False):
            for e in _walk_exprs(top):
                if isinstance(e, A.Ident):
                    out.add(e.name)
        if not skip_assign_targets and isinstance(stmt, A.Assign):
            root, _ = _chain_root(stmt.target)
            if isinstance(root, A.Ident):
                out.add(root.name)
    return out


def check_class_races(
    cls: A.ClassDecl, file: str | None = None
) -> list[Diagnostic]:
    """Run the race checks on one reduction class."""
    diags: list[Diagnostic] = []
    fields = {f.name for f in cls.fields}
    uses_ro = uses_ro_intrinsics(cls)

    acc = cls.method("accumulate")
    if acc is None or len(acc.params) != 1:
        return diags  # not a reduction class shape; the compiler rejects it
    param = acc.params[0].name

    if param in fields:
        diags.append(
            diag(
                "RS005",
                f"accumulate parameter {param!r} has the same name as a class "
                "field: accesses are ambiguous between the linearized input "
                "buffer and the extras buffer",
                node=acc,
                file=file,
                subject=cls.name,
                hint="rename the parameter or the field",
            )
        )

    reads = _names_read(acc.body)
    fields_written: set[str] = set()

    for stmt in _walk_stmts(acc.body):
        if isinstance(stmt, (A.VarDeclStmt, A.ForStmt)):
            local = stmt.decl.name if isinstance(stmt, A.VarDeclStmt) else stmt.var
            if local in fields or local == param:
                kind = "class field" if local in fields else "data parameter"
                diags.append(
                    diag(
                        "RS006",
                        f"local {local!r} shadows the {kind} of the same name",
                        node=stmt,
                        file=file,
                        subject=cls.name,
                        hint="rename the local to keep access roots unambiguous",
                    )
                )
        if not isinstance(stmt, A.Assign):
            continue
        root, _chain = _chain_root(stmt.target)
        if not isinstance(root, A.Ident):
            continue
        name = root.name
        if name == param:
            diags.append(
                diag(
                    "RS008",
                    f"accumulate writes through its parameter {param!r}: the "
                    "input element lives in the shared linearized buffer and "
                    "must stay read-only",
                    node=stmt,
                    file=file,
                    subject=cls.name,
                    hint="copy the element into a local before modifying it",
                )
            )
        elif name in fields:
            if uses_ro:
                carried = name in reads or stmt.op is not None
                if carried:
                    diags.append(
                        diag(
                            "RS003",
                            f"field {name!r} is read and written in the forall "
                            "body: the value carried between iterations is "
                            "lost when iterations run on different tasks",
                            node=stmt,
                            file=file,
                            subject=cls.name,
                            hint="carry the running value through the "
                            "reduction object (roAdd/roMin/roMax)",
                        )
                    )
                else:
                    diags.append(
                        diag(
                            "RS002",
                            f"write to shared class field {name!r} bypasses "
                            "the reduction object: concurrent forall "
                            "iterations race on it",
                            node=stmt,
                            file=file,
                            subject=cls.name,
                            hint="fold per-element updates through "
                            "roAdd/roMin/roMax",
                        )
                    )
            else:
                fields_written.add(name)

    # Figure-2-style accumulator: per-task field state must be merged.
    if not uses_ro and fields_written:
        comb = cls.method("combine")
        if comb is None or len(comb.params) != 1:
            diags.append(
                diag(
                    "RS004",
                    f"accumulate updates per-task fields "
                    f"({', '.join(sorted(fields_written))}) but the class has "
                    "no combine(other) to merge task states",
                    node=cls,
                    file=file,
                    subject=cls.name,
                    hint="add a combine that folds other's fields into self",
                )
            )
        else:
            other = comb.params[0].name
            mentions_other = other in _names_read(comb.body)
            if not mentions_other:
                for stmt in _walk_stmts(comb.body):
                    for top in _stmt_exprs(stmt, include_assign_target=True):
                        for e in _walk_exprs(top):
                            if isinstance(e, A.Ident) and e.name == other:
                                mentions_other = True
            if not mentions_other:
                diags.append(
                    diag(
                        "RS004",
                        f"combine never reads {other!r}: every task's "
                        f"accumulated state ({', '.join(sorted(fields_written))}) "
                        "is discarded by the global reduction",
                        node=comb,
                        file=file,
                        subject=cls.name,
                        hint="merge other's fields into self inside combine",
                    )
                )

    return diags


def check_program_races(
    program: A.Program, class_name: str | None = None, file: str | None = None
) -> list[Diagnostic]:
    """Race-check every reduction class (or one, by name) in a program."""
    diags: list[Diagnostic] = []
    for cls in program.classes:
        if class_name is not None and cls.name != class_name:
            continue
        diags.extend(check_class_races(cls, file=file))
    return diags
