"""Exactness-tracking integer interval arithmetic for bounds checking.

The plan validator evaluates index expressions to intervals over the
compile-time constants and the enclosing loop ranges.  To report an
out-of-bounds access as an *error* (not a maybe), the interval must be
**exact**: every integer in ``[lo, hi]`` is actually taken by the
expression for some iteration.  Affine combinations of distinct loop
variables and constants are exact; anything involving an unknown name,
a repeated variable (``d - d``), or real division degrades to inexact or
unknown — those sites get at most an informational diagnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.chapel import ast as A

__all__ = ["Interval", "eval_interval"]


@dataclass(frozen=True)
class Interval:
    """``[lo, hi]`` with ``None`` bounds meaning unknown/unbounded.

    ``exact`` promises every integer in the hull is achieved; ``vars`` are
    the loop-variable names the value ranges over (used to detect repeated
    variables, which break exactness of the hull).
    """

    lo: int | None
    hi: int | None
    exact: bool = False
    vars: frozenset[str] = field(default_factory=frozenset)

    @classmethod
    def point(cls, v: int) -> "Interval":
        return cls(v, v, exact=True)

    @classmethod
    def unknown(cls) -> "Interval":
        return cls(None, None, exact=False)

    @property
    def is_known(self) -> bool:
        return self.lo is not None and self.hi is not None

    def _combine_exact(self, other: "Interval") -> bool:
        # A hull of f(x) op g(y) is exact only when both operands are exact
        # and range over disjoint variables (independence).
        return self.exact and other.exact and not (self.vars & other.vars)

    def __add__(self, other: "Interval") -> "Interval":
        if not (self.is_known and other.is_known):
            return Interval.unknown()
        return Interval(
            self.lo + other.lo,  # type: ignore[operator]
            self.hi + other.hi,  # type: ignore[operator]
            exact=self._combine_exact(other),
            vars=self.vars | other.vars,
        )

    def __sub__(self, other: "Interval") -> "Interval":
        if not (self.is_known and other.is_known):
            return Interval.unknown()
        return Interval(
            self.lo - other.hi,  # type: ignore[operator]
            self.hi - other.lo,  # type: ignore[operator]
            exact=self._combine_exact(other),
            vars=self.vars | other.vars,
        )

    def __neg__(self) -> "Interval":
        if not self.is_known:
            return Interval.unknown()
        return Interval(-self.hi, -self.lo, exact=self.exact, vars=self.vars)  # type: ignore[operator]

    def __mul__(self, other: "Interval") -> "Interval":
        if not (self.is_known and other.is_known):
            return Interval.unknown()
        products = [
            self.lo * other.lo,  # type: ignore[operator]
            self.lo * other.hi,  # type: ignore[operator]
            self.hi * other.lo,  # type: ignore[operator]
            self.hi * other.hi,  # type: ignore[operator]
        ]
        # The hull is exact only when one side is a single point (affine
        # scaling of an exact range keeps endpoints achieved; a true
        # product of two ranges has holes).
        one_point = (self.lo == self.hi) or (other.lo == other.hi)
        return Interval(
            min(products),
            max(products),
            exact=one_point and self._combine_exact(other),
            vars=self.vars | other.vars,
        )

    def floordiv_const(self, c: int) -> "Interval":
        """Division by a positive integer constant (contiguity preserved)."""
        if not self.is_known or c <= 0:
            return Interval.unknown()
        return Interval(
            self.lo // c, self.hi // c, exact=self.exact, vars=self.vars  # type: ignore[operator]
        )

    def hull(self, other: "Interval") -> "Interval":
        """Union hull of two intervals (used for range expressions)."""
        if not (self.is_known and other.is_known):
            return Interval.unknown()
        return Interval(
            min(self.lo, other.lo),  # type: ignore[type-var]
            max(self.hi, other.hi),  # type: ignore[type-var]
            exact=False,
            vars=self.vars | other.vars,
        )

    def definitely_outside(self, low: int, high: int) -> bool:
        """True when some achieved value falls outside ``[low, high]``.

        Requires exactness: on an inexact hull a protruding endpoint may
        never be achieved, so the answer is "unknown", not "yes".
        """
        if not (self.exact and self.is_known):
            return False
        return self.lo < low or self.hi > high  # type: ignore[operator]


def eval_interval(
    expr: A.Expr,
    env: Mapping[str, Interval],
    constants: Mapping[str, Any] | None = None,
) -> Interval:
    """Abstract-evaluate a mini-Chapel expression to an Interval.

    ``env`` maps loop variables (and anything else known) to intervals;
    ``constants`` supplies compile-time scalar values.
    """
    constants = constants or {}
    if isinstance(expr, A.IntLit):
        return Interval.point(expr.value)
    if isinstance(expr, A.BoolLit):
        return Interval.point(int(expr.value))
    if isinstance(expr, A.RealLit):
        return Interval.unknown()
    if isinstance(expr, A.Ident):
        if expr.name in env:
            iv = env[expr.name]
            # tag with the variable name so repeated uses break exactness
            if iv.lo != iv.hi:
                return Interval(
                    iv.lo, iv.hi, exact=iv.exact, vars=iv.vars | {expr.name}
                )
            return iv
        v = constants.get(expr.name)
        if isinstance(v, int) and not isinstance(v, bool):
            return Interval.point(v)
        return Interval.unknown()
    if isinstance(expr, A.UnaryOp):
        inner = eval_interval(expr.operand, env, constants)
        return -inner if expr.op == "-" else Interval.unknown()
    if isinstance(expr, A.BinOp):
        left = eval_interval(expr.left, env, constants)
        right = eval_interval(expr.right, env, constants)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            if right.is_known and right.lo == right.hi and right.lo > 0:  # type: ignore[operator]
                return left.floordiv_const(right.lo)  # type: ignore[arg-type]
            return Interval.unknown()
        return Interval.unknown()
    # Index/Member/Call values are data-dependent.
    return Interval.unknown()
