"""Simulated multicore machine: operation counters, cost model, scheduler.

This substrate substitutes for the paper's 8-core Xeon E5345 testbed (see
DESIGN.md §2): instrumented kernels count abstract operations, the cost
model prices them in cycles, and the simulated machine schedules chunked
work over threads to produce deterministic wall-clock estimates whose
*shapes* reproduce the paper's figures.
"""

from repro.machine.costmodel import XEON_E5345, CostModel
from repro.machine.counters import OpCounters
from repro.machine.simmachine import (
    ClusterCombinePhase,
    CombinePhase,
    NetworkModel,
    OverlapPhase,
    ParallelPhase,
    Phase,
    PhaseResult,
    SequentialPhase,
    SimMachine,
    SimReport,
    lock_contention_factor,
)

__all__ = [
    "OpCounters",
    "CostModel",
    "XEON_E5345",
    "SimMachine",
    "SimReport",
    "Phase",
    "PhaseResult",
    "ParallelPhase",
    "SequentialPhase",
    "CombinePhase",
    "OverlapPhase",
    "NetworkModel",
    "ClusterCombinePhase",
    "lock_contention_factor",
]
