"""Abstract operation counters.

The repro band for this paper marks its absolute performance numbers as
unreproducible (C vs Python, 2007-era Xeon vs anything current), so the
benchmarks reproduce *shapes* through a cost model.  The honest way to do
that is to **count real operations while executing real kernels** and price
the counts, rather than hardcode per-version formulas.  ``OpCounters`` is the
ledger every instrumented kernel writes into.

The categories mirror the paper's §V overhead discussion:

* ``nested_reads``/``nested_writes`` — accesses through complex Chapel
  structures ("frequent accesses through a complex data structure cause
  significant overheads"; removed by opt-2);
* ``index_calls``/``index_levels`` — ``computeIndex`` invocations and the
  per-level work inside them (hoisted by opt-1's strength reduction);
* ``linear_reads``/``linear_writes`` — accesses to linearized dense buffers;
* ``bytes_linearized`` — the copy work of Algorithm 2 (sequential; the
  paper's noted scalability limit for opt-2);
* plus generic flops, reduction-object updates, lock acquisitions and merge
  work.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["OpCounters"]


@dataclass
class OpCounters:
    """Counts of abstract operations performed by a kernel."""

    flops: float = 0.0
    linear_reads: float = 0.0
    linear_writes: float = 0.0
    #: number of accesses through un-linearized Chapel structures
    nested_reads: float = 0.0
    #: total chain steps across those accesses (a flat array read is 1 step;
    #: ``centroids[c].coord[d]`` is 3) — deep chains are what hurt
    nested_steps: float = 0.0
    nested_writes: float = 0.0
    index_calls: float = 0.0
    index_levels: float = 0.0
    ro_updates: float = 0.0
    lock_acquisitions: float = 0.0
    bytes_linearized: float = 0.0
    merge_elements: float = 0.0
    elements_processed: float = 0.0

    def add(self, other: "OpCounters") -> "OpCounters":
        """In-place accumulate; returns self."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def scaled(self, factor: float) -> "OpCounters":
        """A copy with every count multiplied by ``factor``.

        Used to extrapolate per-element counts measured on a sample to the
        full (paper-scale) workload.
        """
        out = OpCounters()
        for f in fields(self):
            setattr(out, f.name, getattr(self, f.name) * factor)
        return out

    def per_element(self) -> "OpCounters":
        """Counts normalized per processed element."""
        if self.elements_processed <= 0:
            raise ValueError("no elements processed; cannot normalize")
        return self.scaled(1.0 / self.elements_processed)

    def total_ops(self) -> float:
        """Sum of all counters except ``elements_processed`` (debug aid)."""
        return sum(
            getattr(self, f.name)
            for f in fields(self)
            if f.name != "elements_processed"
        )

    def copy(self) -> "OpCounters":
        return self.scaled(1.0)

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}
