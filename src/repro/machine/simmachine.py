"""A deterministic simulated multicore machine.

Executes *phase descriptions* — not code — against per-thread clocks, which
is how the benchmarks turn counted work into the paper's thread-scaling
curves.  The machine models exactly the effects the paper's §V discusses:

* the **local reduction** phase is a set of chunks scheduled dynamically
  (Phoenix-style work queue) or statically onto ``num_threads`` threads;
  makespan = the latest thread, so skewed chunk costs produce the load
  imbalance the paper sees for PCA at 8 threads;
* **linearization** is a sequential phase (the paper: "linearization is done
  sequentially.  This points to the need for performing linearization in
  parallel ..."), so its share of runtime grows with threads;
* **combination** phases pay per-merge costs on a critical path of
  ``p - 1`` (all-to-one) or ``ceil(log2 p)`` (parallel merge) rounds.

The simulator is deterministic: identical phases and thread counts always
produce identical times.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.machine.costmodel import CostModel
from repro.util.errors import MachineError
from repro.util.validation import check_one_of, check_positive_int

__all__ = [
    "ParallelPhase",
    "SequentialPhase",
    "CombinePhase",
    "OverlapPhase",
    "NetworkModel",
    "ClusterCombinePhase",
    "Phase",
    "PhaseResult",
    "SimReport",
    "SimMachine",
    "lock_contention_factor",
]


@dataclass(frozen=True)
class ParallelPhase:
    """Chunked work scheduled across threads.

    ``chunk_costs`` are cycles per chunk.  ``scheduling`` may override the
    machine default for this phase.
    """

    name: str
    chunk_costs: tuple[float, ...]
    scheduling: str | None = None

    def __post_init__(self) -> None:
        if any(c < 0 for c in self.chunk_costs):
            raise MachineError(f"phase {self.name}: negative chunk cost")


@dataclass(frozen=True)
class SequentialPhase:
    """Work performed by a single thread while the others wait."""

    name: str
    cost_cycles: float

    def __post_init__(self) -> None:
        if self.cost_cycles < 0:
            raise MachineError(f"phase {self.name}: negative cost")


@dataclass(frozen=True)
class CombinePhase:
    """Merging ``num_copies`` reduction-object copies of ``elements`` cells.

    ``strategy``: ``"all_to_one"``, ``"parallel_merge"``, or ``"auto"``
    (parallel merge when the object is at least ``auto_threshold_elements``).
    """

    name: str
    num_copies: int
    elements: int
    cycles_per_element: float
    strategy: str = "auto"
    auto_threshold_elements: int = 8192

    def __post_init__(self) -> None:
        check_one_of(self.strategy, ("auto", "all_to_one", "parallel_merge"), "strategy")
        if self.num_copies < 1 or self.elements < 0:
            raise MachineError(f"phase {self.name}: invalid copies/elements")

    def resolved_strategy(self) -> str:
        if self.strategy != "auto":
            return self.strategy
        return (
            "parallel_merge"
            if self.elements >= self.auto_threshold_elements
            else "all_to_one"
        )

    def critical_path_cycles(self, num_threads: int) -> float:
        """Cycles on the critical path of the merge schedule."""
        if self.num_copies <= 1:
            return 0.0
        merge_cost = self.elements * self.cycles_per_element
        if self.resolved_strategy() == "all_to_one":
            return (self.num_copies - 1) * merge_cost
        # Parallel merge: each round halves the copies; merges within a
        # round run concurrently as far as threads allow.
        copies = self.num_copies
        total = 0.0
        while copies > 1:
            merges = copies // 2
            waves = math.ceil(merges / max(1, num_threads))
            total += waves * merge_cost
            copies = copies - merges
        return total


@dataclass(frozen=True)
class OverlapPhase:
    """Sequential work pipelined with chunked parallel work.

    Models the paper's proposed "pipelining strategy ... overlapping
    linearization with processing of data": one thread streams the
    sequential work (linearizing ahead of the consumers) while the
    remaining ``p - 1`` threads process chunks; once the sequential stream
    finishes, all ``p`` threads process.  With one thread there is nothing
    to overlap with and the phase degenerates to the plain sum.
    """

    name: str
    sequential_cycles: float
    chunk_costs: tuple[float, ...]
    scheduling: str | None = None

    def __post_init__(self) -> None:
        if self.sequential_cycles < 0 or any(c < 0 for c in self.chunk_costs):
            raise MachineError(f"phase {self.name}: negative cost")

    def makespan_cycles(self, num_threads: int) -> float:
        total_parallel = sum(self.chunk_costs)
        if num_threads <= 1:
            return self.sequential_cycles + total_parallel
        seq = self.sequential_cycles
        # Phase A: p-1 workers while the producer streams.
        workers = num_threads - 1
        capacity_during_seq = seq * workers
        if capacity_during_seq >= total_parallel:
            # consumers finish under the producer's shadow; the producer
            # bounds the phase (consumers can't outrun the data, but the
            # work fits regardless)
            return max(seq, total_parallel / workers)
        # Phase B: remaining work on all p threads after the producer ends.
        remaining = total_parallel - capacity_during_seq
        return seq + remaining / num_threads


@dataclass(frozen=True)
class NetworkModel:
    """Cluster interconnect: per-message latency plus bandwidth.

    Defaults model the gigabit Ethernet of the paper's era.
    """

    latency_s: float = 50e-6
    bandwidth_bytes_per_s: float = 125e6  # 1 Gb/s

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.bandwidth_bytes_per_s <= 0:
            raise MachineError("invalid network parameters")

    def transfer_seconds(self, nbytes: float) -> float:
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class ClusterCombinePhase:
    """Global combination across nodes (paper §III-A).

    "The global combination phase can be achieved by a simple all-to-one
    reduce algorithm.  If the size of the reduction object is large, both
    local and global combination phases perform a parallel merge."

    Each merge step ships one reduction-object copy over the network and
    folds it in; ``all_to_one`` serializes ``n - 1`` steps at the root,
    ``parallel_merge`` pipelines them over ``ceil(log2 n)`` tree rounds.
    """

    name: str
    num_nodes: int
    ro_elements: int
    ro_bytes: int
    cycles_per_element: float
    strategy: str = "auto"
    network: NetworkModel = NetworkModel()
    auto_threshold_bytes: int = 64 * 1024

    def __post_init__(self) -> None:
        check_one_of(self.strategy, ("auto", "all_to_one", "parallel_merge"), "strategy")
        if self.num_nodes < 1 or self.ro_elements < 0 or self.ro_bytes < 0:
            raise MachineError(f"phase {self.name}: invalid configuration")

    def resolved_strategy(self) -> str:
        if self.strategy != "auto":
            return self.strategy
        return (
            "parallel_merge"
            if self.ro_bytes >= self.auto_threshold_bytes
            else "all_to_one"
        )

    def critical_path_seconds(self, clock_hz: float) -> float:
        if self.num_nodes <= 1:
            return 0.0
        step = (
            self.network.transfer_seconds(self.ro_bytes)
            + self.ro_elements * self.cycles_per_element / clock_hz
        )
        if self.resolved_strategy() == "all_to_one":
            return (self.num_nodes - 1) * step
        rounds = math.ceil(math.log2(self.num_nodes))
        return rounds * step


Phase = (
    ParallelPhase
    | SequentialPhase
    | CombinePhase
    | OverlapPhase
    | ClusterCombinePhase
)


@dataclass
class PhaseResult:
    """Simulated outcome of one phase."""

    name: str
    seconds: float
    kind: str
    thread_busy_seconds: list[float] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        """Busy fraction across threads during this phase (1.0 = perfect)."""
        if not self.thread_busy_seconds or self.seconds == 0:
            return 1.0
        p = len(self.thread_busy_seconds)
        return sum(self.thread_busy_seconds) / (p * self.seconds)


@dataclass
class SimReport:
    """Full simulated run: per-phase and total times."""

    num_threads: int
    phases: list[PhaseResult]

    @property
    def total_seconds(self) -> float:
        return sum(p.seconds for p in self.phases)

    def phase_seconds(self, name: str) -> float:
        return sum(p.seconds for p in self.phases if p.name == name)

    def as_dict(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for p in self.phases:
            out[p.name] = out.get(p.name, 0.0) + p.seconds
        out["total"] = self.total_seconds
        return out


class SimMachine:
    """Prices phase lists into wall-clock seconds on the modeled machine."""

    def __init__(
        self,
        cost_model: CostModel,
        num_threads: int = 1,
        scheduling: str = "dynamic",
    ) -> None:
        self.cost_model = cost_model
        self.num_threads = check_positive_int(num_threads, "num_threads")
        self.scheduling = check_one_of(
            scheduling, ("dynamic", "static"), "scheduling"
        )

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, costs: Sequence[float], scheduling: str) -> list[float]:
        """Assign chunks to threads; returns per-thread busy cycles."""
        busy = [0.0] * self.num_threads
        if scheduling == "static":
            for i, c in enumerate(costs):
                busy[i % self.num_threads] += c
            return busy
        # Dynamic: a work queue in chunk order; the next chunk goes to the
        # thread that frees up first (deterministic tie-break by thread id).
        heap = [(0.0, t) for t in range(self.num_threads)]
        heapq.heapify(heap)
        for c in costs:
            clock, t = heapq.heappop(heap)
            busy[t] += c
            heapq.heappush(heap, (clock + c, t))
        return busy

    # -- simulation ----------------------------------------------------------

    def run(self, phases: Sequence[Phase]) -> SimReport:
        """Simulate a run as a barrier-separated sequence of phases."""
        hz = self.cost_model.clock_hz
        results: list[PhaseResult] = []
        for phase in phases:
            if isinstance(phase, ParallelPhase):
                scheduling = phase.scheduling or self.scheduling
                check_one_of(scheduling, ("dynamic", "static"), "scheduling")
                busy = self._schedule(phase.chunk_costs, scheduling)
                seconds = max(busy) / hz if busy else 0.0
                results.append(
                    PhaseResult(
                        name=phase.name,
                        seconds=seconds,
                        kind="parallel",
                        thread_busy_seconds=[b / hz for b in busy],
                    )
                )
            elif isinstance(phase, SequentialPhase):
                results.append(
                    PhaseResult(
                        name=phase.name,
                        seconds=phase.cost_cycles / hz,
                        kind="sequential",
                    )
                )
            elif isinstance(phase, CombinePhase):
                cycles = phase.critical_path_cycles(self.num_threads)
                results.append(
                    PhaseResult(
                        name=phase.name, seconds=cycles / hz, kind="combine"
                    )
                )
            elif isinstance(phase, OverlapPhase):
                cycles = phase.makespan_cycles(self.num_threads)
                results.append(
                    PhaseResult(
                        name=phase.name, seconds=cycles / hz, kind="overlap"
                    )
                )
            elif isinstance(phase, ClusterCombinePhase):
                results.append(
                    PhaseResult(
                        name=phase.name,
                        seconds=phase.critical_path_seconds(hz),
                        kind="cluster_combine",
                    )
                )
            else:
                raise MachineError(f"unknown phase type {type(phase)!r}")
        return SimReport(num_threads=self.num_threads, phases=results)


def lock_contention_factor(num_threads: int, num_locks: int) -> float:
    """Expected inflation of lock cost under uniform contention.

    With ``p`` threads hashing updates uniformly into ``L`` locks, the
    expected number of waiters ahead of an acquirer grows like
    ``(p - 1) / L``; the factor inflates the uncontended acquisition cost.
    A coarse M/M/1-flavored model — adequate for the shared-memory ablation,
    which only needs the *ordering* of techniques to be right.
    """
    check_positive_int(num_threads, "num_threads")
    if num_locks < 1:
        raise MachineError("num_locks must be >= 1")
    return 1.0 + (num_threads - 1) / num_locks
