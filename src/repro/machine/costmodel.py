"""The cycle-cost model pricing :class:`~repro.machine.counters.OpCounters`.

The constants model the paper's testbed: an 8-core (2x quad) Intel Xeon
E5345 at 2.33 GHz running compiled C code.  They were calibrated once
against the paper's Figure 9 ratios (see ``tests/bench/test_calibration.py``)
and are then held fixed for every other figure:

* ``generated``/``opt-1`` gap ~ 10 percent (computeIndex hoisting),
* ``opt-1``/``opt-2`` gap ~ 8x (nested Chapel accesses vs linear buffer),
* ``opt-2``/``manual`` gap < 20 percent at one thread (mapping residue and
  sequential linearization).

Rationale for the big constants:

``cycles_per_nested_access`` (2) + ``cycles_per_nested_deep_step`` (23)
    An access through an un-linearized Chapel structure costs a cheap base
    (the outer descriptor stays cached — a flat array read like PCA's
    ``mean[b]`` is barely worse than a linear read, which is why the paper
    sees no opt-2 benefit for PCA) plus ~23 cycles for every *additional*
    chain step: ``centroids[c].coord[d]`` is 3 steps (~48 cycles), each
    a wide-pointer indirection with poor locality on a 2007 Xeon —
    consistent with the ~8x opt-2 gain the paper measures for k-means.
``cycles_per_byte_linearized`` (6.25, i.e. ~50 cycles per 8-byte scalar)
    Algorithm 2 is a recursive, type-dispatching walk that touches every
    scalar of the nested structure once.
``cycles_per_index_call``/``level`` (3.3 / 1)
    ``computeIndex`` for the 2-3 level structures of the paper is a short
    call plus a multiply-add per level.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.freeride.sharedmem import SharedMemTechnique
from repro.machine.counters import OpCounters
from repro.util.errors import MachineError

__all__ = ["CostModel", "XEON_E5345"]


@dataclass(frozen=True)
class CostModel:
    """Per-operation cycle costs plus the machine clock."""

    clock_hz: float = 2.33e9  # paper's Xeon E5345
    cycles_per_flop: float = 1.0
    cycles_per_linear_read: float = 1.5
    cycles_per_linear_write: float = 2.0
    cycles_per_nested_access: float = 2.0
    cycles_per_nested_deep_step: float = 23.0
    cycles_per_nested_write: float = 4.0
    cycles_per_index_call: float = 3.3
    cycles_per_index_level: float = 1.0
    cycles_per_ro_update: float = 2.0
    cycles_per_byte_linearized: float = 6.25
    cycles_per_merge_element: float = 2.0
    #: uncontended lock acquire+release cost, per technique
    cycles_per_lock_full: float = 60.0
    cycles_per_lock_optimized: float = 28.0
    cycles_per_lock_cache_sensitive: float = 24.0

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise MachineError("clock_hz must be positive")

    def lock_cost(self, technique: SharedMemTechnique) -> float:
        """Uncontended cycles per lock acquisition for a technique."""
        if technique is SharedMemTechnique.FULL_LOCKING:
            return self.cycles_per_lock_full
        if technique is SharedMemTechnique.OPTIMIZED_FULL_LOCKING:
            return self.cycles_per_lock_optimized
        if technique is SharedMemTechnique.CACHE_SENSITIVE_LOCKING:
            return self.cycles_per_lock_cache_sensitive
        return 0.0  # full replication and colored waves take no locks

    def cycles(
        self,
        counters: OpCounters,
        technique: SharedMemTechnique = SharedMemTechnique.FULL_REPLICATION,
    ) -> float:
        """Price a counter ledger in cycles."""
        c = counters
        return (
            c.flops * self.cycles_per_flop
            + c.linear_reads * self.cycles_per_linear_read
            + c.linear_writes * self.cycles_per_linear_write
            + c.nested_reads * self.cycles_per_nested_access
            + max(0.0, c.nested_steps - c.nested_reads)
            * self.cycles_per_nested_deep_step
            + c.nested_writes * self.cycles_per_nested_write
            + c.index_calls * self.cycles_per_index_call
            + c.index_levels * self.cycles_per_index_level
            + c.ro_updates * self.cycles_per_ro_update
            + c.bytes_linearized * self.cycles_per_byte_linearized
            + c.merge_elements * self.cycles_per_merge_element
            + c.lock_acquisitions * self.lock_cost(technique)
        )

    def seconds(
        self,
        counters: OpCounters,
        technique: SharedMemTechnique = SharedMemTechnique.FULL_REPLICATION,
    ) -> float:
        """Price a counter ledger in seconds on this machine's clock."""
        return self.cycles(counters, technique) / self.clock_hz

    def with_overrides(self, **kwargs: float) -> "CostModel":
        """A copy with some constants replaced (for ablation studies)."""
        return replace(self, **kwargs)


#: The calibrated default model (paper's testbed).
XEON_E5345 = CostModel()
