"""Dataset generators, paper-scale configurations, disk-backed chunks."""

from repro.data.chunks import dataset_nbytes, iter_chunks, open_dataset, write_dataset
from repro.data.datasets import (
    KMEANS_LARGE_K10,
    KMEANS_LARGE_K100_I1,
    KMEANS_SMALL,
    PCA_LARGE,
    PCA_SMALL,
    KmeansConfig,
    PcaConfig,
)
from repro.data.generators import initial_centroids, kmeans_points, pca_matrix

__all__ = [
    "kmeans_points",
    "initial_centroids",
    "pca_matrix",
    "KmeansConfig",
    "PcaConfig",
    "KMEANS_SMALL",
    "KMEANS_LARGE_K10",
    "KMEANS_LARGE_K100_I1",
    "PCA_SMALL",
    "PCA_LARGE",
    "write_dataset",
    "open_dataset",
    "iter_chunks",
    "dataset_nbytes",
]
