"""The paper's dataset configurations (§V), with a CI scale knob.

The paper evaluates k-means on a 12 MB and a 1.2 GB dataset and PCA on
1000x10,000 and 1000x100,000 matrices.  The element counts below reproduce
those byte sizes exactly for the chosen dimensionality; ``scaled(factor)``
shrinks the element count for fast functional runs while the *simulated*
benchmarks extrapolate measured per-element costs back to full scale.

The paper does not state the k-means dimensionality; we fix ``dim = 4``
(documented in EXPERIMENTS.md) so that 12 MB / (4 * 8 B) = 393,216 points.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.data.generators import kmeans_points, pca_matrix

__all__ = [
    "KmeansConfig",
    "PcaConfig",
    "KMEANS_SMALL",
    "KMEANS_LARGE_K10",
    "KMEANS_LARGE_K100_I1",
    "PCA_SMALL",
    "PCA_LARGE",
]

KMEANS_DIM = 4


@dataclass(frozen=True)
class KmeansConfig:
    """One k-means experiment configuration."""

    name: str
    n_points: int
    dim: int
    k: int
    iterations: int
    seed: int = 17

    @property
    def nbytes(self) -> int:
        return self.n_points * self.dim * 8

    def scaled(self, factor: float) -> "KmeansConfig":
        """Shrink the element count (k, dim, iterations unchanged)."""
        return replace(
            self,
            name=f"{self.name}(x{factor:g})",
            n_points=max(self.k, int(self.n_points * factor)),
        )

    def generate(self) -> np.ndarray:
        return kmeans_points(self.n_points, self.dim, seed=self.seed)


@dataclass(frozen=True)
class PcaConfig:
    """One PCA experiment configuration (rows = dims, cols = elements)."""

    name: str
    rows: int
    cols: int
    seed: int = 23

    @property
    def nbytes(self) -> int:
        return self.rows * self.cols * 8

    def scaled(self, factor: float) -> "PcaConfig":
        """Shrink the element (column) count; dimensionality unchanged."""
        return replace(
            self,
            name=f"{self.name}(x{factor:g})",
            cols=max(8, int(self.cols * factor)),
        )

    def scaled_rows(self, factor: float) -> "PcaConfig":
        """Also shrink the dimensionality (functional tests only)."""
        return replace(
            self,
            name=f"{self.name}(rows x{factor:g})",
            rows=max(4, int(self.rows * factor)),
        )

    def generate(self) -> np.ndarray:
        return pca_matrix(self.rows, self.cols, seed=self.seed)


#: Figure 9: 12 MB dataset, k = 100, i = 10.
KMEANS_SMALL = KmeansConfig(
    "kmeans-12MB", n_points=12 * 1024 * 1024 // (KMEANS_DIM * 8),
    dim=KMEANS_DIM, k=100, iterations=10,
)

#: Figure 10: 1.2 GB dataset, k = 10, i = 10.
KMEANS_LARGE_K10 = KmeansConfig(
    "kmeans-1.2GB-k10", n_points=1200 * 1024 * 1024 // (KMEANS_DIM * 8),
    dim=KMEANS_DIM, k=10, iterations=10,
)

#: Figure 11: 1.2 GB dataset, k = 100, i = 1.
KMEANS_LARGE_K100_I1 = KmeansConfig(
    "kmeans-1.2GB-k100-i1", n_points=1200 * 1024 * 1024 // (KMEANS_DIM * 8),
    dim=KMEANS_DIM, k=100, iterations=1,
)

#: Figure 12: rows = 1000, columns = 10,000.
PCA_SMALL = PcaConfig("pca-small", rows=1000, cols=10_000)

#: Figure 13: rows = 1000, columns = 100,000.
PCA_LARGE = PcaConfig("pca-large", rows=1000, cols=100_000)
