"""Deterministic synthetic dataset generators.

The paper's datasets are not published, so we generate synthetic equivalents
with the same *shapes* (element counts, dimensionality) and workload-relevant
structure: k-means data is drawn from Gaussian blobs (so clustering actually
converges and the compute mix matches a real clustering run); PCA data is a
low-rank signal plus noise (so the covariance has meaningful principal
components).  Everything is seeded — the same call always returns the same
bytes.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive_int

__all__ = ["kmeans_points", "initial_centroids", "pca_matrix"]


def kmeans_points(
    n: int,
    dim: int,
    num_blobs: int = 8,
    spread: float = 0.15,
    seed: int = 0,
) -> np.ndarray:
    """``n`` points in ``dim`` dimensions drawn from Gaussian blobs.

    Blob centers are uniform in the unit cube; points get Gaussian noise of
    scale ``spread`` around their center.  Returns float64 of shape (n, dim).
    """
    check_positive_int(n, "n")
    check_positive_int(dim, "dim")
    check_positive_int(num_blobs, "num_blobs")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, 1.0, size=(num_blobs, dim))
    assignment = rng.integers(0, num_blobs, size=n)
    points = centers[assignment] + rng.normal(0.0, spread, size=(n, dim))
    return points.astype(np.float64)


def initial_centroids(points: np.ndarray, k: int, seed: int = 0) -> np.ndarray:
    """Paper's k-means step 1: "select k points as the initial centroids
    randomly".  Returns float64 of shape (k, dim)."""
    check_positive_int(k, "k")
    if points.ndim != 2 or points.shape[0] < k:
        raise ValueError(f"need at least {k} points of shape (n, dim)")
    rng = np.random.default_rng(seed)
    idx = rng.choice(points.shape[0], size=k, replace=False)
    return points[idx].copy()


def pca_matrix(
    rows: int,
    cols: int,
    rank: int = 10,
    noise: float = 0.1,
    seed: int = 0,
) -> np.ndarray:
    """A data matrix for PCA: ``rows`` = dimensionality, ``cols`` = elements.

    (The paper: "the number of rows denotes the dimensionality of the
    dataset, whereas the number of columns denotes the number of data
    elements.")  Built as a rank-``rank`` signal plus Gaussian noise, so the
    mean vector and covariance computed by the PCA reduction are non-trivial.
    Returns float64 of shape (rows, cols).
    """
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    check_positive_int(rank, "rank")
    rng = np.random.default_rng(seed)
    basis = rng.normal(0.0, 1.0, size=(rows, min(rank, rows)))
    weights = rng.normal(0.0, 1.0, size=(min(rank, rows), cols))
    signal = basis @ weights
    data = signal + rng.normal(0.0, noise, size=(rows, cols))
    # a non-zero mean per dimension makes the mean-vector phase meaningful
    data += rng.uniform(-1.0, 1.0, size=(rows, 1))
    return data.astype(np.float64)
