"""Disk-backed chunked datasets.

FREERIDE is a data-intensive middleware: "the order in which data instances
are read from the disks is determined by the runtime system".  This module
gives the runtime a disk to read from — datasets are written to ``.npy``
files and read back through memory maps, which support ``len`` and slicing
and therefore plug directly into the engine's splitters without loading the
whole file.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.util.validation import check_positive_int

__all__ = ["write_dataset", "open_dataset", "iter_chunks", "dataset_nbytes"]


def write_dataset(path: str | os.PathLike, array: np.ndarray) -> Path:
    """Persist a dataset as ``.npy``; returns the resolved path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.save(path, np.ascontiguousarray(array))
    return path if path.suffix == ".npy" else path.with_suffix(path.suffix + ".npy")


def open_dataset(path: str | os.PathLike) -> np.memmap:
    """Open a dataset read-only without loading it into memory.

    The returned memmap supports ``len`` and slicing, so it can be passed
    straight to :class:`~repro.freeride.runtime.FreerideEngine` — splits
    become windowed views and the OS pages data in as threads touch it,
    which is exactly the read pattern the middleware assumes.
    """
    return np.load(Path(path), mmap_mode="r")


def iter_chunks(
    path: str | os.PathLike, chunk_rows: int
) -> Iterator[np.ndarray]:
    """Stream a dataset from disk in fixed-size row chunks."""
    check_positive_int(chunk_rows, "chunk_rows")
    mm = open_dataset(path)
    for start in range(0, mm.shape[0], chunk_rows):
        yield np.asarray(mm[start : start + chunk_rows])


def dataset_nbytes(path: str | os.PathLike) -> int:
    """On-disk payload size (excluding the small .npy header)."""
    mm = open_dataset(path)
    return int(mm.nbytes)
