"""Wall-clock timing helpers for the real-execution benchmark mode."""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Stopwatch", "PhaseTimer", "timed"]


@dataclass
class Stopwatch:
    """A simple accumulating stopwatch based on ``time.perf_counter``."""

    elapsed: float = 0.0
    _start: float | None = None

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("stopwatch already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop and return the elapsed time of this interval."""
        if self._start is None:
            raise RuntimeError("stopwatch not running")
        interval = time.perf_counter() - self._start
        self.elapsed += interval
        self._start = None
        return interval

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None

    @property
    def running(self) -> bool:
        return self._start is not None


@dataclass
class PhaseTimer:
    """Accumulates wall-clock time per named phase.

    Mirrors the phase decomposition the paper discusses (linearization,
    local reduction, combination) so real runs can report the same
    breakdown the simulator produces.

    Thread-safe: concurrent ``phase`` blocks (e.g. worker-thread span
    recording) accumulate under a lock, so no update is ever lost to a
    racing read-modify-write of :attr:`phases`.
    """

    phases: dict[str, float] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self.phases[name] = self.phases.get(name, 0.0) + elapsed

    @property
    def total(self) -> float:
        with self._lock:
            return sum(self.phases.values())

    def as_dict(self) -> dict[str, float]:
        with self._lock:
            return dict(self.phases)


@contextmanager
def timed() -> Iterator[Stopwatch]:
    """Context manager yielding a stopwatch that stops on exit."""
    sw = Stopwatch()
    sw.start()
    try:
        yield sw
    finally:
        if sw.running:
            sw.stop()
