"""Shared utilities: errors, validation, timing, logging."""

from repro.util.errors import (
    BenchmarkError,
    ChapelError,
    ChapelSyntaxError,
    ChapelTypeError,
    CodegenError,
    CompilerError,
    DomainError,
    FreerideError,
    LinearizationError,
    MachineError,
    MappingError,
    ReductionObjectError,
    ReproError,
    SplitterError,
)
from repro.util.logging import get_logger
from repro.util.timing import PhaseTimer, Stopwatch, timed

__all__ = [
    "ReproError",
    "ChapelError",
    "ChapelTypeError",
    "ChapelSyntaxError",
    "DomainError",
    "FreerideError",
    "ReductionObjectError",
    "SplitterError",
    "CompilerError",
    "LinearizationError",
    "MappingError",
    "CodegenError",
    "MachineError",
    "BenchmarkError",
    "get_logger",
    "Stopwatch",
    "PhaseTimer",
    "timed",
]
