"""Library-wide logger configuration.

The library never configures the root logger; it exposes a namespaced
logger (``repro``) that applications can route as they see fit.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger"]

_BASE = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return the library logger, optionally for a subsystem.

    ``get_logger("freeride")`` returns the ``repro.freeride`` logger.
    """
    if name is None:
        return logging.getLogger(_BASE)
    return logging.getLogger(f"{_BASE}.{name}")
