"""Small argument-validation helpers used across the library.

These keep public entry points honest without cluttering the call sites:
each helper raises a precise exception type and returns the (possibly
normalized) value so they compose in assignments.
"""

from __future__ import annotations

from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")

__all__ = [
    "require",
    "check_positive_int",
    "check_nonnegative_int",
    "check_in_range",
    "check_one_of",
    "check_sequence_nonempty",
]


def require(condition: bool, message: str, exc: type[Exception] = ValueError) -> None:
    """Raise ``exc(message)`` unless ``condition`` holds."""
    if not condition:
        raise exc(message)


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is an ``int`` strictly greater than zero."""
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return value


def check_nonnegative_int(value: int, name: str) -> int:
    """Validate that ``value`` is an ``int`` greater than or equal to zero."""
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ValueError(f"{name} must be a non-negative integer, got {value!r}")
    return value


def check_in_range(value: float, lo: float, hi: float, name: str) -> float:
    """Validate ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def check_one_of(value: T, allowed: Iterable[T], name: str) -> T:
    """Validate that ``value`` is one of ``allowed``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value


def check_sequence_nonempty(seq: Sequence[T], name: str) -> Sequence[T]:
    """Validate that ``seq`` has at least one element."""
    if len(seq) == 0:
        raise ValueError(f"{name} must not be empty")
    return seq
