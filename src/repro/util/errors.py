"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError`, so callers can
catch a single base class.  Sub-hierarchies mirror the subsystems: the
mini-Chapel substrate, the FREERIDE middleware, the translation compiler and
the simulated machine.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ChapelError",
    "ChapelTypeError",
    "ChapelSyntaxError",
    "DomainError",
    "FreerideError",
    "ReductionObjectError",
    "SplitterError",
    "FaultToleranceError",
    "CompilerError",
    "LinearizationError",
    "MappingError",
    "CodegenError",
    "AnalysisError",
    "MachineError",
    "BenchmarkError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ChapelError(ReproError):
    """Base class for errors in the mini-Chapel substrate."""


class ChapelTypeError(ChapelError):
    """A value does not conform to its declared Chapel type."""


class ChapelSyntaxError(ChapelError):
    """The mini-Chapel frontend rejected source text.

    Carries the source location so tooling can point at the offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class DomainError(ChapelError):
    """An index fell outside a domain, or a domain was malformed."""


class FreerideError(ReproError):
    """Base class for errors in the FREERIDE middleware substrate."""


class ReductionObjectError(FreerideError):
    """Invalid group/element access or accumulate on a reduction object."""


class SplitterError(FreerideError):
    """The splitter produced an invalid partition of the input data."""


class FaultToleranceError(FreerideError):
    """Invalid fault-tolerance configuration, or an unrecoverable split."""


class CompilerError(ReproError):
    """Base class for errors in the Chapel-to-FREERIDE translator."""


class LinearizationError(CompilerError):
    """A data structure could not be linearized (Algorithms 1 and 2)."""


class MappingError(CompilerError):
    """Index-mapping failure in ``computeIndex`` (Algorithm 3)."""


class CodegenError(CompilerError):
    """Code generation produced or received an invalid kernel."""


class AnalysisError(CompilerError):
    """Strict-mode compilation refused: the analyzer reported errors.

    Carries the error-level :class:`~repro.analysis.diagnostics.Diagnostic`
    records in :attr:`diagnostics`.
    """

    def __init__(self, message: str, diagnostics: tuple = ()) -> None:
        self.diagnostics = tuple(diagnostics)
        super().__init__(message)


class MachineError(ReproError):
    """Invalid configuration or state in the simulated machine."""


class BenchmarkError(ReproError):
    """A benchmark harness was misconfigured."""
