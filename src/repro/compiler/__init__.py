"""The Chapel-to-FREERIDE translation compiler — the paper's contribution.

Submodules map to the paper's §IV:

* :mod:`repro.compiler.access` — access paths over nested structures;
* :mod:`repro.compiler.linearize` — Algorithms 1 & 2 (``computeLinearizeSize``
  and ``linearizeIt``);
* :mod:`repro.compiler.mapping` — Algorithm 3 (``computeIndex``) and the
  Figure 6 metadata;
* :mod:`repro.compiler.lower` — elaboration and access-site analysis;
* :mod:`repro.compiler.passes` — the opt-1 (strength reduction) and opt-2
  (auxiliary linearization) transformations;
* :mod:`repro.compiler.codegen` — instrumented Python kernels + C-like text;
* :mod:`repro.compiler.batch` — the vectorized split-level NumPy backend
  ("opt-3") with scalar fallback;
* :mod:`repro.compiler.cache` — process-wide compiled-kernel memoization;
* :mod:`repro.compiler.translate` / :mod:`repro.compiler.pipeline` — the
  end-to-end driver producing FREERIDE-runnable specs;
* :mod:`repro.compiler.interp` — the reference interpreter (semantic oracle).
"""

from repro.compiler.access import AccessPath, FieldStep, IndexStep
from repro.compiler.batch import BatchCodegen, BatchUnsupported
from repro.compiler.cache import (
    clear_kernel_cache,
    compile_cached,
    kernel_cache_stats,
    plan_fingerprint,
)
from repro.compiler.exprreduce import ReduceExprJob, compile_reduce_expr
from repro.compiler.interp import interpret_accumulate, interpret_over
from repro.compiler.linearize import (
    LinearizedBuffer,
    compute_linearize_size,
    delinearize,
    linearize_it,
)
from repro.compiler.lower import (
    AccessSite,
    LoweredReduction,
    elaborate_type,
    lower_reduction,
)
from repro.compiler.mapping import (
    MappingInfo,
    collect_mapping_info,
    compute_index,
    compute_index_chapel,
    contiguous_run,
    vectorized_offsets,
)
from repro.compiler.passes import (
    VERSION_NAMES,
    CompilationPlan,
    LoopHoist,
    SitePlan,
    plan_compilation,
)
from repro.compiler.pipeline import OPT_LEVELS, compile_all_versions
from repro.compiler.translate import (
    BACKENDS,
    BoundReduction,
    CompiledReduction,
    compile_reduction,
)

__all__ = [
    "AccessPath",
    "IndexStep",
    "FieldStep",
    "compute_linearize_size",
    "linearize_it",
    "delinearize",
    "LinearizedBuffer",
    "MappingInfo",
    "collect_mapping_info",
    "compute_index",
    "compute_index_chapel",
    "vectorized_offsets",
    "contiguous_run",
    "lower_reduction",
    "elaborate_type",
    "LoweredReduction",
    "AccessSite",
    "plan_compilation",
    "CompilationPlan",
    "SitePlan",
    "LoopHoist",
    "VERSION_NAMES",
    "compile_reduction",
    "compile_all_versions",
    "OPT_LEVELS",
    "BACKENDS",
    "CompiledReduction",
    "BoundReduction",
    "BatchCodegen",
    "BatchUnsupported",
    "compile_cached",
    "clear_kernel_cache",
    "kernel_cache_stats",
    "plan_fingerprint",
    "interpret_accumulate",
    "interpret_over",
    "compile_reduce_expr",
    "ReduceExprJob",
]
