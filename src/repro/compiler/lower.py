"""Lowering: mini-Chapel reduction classes to an analyzed, typed form.

This stage does what the front half of the paper's translation does:

1. **Elaboration** — resolve the reduction class's type expressions against
   compile-time constants (``k``, ``dim``, ...) and record declarations into
   concrete :mod:`repro.chapel.types` types.
2. **Access-site analysis** — find every maximal ``Index``/``Member`` chain
   in the ``accumulate`` body and classify its root:

   * the accumulate *parameter* → a **data** access (reads the input
     element; becomes a linearized-buffer access in every compiled version);
   * an array/record class field → an **extra** access (e.g. the k-means
     centroids; stays a nested Chapel access until opt-2 linearizes it);
   * a local/loop variable or scalar constant → plain scalar use.

   Each data/extra site gets an :class:`~repro.compiler.access.AccessPath`
   plus the per-level index expressions, ready for mapping collection.

The output :class:`LoweredReduction` is what the optimization passes and
the code generator consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.chapel import ast as A
from repro.chapel.domains import Domain, Range
from repro.chapel.types import (
    BOOL,
    INT,
    REAL,
    ArrayType,
    ChapelType,
    RecordType,
)
from repro.compiler.access import AccessPath, FieldStep, IndexStep
from repro.compiler.mapping import MappingInfo, collect_mapping_info
from repro.util.errors import CompilerError

__all__ = ["AccessSite", "LoweredReduction", "lower_reduction", "elaborate_type", "free_vars"]

_NAMED_TYPES: dict[str, ChapelType] = {
    "int": INT,
    "real": REAL,
    "bool": BOOL,
}


def _eval_const(expr: A.Expr, constants: dict[str, Any]) -> int:
    """Evaluate a compile-time integer expression (domain bounds)."""
    if isinstance(expr, A.IntLit):
        return expr.value
    if isinstance(expr, A.Ident):
        if expr.name not in constants:
            raise CompilerError(
                f"domain bound uses {expr.name!r}, which is not a compile-time constant"
            )
        v = constants[expr.name]
        if not isinstance(v, int) or isinstance(v, bool):
            raise CompilerError(f"constant {expr.name!r} must be an int, got {v!r}")
        return v
    if isinstance(expr, A.BinOp):
        left = _eval_const(expr.left, constants)
        right = _eval_const(expr.right, constants)
        ops = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a // b,
            "%": lambda a, b: a % b,
        }
        if expr.op not in ops:
            raise CompilerError(f"operator {expr.op!r} not allowed in domain bounds")
        return ops[expr.op](left, right)
    if isinstance(expr, A.UnaryOp) and expr.op == "-":
        return -_eval_const(expr.operand, constants)
    raise CompilerError(f"expression {expr} is not a compile-time constant")


def elaborate_type(
    texpr: A.TypeExpr,
    constants: dict[str, Any],
    records: dict[str, A.RecordDecl],
    _stack: tuple[str, ...] = (),
) -> ChapelType:
    """Resolve a type expression to a concrete ChapelType."""
    if isinstance(texpr, A.NamedTypeExpr):
        if texpr.name in _NAMED_TYPES:
            return _NAMED_TYPES[texpr.name]
        if texpr.name in records:
            if texpr.name in _stack:
                raise CompilerError(f"recursive record type {texpr.name!r}")
            decl = records[texpr.name]
            fields = []
            for f in decl.fields:
                if f.type is None:
                    raise CompilerError(
                        f"record {decl.name}: field {f.name} needs a type"
                    )
                fields.append(
                    (
                        f.name,
                        elaborate_type(
                            f.type, constants, records, _stack + (texpr.name,)
                        ),
                    )
                )
            return RecordType(decl.name, tuple(fields))
        raise CompilerError(f"unknown type name {texpr.name!r}")
    if isinstance(texpr, A.ArrayTypeExpr):
        ranges = []
        for r in texpr.ranges:
            lo = _eval_const(r.lo, constants)
            hi = _eval_const(r.hi, constants)
            if hi < lo:
                raise CompilerError(f"empty domain {lo}..{hi} in array type")
            ranges.append(Range(lo, hi))
        elt = elaborate_type(texpr.elt, constants, records, _stack)
        return ArrayType(Domain(*ranges), elt)
    raise CompilerError(f"cannot elaborate type expression {texpr!r}")


def free_vars(expr: A.Expr) -> set[str]:
    """Names an expression reads (used for loop-invariance analysis)."""
    if isinstance(expr, A.Ident):
        return {expr.name}
    if isinstance(expr, A.BinOp):
        return free_vars(expr.left) | free_vars(expr.right)
    if isinstance(expr, A.UnaryOp):
        return free_vars(expr.operand)
    if isinstance(expr, A.Index):
        out = free_vars(expr.base)
        for i in expr.indices:
            out |= free_vars(i)
        return out
    if isinstance(expr, A.Member):
        return free_vars(expr.base)
    if isinstance(expr, A.Call):
        out: set[str] = set()
        for a in expr.args:
            out |= free_vars(a)
        return out
    return set()


@dataclass
class AccessSite:
    """One data/extra access chain found in the accumulate body.

    ``steps`` is the chain relative to the root value — for data sites,
    relative to *one element* (the dataset's leading index level is
    prepended at bind time); for extra sites, relative to the extra value
    (a leading synthetic index level is prepended when the chain starts
    with a member, wrapping the extra in a 1-element array).
    """

    expr: A.Expr
    kind: str  # "data" or "extra"
    root: str  # the parameter name or the extra field name
    #: relative access steps (may be empty for a bare scalar parameter)
    steps: tuple[IndexStep | FieldStep, ...]
    #: per index-step tuple of index expressions (matches index steps order)
    index_exprs: tuple[tuple[A.Expr, ...], ...]
    #: scalar type read by this access
    scalar: ChapelType
    #: mapping info (extras: filled at lower time; data: filled at bind time)
    info: MappingInfo | None = None

    def wrapped_path(self) -> AccessPath:
        """The chain as a full AccessPath with a synthetic leading index.

        The leading index addresses the root inside a 1-element wrapper
        array (for extras) or the dataset (for data; the wrapper is the
        dataset array itself).
        """
        return AccessPath((IndexStep(("_w",)),) + self.steps)

    @property
    def num_steps(self) -> int:
        """Chain length — the nested-access cost unit for the cost model."""
        return max(1, len(self.steps))


@dataclass
class LoweredReduction:
    """The analyzed accumulate function, ready for passes and codegen."""

    name: str
    param_name: str
    element_type: ChapelType
    body: A.Block
    constants: dict[str, Any]
    extra_types: dict[str, ChapelType]
    #: id(expr-node) -> AccessSite for every data/extra chain
    sites: dict[int, AccessSite]
    #: names of locals declared in the body (including loop vars)
    locals: set[str]
    #: which reduction-object intrinsics the body uses, with their ops
    ro_ops_used: set[str] = field(default_factory=set)

    def data_sites(self) -> list[AccessSite]:
        return [s for s in self.sites.values() if s.kind == "data"]

    def extra_sites(self) -> list[AccessSite]:
        return [s for s in self.sites.values() if s.kind == "extra"]


def _chain_root(expr: A.Expr) -> tuple[A.Expr, list[A.Expr]]:
    """Peel Index/Member wrappers; returns (root expr, chain outer->inner)."""
    chain: list[A.Expr] = []
    cur = expr
    while isinstance(cur, (A.Index, A.Member)):
        chain.append(cur)
        cur = cur.base
    chain.reverse()
    return cur, chain


def _site_from_chain(
    root_name: str,
    kind: str,
    root_type: ChapelType,
    chain: list[A.Expr],
    whole: A.Expr,
) -> AccessSite:
    """Build an AccessSite from a peeled chain, validating against the type."""
    steps: list[IndexStep | FieldStep] = []
    index_exprs: list[tuple[A.Expr, ...]] = []
    level = 0
    for node in chain:
        if isinstance(node, A.Index):
            steps.append(IndexStep(tuple(f"v{level}_{i}" for i in range(len(node.indices)))))
            index_exprs.append(node.indices)
            level += 1
        else:
            assert isinstance(node, A.Member)
            steps.append(FieldStep(node.name))
    # Resolve the scalar type by walking the chain against root_type.
    cur: ChapelType = root_type
    for node in chain:
        if isinstance(node, A.Index):
            if not isinstance(cur, ArrayType):
                raise CompilerError(f"indexing non-array in {whole}")
            if cur.domain.rank != len(node.indices):
                raise CompilerError(
                    f"{whole}: rank mismatch ({len(node.indices)} indices for {cur})"
                )
            cur = cur.elt
        else:
            if not isinstance(cur, RecordType):
                raise CompilerError(f"member access on non-record in {whole}")
            cur = cur.field_type(node.name)
    if not cur.is_primitive:
        raise CompilerError(
            f"access {whole} reads a non-scalar ({cur}); reductions read scalars"
        )
    return AccessSite(
        expr=whole,
        kind=kind,
        root=root_name,
        steps=tuple(steps),
        index_exprs=tuple(index_exprs),
        scalar=cur,
    )


class _BodyAnalyzer:
    """Walks the accumulate body collecting sites, locals and RO usage."""

    def __init__(self, lowered: LoweredReduction) -> None:
        self.low = lowered
        self.scopes: list[set[str]] = [set()]

    def declared(self, name: str) -> bool:
        return any(name in s for s in self.scopes)

    def analyze_block(self, block: A.Block) -> None:
        self.scopes.append(set())
        for stmt in block.stmts:
            self.analyze_stmt(stmt)
        self.scopes.pop()

    def analyze_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.VarDeclStmt):
            d = stmt.decl
            if d.type is not None and not isinstance(d.type, A.NamedTypeExpr):
                raise CompilerError(
                    f"local {d.name!r} must be scalar (int/real/bool)"
                )
            if d.init is not None:
                self.analyze_expr(d.init)
            self.scopes[-1].add(d.name)
            self.low.locals.add(d.name)
        elif isinstance(stmt, A.Assign):
            if not isinstance(stmt.target, A.Ident):
                raise CompilerError(
                    f"cannot assign to {stmt.target}; only locals are assignable "
                    "(reduction-object updates go through roAdd/roMin/roMax)"
                )
            if not self.declared(stmt.target.name):
                raise CompilerError(f"assignment to undeclared {stmt.target.name!r}")
            self.analyze_expr(stmt.value)
        elif isinstance(stmt, A.ForStmt):
            self.analyze_expr(stmt.range.lo)
            self.analyze_expr(stmt.range.hi)
            self.scopes.append({stmt.var})
            self.low.locals.add(stmt.var)
            self.analyze_block(stmt.body)
            self.scopes.pop()
        elif isinstance(stmt, A.IfStmt):
            self.analyze_expr(stmt.cond)
            self.analyze_block(stmt.then)
            if stmt.orelse is not None:
                self.analyze_block(stmt.orelse)
        elif isinstance(stmt, A.ExprStmt):
            self.analyze_expr(stmt.expr)
        elif isinstance(stmt, A.ReturnStmt):
            raise CompilerError("accumulate must not return a value")
        elif isinstance(stmt, A.Block):
            self.analyze_block(stmt)
        else:  # pragma: no cover
            raise CompilerError(f"unsupported statement {stmt!r}")

    _MATH_BUILTINS = {"abs", "sqrt", "min", "max", "floor", "toInt", "exp", "log"}

    def analyze_expr(self, expr: A.Expr) -> None:
        if isinstance(expr, (A.IntLit, A.RealLit, A.BoolLit)):
            return
        if isinstance(expr, A.Call):
            if expr.name in A.RO_INTRINSICS:
                if len(expr.args) != 3:
                    raise CompilerError(
                        f"{expr.name} takes (group, element, value); got {len(expr.args)} args"
                    )
                self.low.ro_ops_used.add(A.RO_INTRINSICS[expr.name])
            elif expr.name == "elemIdx":
                if expr.args:
                    raise CompilerError(
                        f"elemIdx takes no arguments; got {len(expr.args)}"
                    )
            elif expr.name not in self._MATH_BUILTINS:
                raise CompilerError(f"unknown function {expr.name!r}")
            for a in expr.args:
                self.analyze_expr(a)
            return
        if isinstance(expr, (A.Index, A.Member)):
            root, chain = _chain_root(expr)
            if isinstance(root, A.Ident):
                name = root.name
                if name == self.low.param_name:
                    site = _site_from_chain(
                        name, "data", self.low.element_type, chain, expr
                    )
                    self.low.sites[id(expr)] = site
                    for idx_group in site.index_exprs:
                        for ie in idx_group:
                            self.analyze_expr(ie)
                    return
                if name in self.low.extra_types:
                    site = _site_from_chain(
                        name, "extra", self.low.extra_types[name], chain, expr
                    )
                    self.low.sites[id(expr)] = site
                    for idx_group in site.index_exprs:
                        for ie in idx_group:
                            self.analyze_expr(ie)
                    return
                raise CompilerError(
                    f"cannot index/select into {name!r} (not the data parameter "
                    "or a structured class field)"
                )
            raise CompilerError(f"unsupported access base in {expr}")
        if isinstance(expr, A.Ident):
            name = expr.name
            if name == self.low.param_name:
                # bare parameter use: the element itself must be scalar
                if not self.low.element_type.is_primitive:
                    raise CompilerError(
                        f"parameter {name!r} is structured; access its members"
                    )
                self.low.sites[id(expr)] = AccessSite(
                    expr=expr,
                    kind="data",
                    root=name,
                    steps=(),
                    index_exprs=(),
                    scalar=self.low.element_type,
                )
                return
            if (
                self.declared(name)
                or name in self.low.constants
                or name in self.low.extra_types
            ):
                if name in self.low.extra_types and not self.low.extra_types[
                    name
                ].is_primitive:
                    raise CompilerError(
                        f"field {name!r} is structured; access its members"
                    )
                return
            raise CompilerError(f"unknown name {name!r}")
        if isinstance(expr, A.BinOp):
            self.analyze_expr(expr.left)
            self.analyze_expr(expr.right)
            return
        if isinstance(expr, A.UnaryOp):
            self.analyze_expr(expr.operand)
            return
        raise CompilerError(f"unsupported expression {expr!r}")


def lower_reduction(
    program: A.Program,
    constants: dict[str, Any],
    class_name: str | None = None,
    extra_scalars: dict[str, Any] | None = None,
) -> LoweredReduction:
    """Lower a parsed reduction class into analyzed form.

    ``constants`` supplies compile-time values for scalar class fields used
    in domain bounds (``k``, ``dim``); structured class fields become
    *extras* bound at run time.
    """
    cls = program.reduction_class(class_name)
    if cls is None:
        raise CompilerError(
            f"no reduction class {'found' if class_name is None else class_name!r}"
        )
    acc = cls.method("accumulate")
    if acc is None:
        raise CompilerError(f"class {cls.name} has no accumulate method")
    if len(acc.params) != 1:
        raise CompilerError("accumulate takes exactly one parameter (the element)")

    records = {r.name: r for r in program.records}
    all_consts = dict(constants)
    if extra_scalars:
        all_consts.update(extra_scalars)

    element_type = elaborate_type(acc.params[0].type, all_consts, records)

    extra_types: dict[str, ChapelType] = {}
    for f in cls.fields:
        if f.name in all_consts:
            continue  # compile-time scalar
        if f.type is None:
            raise CompilerError(f"class field {f.name} needs a type")
        t = elaborate_type(f.type, all_consts, records)
        if t.is_primitive:
            raise CompilerError(
                f"scalar class field {f.name!r} must be supplied in constants"
            )
        extra_types[f.name] = t

    lowered = LoweredReduction(
        name=cls.name,
        param_name=acc.params[0].name,
        element_type=element_type,
        body=acc.body,
        constants=all_consts,
        extra_types=extra_types,
        sites={},
        locals=set(),
    )
    analyzer = _BodyAnalyzer(lowered)
    analyzer.analyze_block(acc.body)

    # Collect mapping info for data sites against a 1-element wrapper of the
    # element type: the metadata is element-local (the dataset's leading
    # level contributes `element_index * element_size`, added by the kernel),
    # so it does not depend on the dataset length.
    for site in lowered.data_sites():
        site.info = collect_mapping_info(
            ArrayType(Domain(1), lowered.element_type), site.wrapped_path()
        )

    # Collect mapping info for extra sites now (their types are concrete).
    for site in lowered.extra_sites():
        root_t = lowered.extra_types[site.root]
        if site.steps and isinstance(site.steps[0], IndexStep):
            site.info = collect_mapping_info(root_t, AccessPath(site.steps))
        else:
            # Member-rooted chain: model the extra as a 1-element array so
            # the chain starts with an index level (synthetic, dense 0).
            site.info = collect_mapping_info(
                ArrayType(Domain(1), root_t), site.wrapped_path()
            )
    return lowered
