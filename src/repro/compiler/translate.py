"""The end-to-end Chapel-to-FREERIDE translator (the paper's §IV).

Pipeline::

    mini-Chapel source --parse--> AST --lower--> LoweredReduction
        --plan (opt level)--> CompilationPlan --codegen--> kernel source
        --exec--> CompiledReduction --bind(data, extras)--> BoundReduction
        --make_spec--> ReductionSpec, runnable on FreerideEngine

``opt_level`` selects the paper's versions: 0 = ``generated``,
1 = ``opt-1`` (strength reduction), 2 = ``opt-2`` (extras linearized too).
The ``manual FR`` comparison versions are hand-written per application in
:mod:`repro.apps`.

Binding is where linearization actually happens (and is charged to the
bound kernel's counter ledger): the dataset is linearized once; extras
(e.g. centroids) are linearized at every (re)bind, matching the per-
iteration cost the paper describes for opt-2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.chapel import ast as A
from repro.chapel.domains import Domain
from repro.chapel.parser import parse_program
from repro.chapel.types import ArrayType, ChapelType, PrimitiveType
from repro.chapel.values import ChapelArray
from repro.compiler.batch import (
    BATCH_NAMESPACE,
    BatchCodegen,
    BatchUnsupported,
    uses_elem_idx,
)
from repro.compiler.codegen import CLikeCodegen, PythonCodegen, site_key
from repro.compiler.groupbounds import analyze_group_bounds
from repro.compiler.linearize import LinearizedBuffer, linearize_append, linearize_it
from repro.compiler.lower import LoweredReduction, lower_reduction
from repro.compiler.mapping import MappingInfo, compute_index
from repro.compiler.passes import VERSION_NAMES, CompilationPlan, plan_compilation
from repro.freeride.reduction_object import ReductionObject
from repro.freeride.spec import KernelSpec, ReductionArgs, ReductionSpec
from repro.machine.counters import OpCounters
from repro.obs.tracer import get_tracer
from repro.util.errors import CompilerError
from repro.util.logging import get_logger

__all__ = [
    "CompiledReduction",
    "BoundReduction",
    "compile_reduction",
    "kernel_technique",
    "BACKENDS",
    "KERNEL_TECHNIQUES",
]

#: Supported execution backends: per-element interpretation, whole-split
#: NumPy vectorization (see :mod:`repro.compiler.batch`), or JIT-compiled
#: C over the linearized buffers (see :mod:`repro.compiler.native`).
BACKENDS = ("scalar", "batch", "native")

#: Supported kernel variants (see ``compile_reduction``'s ``technique``).
KERNEL_TECHNIQUES = ("generic", "colored")


def kernel_technique(technique: Any) -> str:
    """The kernel variant to compile for an engine technique request.

    Only an explicit ``"colored"`` request compiles the colored variant
    (batch accumulates carry the ``exclusive`` hint); every other value —
    including ``"auto"``, which resolves per run and may still execute
    colored via the generic kernel — maps to ``"generic"``.  Accepts a
    string or a ``SharedMemTechnique``.
    """
    return "colored" if str(getattr(technique, "value", technique)) == "colored" else "generic"

_log = get_logger("compiler.batch")


def _make_reader(raw: np.ndarray, dtype: np.dtype) -> Callable[[int], Any]:
    dt = np.dtype(dtype)

    def read(offset: int) -> Any:
        return np.frombuffer(raw, dt, 1, offset)[0].item()

    return read


def _make_viewer(raw: np.ndarray, dtype: np.dtype, extent: int) -> Callable[[int], np.ndarray]:
    dt = np.dtype(dtype)

    def view(offset: int) -> np.ndarray:
        return np.frombuffer(raw, dt, extent, offset)

    return view


def _make_lane_reader(
    raw: np.ndarray, dtype: np.dtype, elem_size: int
) -> Callable[[int, int, int], np.ndarray]:
    """Batch backend: 1-D strided view, one scalar per element of a split.

    ``lanes(start, n, inner)[i]`` is the value the scalar kernel reads at
    byte ``(start + i) * elem_size + inner`` — the same data-site scalar,
    for all ``n`` elements of the split at once.
    """
    dt = np.dtype(dtype)

    def lanes(start: int, n: int, inner: int) -> np.ndarray:
        return np.ndarray(
            (n,), dt, buffer=raw, offset=start * elem_size + inner, strides=(elem_size,)
        )

    return lanes


def _make_lane_viewer(
    raw: np.ndarray, dtype: np.dtype, elem_size: int, extent: int
) -> Callable[[int, int, int], np.ndarray]:
    """Batch backend: 2-D ``(n, extent)`` view — one hoisted row per element."""
    dt = np.dtype(dtype)

    def rows(start: int, n: int, inner: int) -> np.ndarray:
        return np.ndarray(
            (n, extent),
            dt,
            buffer=raw,
            offset=start * elem_size + inner,
            strides=(elem_size, dt.itemsize),
        )

    return rows


@dataclass
class CompiledReduction:
    """One optimization level of one reduction class, ready to bind."""

    lowered: LoweredReduction
    plan: CompilationPlan
    python_source: str
    c_source: str
    kernel: Callable
    keys: dict[str, int]
    backend: str = "scalar"
    #: kernel variant: ``"generic"`` runs under every accessor;
    #: ``"colored"`` additionally emits the ``exclusive`` hint on batch
    #: RO updates for the COLORED technique's lock-free direct path
    technique: str = "generic"
    #: flow-sensitive bounds on the group index of every RO update site
    #: (:func:`repro.compiler.groupbounds.analyze_group_bounds`); the
    #: engine's split coloring consumes this via the spec
    group_bounds: Any = field(default=None, repr=False)
    batch_source: str | None = None
    batch_kernel: Callable | None = None
    batch_fallback_reason: str | None = None
    #: JIT native backend (``backend="native"``): the generated C source,
    #: the dlopen'd kernel behind the standard 5-arg calling convention,
    #: and the recorded reason when the request downgraded to batch/scalar
    native_source: str | None = None
    native_kernel: Callable | None = None
    native_fallback_reason: str | None = None
    #: the compilation request this object came from (source program,
    #: constants, class name) — what a worker process needs to rebuild the
    #: identical kernel through its own process-wide cache
    origin_source: Any = field(default=None, repr=False)
    origin_constants: dict[str, Any] | None = field(default=None, repr=False)
    origin_class_name: str | None = field(default=None, repr=False)
    _origin_digest: str | None = field(default=None, repr=False)
    _position_dependent: bool | None = field(default=None, repr=False)

    @property
    def opt_level(self) -> int:
        return self.plan.opt_level

    @property
    def position_dependent(self) -> bool:
        """Whether the kernel's behaviour depends on the global element
        index (the ``elemIdx()`` intrinsic).  Position-independent kernels
        may be re-run over a *gathered* copy of scattered elements — the
        O(Δ) retraction fast path — because rebasing the elements to
        positions ``0..k`` cannot change any group index or value."""
        if self._position_dependent is None:
            self._position_dependent = uses_elem_idx(self.lowered.body)
        return self._position_dependent

    @property
    def origin_digest(self) -> str | None:
        """Stable digest of the origin request (None without origin info)."""
        if self.origin_source is None:
            return None
        if self._origin_digest is None:
            from repro.compiler.cache import program_digest

            self._origin_digest = program_digest(
                self.origin_source, self.origin_constants or {}, self.origin_class_name
            )
        return self._origin_digest

    @property
    def effective_kernel(self) -> Callable:
        """The kernel runs actually dispatch: native when JIT-compiled, then
        batch when vectorized, else the interpreted scalar kernel."""
        if self.native_kernel is not None:
            return self.native_kernel
        return self.batch_kernel if self.batch_kernel is not None else self.kernel

    @property
    def effective_backend(self) -> str:
        """Which tier :attr:`effective_kernel` actually dispatches to."""
        if self.native_kernel is not None:
            return "native"
        return "batch" if self.batch_kernel is not None else "scalar"

    @property
    def version_name(self) -> str:
        return VERSION_NAMES[self.plan.opt_level]

    @property
    def name(self) -> str:
        return self.lowered.name

    @property
    def c_program(self) -> str:
        """A complete C-like FREERIDE application (paper Figure 5 shape)."""
        from repro.compiler.codegen import CLikeCodegen

        return CLikeCodegen(self.lowered, self.plan).generate_program()

    # -- resource classification ------------------------------------------------

    def _linear_extra_roots(self) -> set[str]:
        return {
            p.site.root
            for p in self.plan.site_plans.values()
            if p.site.kind == "extra" and p.mode in ("linear", "hoisted")
        }

    def _nested_extra_roots(self) -> set[str]:
        return {
            p.site.root
            for p in self.plan.site_plans.values()
            if p.site.kind == "extra" and p.mode == "nested"
        }

    # -- binding --------------------------------------------------------------------

    def bind(
        self,
        data: ChapelArray | np.ndarray | LinearizedBuffer,
        extras: dict[str, Any] | None = None,
        n_elements: int | None = None,
    ) -> "BoundReduction":
        """Bind the compiled kernel to a dataset and extra values.

        ``data`` may be a Chapel array over the element type (linearized via
        Algorithm 2), a numpy fast path for flat real elements, or an
        already-linearized buffer (reuse across outer iterations; pass
        ``n_elements``).
        """
        counters = OpCounters()
        elem_t = self.lowered.element_type
        with get_tracer().span(
            "linearize_data", cat="linearize", reduction=self.name
        ) as span:
            data_buf, n = self._linearize_data(data, elem_t, counters, n_elements)
            span.set(n_elements=n, bytes=data_buf.nbytes)

        env: dict[str, Any] = {
            "compute_index": compute_index,
            "elem_sizeof": elem_t.sizeof,
            "sqrt": math.sqrt,
            "floor": math.floor,
            "exp": math.exp,
            "log": math.log,
        }
        bound = BoundReduction(
            compiled=self, env=env, counters=counters, n_elements=n, data_buf=data_buf
        )
        self._install_site_resources(env, data_buf)
        bound.update_extras(extras or {})
        return bound

    def _linearize_data(
        self,
        data: ChapelArray | np.ndarray | LinearizedBuffer,
        elem_t: ChapelType,
        counters: OpCounters,
        n_elements: int | None,
    ) -> tuple[LinearizedBuffer, int]:
        if isinstance(data, LinearizedBuffer):
            if n_elements is None:
                if data.nbytes % elem_t.sizeof:
                    raise CompilerError("buffer size is not a multiple of element size")
                n_elements = data.nbytes // elem_t.sizeof
            return data, n_elements
        if isinstance(data, ChapelArray):
            if data.type.elt != elem_t:
                raise CompilerError(
                    f"dataset elements are {data.type.elt}, kernel expects {elem_t}"
                )
            buf = linearize_it(data, data.type, counters)
            return buf, len(data)
        if isinstance(data, np.ndarray):
            # Fast path: flat arrays of one primitive element type.
            expected = self._numpy_element_shape(elem_t)
            arr = np.ascontiguousarray(data, dtype=expected[1])
            if arr.ndim >= 1 and arr.shape[1:] == expected[0]:
                raw = arr.reshape(-1).view(np.uint8)
                counters.bytes_linearized += raw.size
                dataset_t = ArrayType(Domain(int(arr.shape[0])), elem_t)
                return LinearizedBuffer(typ=dataset_t, raw=raw), int(arr.shape[0])
            raise CompilerError(
                f"numpy dataset shape {arr.shape} does not match element {elem_t}"
            )
        raise CompilerError(f"cannot bind data of type {type(data)}")

    @staticmethod
    def _numpy_element_shape(elem_t: ChapelType) -> tuple[tuple[int, ...], np.dtype]:
        if isinstance(elem_t, PrimitiveType):
            return (), np.dtype(elem_t.dtype)
        if isinstance(elem_t, ArrayType) and isinstance(elem_t.elt, PrimitiveType):
            return elem_t.domain.shape, np.dtype(elem_t.elt.dtype)
        raise CompilerError(
            f"numpy fast path supports flat primitive elements, not {elem_t}"
        )

    def _install_site_resources(self, env: dict[str, Any], data_buf: LinearizedBuffer) -> None:
        installed: set[int] = set()
        for plan in self.plan.site_plans.values():
            site = plan.site
            kid = self.keys[site_key(site)]
            if plan.mode == "nested" or kid in installed:
                continue
            if site.kind == "data":
                installed.add(kid)
                info = site.info
                assert info is not None
                env[f"info_{kid}"] = info
                env[f"buf_{kid}"] = data_buf.raw  # native backend reads it raw
                env[f"read_{kid}"] = _make_reader(data_buf.raw, info.inner_dtype)
                env[f"view_{kid}"] = _make_viewer(
                    data_buf.raw, info.inner_dtype, info.inner_extent
                )
                if self.batch_kernel is not None:
                    esz = self.lowered.element_type.sizeof
                    env[f"lanes_{kid}"] = _make_lane_reader(
                        data_buf.raw, info.inner_dtype, esz
                    )
                    env[f"rows_{kid}"] = _make_lane_viewer(
                        data_buf.raw, info.inner_dtype, esz, info.inner_extent
                    )
            # linear extras are installed by update_extras

    # -- compiled artifacts ---------------------------------------------------------

    def describe(self) -> str:
        """Human-readable summary (version, sites, plan modes)."""
        lines = [f"{self.name} [{self.version_name}]"]
        for plan in self.plan.site_plans.values():
            lines.append(
                f"  {plan.site.expr} ({plan.site.kind}) -> {plan.mode}"
            )
        return "\n".join(lines)


@dataclass
class BoundReduction:
    """A compiled kernel bound to concrete data — runnable on the engine."""

    compiled: CompiledReduction
    env: dict[str, Any]
    counters: OpCounters
    n_elements: int
    data_buf: LinearizedBuffer
    extras_values: dict[str, Any] = field(default_factory=dict)
    #: bumped on every (re)bind of extras; process-mode workers cache their
    #: bound kernel per dataset and re-run ``update_extras`` only when the
    #: parent's epoch moved (one small pickle per k-means iteration, not per
    #: split)
    extras_epoch: int = 0

    def update_extras(self, extras: dict[str, Any]) -> None:
        """(Re)bind extra values — e.g. new centroids each k-means iteration.

        Extras that the plan linearizes (opt-2) are copied into fresh dense
        buffers here, charging ``bytes_linearized``; nested extras are
        installed as live Chapel values.
        """
        self.extras_values = dict(extras)
        comp = self.compiled
        needed = set(comp.lowered.extra_types)
        missing = needed - set(extras)
        if missing:
            raise CompilerError(f"missing extras: {sorted(missing)}")

        linear_roots = comp._linear_extra_roots()
        nested_roots = comp._nested_extra_roots()
        buffers: dict[str, LinearizedBuffer] = {}
        tracer = get_tracer()
        for root in linear_roots:
            value = extras[root]
            etype = comp.lowered.extra_types[root]
            with tracer.span(
                "linearize_extras", cat="linearize",
                reduction=comp.name, extra=root,
            ) as span:
                buffers[root] = linearize_it(value, etype, self.counters)
                span.set(bytes=buffers[root].nbytes)
        for root in nested_roots:
            self.env[f"val_{root}"] = extras[root]

        for plan in comp.plan.site_plans.values():
            site = plan.site
            if site.kind != "extra" or plan.mode == "nested":
                continue
            kid = comp.keys[site_key(site)]
            info = site.info
            assert info is not None
            buf = buffers[site.root]
            self.env[f"info_{kid}"] = info
            self.env[f"buf_{kid}"] = buf.raw  # native backend reads it raw
            self.env[f"read_{kid}"] = _make_reader(buf.raw, info.inner_dtype)
            self.env[f"view_{kid}"] = _make_viewer(
                buf.raw, info.inner_dtype, info.inner_extent
            )
        self.extras_epoch += 1

    # -- direct execution (tests) -----------------------------------------------------

    def run_serial(self, ro: Any) -> None:
        """Run the kernel over all elements with a bare accessor (tests)."""
        self.compiled.effective_kernel(0, self.n_elements, ro, self.env, self.counters)

    def run_gathered(self, indices: np.ndarray, ro: Any) -> int:
        """Run the kernel once over a gathered copy of scattered elements.

        The delta-retraction fast path: dispatching the kernel per
        contiguous run costs a fixed overhead that dwarfs the work for
        single-element runs, so the retracted elements are gathered into
        a temporary contiguous buffer and the kernel runs once over it.
        Position-independent kernels run gathered under every backend:
        the kernel reads its data buffers out of the env at call time,
        and the gathered shim buffer is installed into a per-call copy
        of the env.  Position-dependent kernels (``elemIdx()``) are only
        supported on the batch backend, which accepts the elements' true
        global indices through the env (``_elem_indices``) instead of
        deriving them from ``range(start, end)``; other backends raise.
        Callers should consult :attr:`gather_supported` first.  Returns
        the element count.
        """
        comp = self.compiled
        if comp.position_dependent and comp.effective_backend != "batch":
            raise CompilerError(
                f"kernel {comp.name} uses elemIdx(); gathered execution "
                f"needs the batch backend, not {comp.effective_backend}"
            )
        idx = np.asarray(indices, dtype=np.intp)
        k = int(idx.size)
        if k == 0:
            return 0
        elem_t = comp.lowered.element_type
        esz = elem_t.sizeof
        rows = self.data_buf.raw[: self.n_elements * esz].reshape(
            self.n_elements, esz
        )
        gathered = np.ascontiguousarray(rows[idx]).reshape(-1)
        shim = LinearizedBuffer(typ=ArrayType(Domain(k), elem_t), raw=gathered)
        env = dict(self.env)
        comp._install_site_resources(env, shim)
        if comp.position_dependent:
            env["_elem_indices"] = idx.astype(np.int64)
        comp.effective_kernel(0, k, ro, env, self.counters)
        return k

    @property
    def gather_supported(self) -> bool:
        """Whether :meth:`run_gathered` can run this kernel."""
        comp = self.compiled
        return not comp.position_dependent or comp.effective_backend == "batch"

    # -- delta execution ---------------------------------------------------------------

    def append_elements(self, data: "ChapelArray | np.ndarray") -> int:
        """Extend the bound dataset with new elements, in place.

        The delta-execution append path: only the new elements are
        linearized (the existing prefix is never re-walked — see
        :func:`~repro.compiler.linearize.linearize_append`), and the env's
        site readers/viewers are re-installed because growth past capacity
        reallocates the backing storage they view.  Returns the new
        element count.
        """
        comp = self.compiled
        elem_t = comp.lowered.element_type
        if isinstance(data, np.ndarray):
            expected = comp._numpy_element_shape(elem_t)
            arr = np.ascontiguousarray(data, dtype=expected[1])
            if not (arr.ndim >= 1 and arr.shape[1:] == expected[0]):
                raise CompilerError(
                    f"appended numpy shape {arr.shape} does not match "
                    f"element {elem_t}"
                )
            raw = arr.reshape(-1).view(np.uint8)
            old_bytes = self.data_buf.raw.size
            self.data_buf.grow(old_bytes + raw.size)
            self.data_buf.raw[old_bytes:] = raw
            new_n = self.n_elements + int(arr.shape[0])
            self.data_buf.typ = ArrayType(Domain(new_n), elem_t)
            self.counters.bytes_linearized += int(raw.size)
        elif isinstance(data, ChapelArray):
            if data.type.elt != elem_t:
                raise CompilerError(
                    f"appended elements are {data.type.elt}, kernel "
                    f"expects {elem_t}"
                )
            new_n = linearize_append(self.data_buf, data, self.counters)
        else:
            raise CompilerError(f"cannot append data of type {type(data)}")
        self.n_elements = new_n
        comp._install_site_resources(self.env, self.data_buf)
        return new_n

    def truncate_elements(self, n_elements: int) -> None:
        """Roll the dataset back to ``n_elements`` (failed append batch)."""
        if not 0 <= n_elements <= self.n_elements:
            raise CompilerError(
                f"cannot truncate to {n_elements} of {self.n_elements} elements"
            )
        elem_t = self.compiled.lowered.element_type
        self.data_buf.shrink(n_elements * elem_t.sizeof)
        self.data_buf.typ = ArrayType(Domain(n_elements), elem_t)
        self.n_elements = n_elements
        self.compiled._install_site_resources(self.env, self.data_buf)

    # -- FREERIDE integration ------------------------------------------------------------

    def make_spec(
        self,
        ro_layout: Sequence[tuple[int, str]],
        finalize: Callable[[ReductionObject], Any] | None = None,
        delta_range: tuple[int, int] | None = None,
    ) -> tuple[ReductionSpec, range]:
        """Build a FREERIDE spec; the engine data is the element index range.

        The spec closes over :attr:`CompiledReduction.effective_kernel`, so
        the engine dispatches the batch kernel per split (under both the
        serial and threaded executors) whenever the batch backend compiled,
        and the scalar kernel otherwise.

        ``delta_range`` marks the spec as a delta pass over the appended
        element range ``[start, end)``: the returned engine data covers
        only that range and the range is recorded on the
        :class:`~repro.freeride.spec.KernelSpec` so the process executor
        can republish only the tail of the shared dataset segment.
        """
        kernel = self.compiled.effective_kernel
        env = self.env
        counters = self.counters
        layout = list(ro_layout)

        def setup(ro: ReductionObject) -> None:
            ro.alloc_many(layout)

        def reduction(args: ReductionArgs) -> None:
            # args.data is a contiguous slice of the global element index
            # range; use its VALUES (not split-local positions) so the
            # kernel addresses the right elements under multi-node splits,
            # where each node re-splits its own sub-range.
            indices = args.data
            if len(indices) == 0:
                return
            kernel(indices[0], indices[-1] + 1, args.ro, env, counters)

        comp = self.compiled
        kernel_spec = None
        if comp.origin_source is not None:
            # The picklable twin of this spec: everything a worker process
            # needs to recompile the kernel (through its own cache) and bind
            # it against the shared-memory dataset, plus parent-side handles
            # (raw buffer, live counter ledger) the engine uses directly.
            kernel_spec = KernelSpec(
                digest=comp.origin_digest,
                source=comp.origin_source,
                constants=dict(comp.origin_constants or {}),
                opt_level=comp.opt_level,
                backend=comp.backend,
                class_name=comp.origin_class_name,
                ro_layout=tuple((int(n), str(op)) for n, op in layout),
                n_elements=self.n_elements,
                dataset_type=self.data_buf.typ,
                extras=dict(self.extras_values),
                extras_epoch=self.extras_epoch,
                technique=comp.technique,
                effective_backend=comp.effective_backend,
                native_disk_hit=(
                    not comp.native_kernel.native.compiled
                    if comp.native_kernel is not None
                    else None
                ),
                delta_range=delta_range,
                data_raw=self.data_buf.raw,
                counters=counters,
            )

        spec = ReductionSpec(
            name=f"{self.compiled.name}-{self.compiled.version_name}",
            setup_reduction_object=setup,
            reduction=reduction,
            finalize=finalize,
            kernel_spec=kernel_spec,
            group_bounds=comp.group_bounds,
        )
        if delta_range is not None:
            start, end = delta_range
            if not 0 <= start <= end <= self.n_elements:
                raise CompilerError(
                    f"delta range {delta_range} outside [0, {self.n_elements}]"
                )
            return spec, range(start, end)
        return spec, range(self.n_elements)


def compile_reduction(
    source: str | A.Program,
    constants: dict[str, Any],
    opt_level: int = 0,
    class_name: str | None = None,
    backend: str = "scalar",
    technique: str = "generic",
) -> CompiledReduction:
    """Compile a mini-Chapel reduction class at one optimization level.

    ``backend`` selects the execution strategy: ``"scalar"`` (default)
    emits only the per-element interpreted kernel; ``"batch"`` additionally
    emits the split-level NumPy kernel and dispatches it everywhere the
    scalar kernel would run.  If the batch emitter cannot vectorize the
    reduction, compilation falls back to the scalar kernel for the whole
    reduction and records (and logs) the reason in
    :attr:`CompiledReduction.batch_fallback_reason`.  ``"native"`` JIT
    compiles the kernel to machine code via the system C compiler
    (:mod:`repro.compiler.native`; ``.so`` artifacts persist in an
    on-disk cache keyed by format version + toolchain fingerprint, so a
    warm start only dlopens).  A kernel the C emitter refuses — or an
    unusable toolchain — downgrades to the batch tier (then scalar) with
    the reason in :attr:`CompiledReduction.native_fallback_reason`; every
    compile records a ``kernel_backend`` trace event with the requested
    vs. effective backend.

    ``technique`` selects the kernel variant: ``"generic"`` (default) runs
    under every shared-memory accessor; ``"colored"`` emits the
    ``exclusive`` hint on batch RO updates for the COLORED technique.  Both
    variants are semantically identical — the hint only documents that the
    caller's wave schedule guarantees exclusive access.
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if technique not in KERNEL_TECHNIQUES:
        raise ValueError(
            f"technique must be one of {KERNEL_TECHNIQUES}, got {technique!r}"
        )
    tracer = get_tracer()
    with tracer.span(
        "compile", cat="compiler", opt_level=opt_level, backend=backend
    ) as compile_span:
        with tracer.span("parse", cat="compiler"):
            program = parse_program(source) if isinstance(source, str) else source
        with tracer.span("lower", cat="compiler"):
            lowered = lower_reduction(program, constants, class_name)
        compile_span.set(reduction=lowered.name)
        with tracer.span("plan", cat="compiler", reduction=lowered.name):
            plan = plan_compilation(lowered, opt_level)
        with tracer.span("codegen", cat="compiler", reduction=lowered.name):
            pygen = PythonCodegen(lowered, plan)
            python_source = pygen.generate()
            c_source = CLikeCodegen(lowered, plan).generate()
            namespace: dict[str, Any] = {}
            exec(
                compile(
                    python_source, f"<kernel:{lowered.name}:opt{opt_level}>", "exec"
                ),
                namespace,
            )

        # One effect analysis drives the group-bounds hull (coloring), the
        # batch emitter's bounded-gather proofs, and the native emitter's
        # bounds-check elision.
        group_bounds = analyze_group_bounds(lowered)

        native_source: str | None = None
        native_kernel: Callable | None = None
        native_fallback_reason: str | None = None
        if backend == "native":
            from repro.compiler import native as native_mod

            with tracer.span(
                "native_codegen", cat="compiler", reduction=lowered.name
            ) as native_span:
                try:
                    nk = native_mod.compile_native(
                        lowered, plan, summary=group_bounds.summary
                    )
                except native_mod.NativeUnsupported as exc:
                    native_fallback_reason = str(exc)
                    native_span.set(fallback=True)
                    if exc.toolchain:
                        # the probe already warned once; emit exactly one
                        # process-wide native_fallback event for it too
                        if native_mod.take_toolchain_event():
                            tracer.event(
                                "native_fallback",
                                cat="compiler",
                                reduction=lowered.name,
                                opt_level=opt_level,
                                reason=native_fallback_reason,
                                toolchain=True,
                            )
                    else:
                        _log.warning(
                            "native backend fell back for %s [opt%d]: %s",
                            lowered.name,
                            opt_level,
                            native_fallback_reason,
                        )
                        tracer.event(
                            "native_fallback",
                            cat="compiler",
                            reduction=lowered.name,
                            opt_level=opt_level,
                            reason=native_fallback_reason,
                            toolchain=False,
                        )
                else:
                    native_source = nk.source
                    native_kernel = native_mod.make_native_kernel(
                        nk, lowered.name
                    )
                    native_span.set(
                        cache_hit=not nk.compiled, symbol=nk.symbol
                    )

        batch_source: str | None = None
        batch_kernel: Callable | None = None
        batch_fallback_reason: str | None = None
        # The batch kernel is the fallback tier for a downgraded native
        # request, so branch-heavy kernels still vectorize what they can.
        if backend == "batch" or (backend == "native" and native_kernel is None):
            with tracer.span(
                "batch_codegen", cat="compiler", reduction=lowered.name
            ) as batch_span:
                batchgen = BatchCodegen(
                    lowered,
                    plan,
                    exclusive=(technique == "colored"),
                    summary=group_bounds.summary,
                )
                try:
                    batch_source = batchgen.generate()
                except BatchUnsupported as exc:
                    batch_fallback_reason = str(exc)
                    batch_span.set(fallback=True)
                    _log.warning(
                        "batch backend fell back to scalar for %s [opt%d]: %s",
                        lowered.name,
                        opt_level,
                        batch_fallback_reason,
                    )
                    tracer.event(
                        "batch_fallback",
                        cat="compiler",
                        reduction=lowered.name,
                        opt_level=opt_level,
                        reason=batch_fallback_reason,
                    )
                else:
                    batch_ns: dict[str, Any] = dict(BATCH_NAMESPACE)
                    exec(
                        compile(
                            batch_source,
                            f"<batch-kernel:{lowered.name}:opt{opt_level}>",
                            "exec",
                        ),
                        batch_ns,
                    )
                    batch_kernel = batch_ns["_batch_kernel"]
                for proof in batchgen.taint.gather_proofs.values():
                    tracer.event(
                        "batch_gather_proof" if proof["proven"]
                        else "batch_gather_refuted",
                        cat="compiler",
                        reduction=lowered.name,
                        opt_level=opt_level,
                        **{
                            k: v
                            for k, v in proof.items()
                            if k != "proven" and v is not None
                        },
                    )

    effective = (
        "native"
        if native_kernel is not None
        else ("batch" if batch_kernel is not None else "scalar")
    )
    tracer.event(
        "kernel_backend",
        cat="compiler",
        reduction=lowered.name,
        opt_level=opt_level,
        requested=backend,
        effective=effective,
        reason=native_fallback_reason or batch_fallback_reason,
    )

    return CompiledReduction(
        lowered=lowered,
        plan=plan,
        python_source=python_source,
        c_source=c_source,
        kernel=namespace["_kernel"],
        keys=dict(pygen.keys),
        backend=backend,
        technique=technique,
        group_bounds=group_bounds,
        batch_source=batch_source,
        batch_kernel=batch_kernel,
        batch_fallback_reason=batch_fallback_reason,
        native_source=native_source,
        native_kernel=native_kernel,
        native_fallback_reason=native_fallback_reason,
        origin_source=source,
        origin_constants=dict(constants),
        origin_class_name=class_name,
    )
