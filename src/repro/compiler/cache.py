"""Process-wide compiled-kernel cache.

``compile_reduction`` re-lowers, re-plans and re-``exec``'s kernel source on
every call; apps and benchmarks compile the same program again and again
(apriori even recompiles per counting pass).  :func:`compile_cached`
memoizes the finished :class:`~repro.compiler.translate.CompiledReduction`
keyed by ``(program digest, version, backend, technique)`` and records the
plan fingerprint alongside each entry, matching the paper's one-time
translation cost model.  The kernel *technique* is part of the key because
the COLORED variant emits a different accumulate path (the ``exclusive``
hint) from the same program — without it, a kernel compiled for one
technique could be served to another (cross-technique cache poisoning).
Cached objects hold no bound data — binding happens per dataset on the
shared compiled object — so reuse across callers is safe.

The in-memory cache is the first tier of a two-tier lookup: entries are
kept in an **LRU** ordered dict bounded at :func:`kernel_cache_capacity`
entries (``set_kernel_cache_capacity`` to resize; evictions are counted
and reported per run as ``RunStats.kernel_cache_evictions``).  The second
tier is the *on-disk* native-kernel cache (:mod:`repro.compiler.native`):
an evicted or cold-started ``backend="native"`` entry recompiles its
Python/batch parts but finds the compiled shared library on disk and
dlopens it without invoking the toolchain.

Hit/miss totals are exposed via :func:`kernel_cache_stats`; the engine
snapshots the counters before and after each run and reports the
*per-run deltas* as ``RunStats.kernel_cache_hits`` /
``RunStats.kernel_cache_evictions``, so back-to-back runs never inherit
each other's totals.  With tracing enabled every hit/miss also emits a
``kernel_cache.hit`` / ``kernel_cache.miss`` trace event.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Any

from repro.chapel import ast as A
from repro.compiler.passes import CompilationPlan
from repro.compiler.translate import (
    BACKENDS,
    KERNEL_TECHNIQUES,
    CompiledReduction,
    compile_reduction,
)
from repro.obs.tracer import get_tracer
from repro.util.errors import CompilerError

__all__ = [
    "compile_cached",
    "compile_for_digest",
    "clear_kernel_cache",
    "entry_fingerprint",
    "kernel_cache_capacity",
    "kernel_cache_stats",
    "plan_fingerprint",
    "program_digest",
    "set_kernel_cache_capacity",
]

_lock = threading.Lock()
_cache: OrderedDict[
    tuple[str, int, str, str], tuple[str, CompiledReduction]
] = OrderedDict()
_hits = 0
_misses = 0
_evictions = 0
#: Default LRU bound — generous for every realistic app mix (apps compile a
#: handful of (version, backend, technique) variants), small enough that a
#: sweep over thousands of distinct programs cannot hold every kernel alive.
_DEFAULT_CAPACITY = 128
_capacity = _DEFAULT_CAPACITY


def kernel_cache_capacity() -> int:
    """The current LRU bound on the in-memory kernel cache."""
    with _lock:
        return _capacity


def set_kernel_cache_capacity(capacity: int) -> int:
    """Resize the LRU bound (evicting immediately if shrinking).

    Returns the previous capacity.  ``capacity`` must be >= 1.
    """
    global _capacity, _evictions
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity!r}")
    with _lock:
        previous = _capacity
        _capacity = capacity
        while len(_cache) > _capacity:
            _cache.popitem(last=False)
            _evictions += 1
    return previous


def program_digest(
    source: str | A.Program,
    constants: dict[str, Any],
    class_name: str | None = None,
) -> str:
    """Stable digest of one compilation request (program + constants)."""
    text = source if isinstance(source, str) else repr(source)
    payload = "\n".join(
        [
            text,
            json.dumps(constants, sort_keys=True, default=repr),
            class_name or "",
        ]
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def plan_fingerprint(plan: CompilationPlan) -> str:
    """Digest of the plan's decisions (site modes + hoist structure)."""
    parts = [f"opt{plan.opt_level}"]
    for sp in plan.site_plans.values():
        parts.append(f"{sp.site.expr}:{sp.site.kind}:{sp.mode}:{sp.hoist_id}")
    for hoists in list(plan.loop_hoists.values()) + list(
        plan.incremental_hoists.values()
    ):
        for h in hoists:
            parts.append(
                f"h{h.hoist_id}:{h.site.expr}:{h.incremental}:{h.step_bytes}"
            )
    return hashlib.sha256("\n".join(sorted(parts)).encode()).hexdigest()[:16]


def compile_cached(
    source: str | A.Program,
    constants: dict[str, Any],
    opt_level: int = 0,
    class_name: str | None = None,
    backend: str = "scalar",
    technique: str = "generic",
) -> CompiledReduction:
    """Like :func:`compile_reduction`, but memoized process-wide.

    The cache key is ``(program digest, opt_level, backend, technique)``;
    each entry stores the resulting plan's fingerprint — extended for
    colored entries with the group-bounds fingerprint, which determines the
    wave layout — so distinct compilation outcomes can never alias (a
    digest pins source + constants, which fully determine plan and bounds
    at a given level; the fingerprint is verified on every hit).
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if technique not in KERNEL_TECHNIQUES:
        raise ValueError(
            f"technique must be one of {KERNEL_TECHNIQUES}, got {technique!r}"
        )
    global _hits, _misses
    tracer = get_tracer()
    key = (
        program_digest(source, constants, class_name),
        opt_level,
        backend,
        technique,
    )
    with _lock:
        entry = _cache.get(key)
        if entry is not None:
            _hits += 1
            _cache.move_to_end(key)  # LRU: a hit refreshes recency
            if tracer.enabled:
                tracer.event(
                    "kernel_cache.hit", cat="cache", digest=key[0][:12],
                    opt_level=opt_level, backend=backend, technique=technique,
                )
            return entry[1]
    compiled = compile_reduction(
        source, constants, opt_level, class_name, backend, technique
    )
    fingerprint = entry_fingerprint(compiled)
    global _evictions
    with _lock:
        entry = _cache.get(key)
        if entry is not None:  # lost a compile race; keep the first
            _hits += 1
            _cache.move_to_end(key)
            return entry[1]
        _misses += 1
        _cache[key] = (fingerprint, compiled)
        while len(_cache) > _capacity:
            _cache.popitem(last=False)
            _evictions += 1
    if tracer.enabled:
        tracer.event(
            "kernel_cache.miss", cat="cache", digest=key[0][:12],
            opt_level=opt_level, backend=backend, technique=technique,
            reduction=compiled.name,
        )
    return compiled


def entry_fingerprint(compiled: CompiledReduction) -> str:
    """Fingerprint stored with a cache entry.

    Plan fingerprint for generic kernels; colored kernels append the
    group-bounds fingerprint, since the bounds determine the wave layout
    the kernel's ``exclusive`` hint relies on.
    """
    fp = plan_fingerprint(compiled.plan)
    if compiled.technique == "colored" and compiled.group_bounds is not None:
        fp = f"{fp}:{compiled.group_bounds.fingerprint()}"
    return fp


def compile_for_digest(
    digest: str,
    source: str | A.Program,
    constants: dict[str, Any],
    opt_level: int = 0,
    class_name: str | None = None,
    backend: str = "scalar",
    technique: str = "generic",
) -> CompiledReduction:
    """Worker-process entry: compile through the cache, verifying ``digest``.

    A process-mode worker receives the parent's program digest alongside the
    source and constants; recomputing and checking it here guarantees the
    worker keys into *its* process-wide cache exactly where the parent keyed
    into its own — a payload whose source/constants drifted from its digest
    (a serialization bug, not a user error) fails loudly instead of
    compiling a different kernel than the parent measured.
    """
    actual = program_digest(source, constants, class_name)
    if actual != digest:
        raise CompilerError(
            f"kernel payload digest mismatch: expected {digest[:12]}..., "
            f"source+constants hash to {actual[:12]}..."
        )
    return compile_cached(
        source, constants, opt_level, class_name, backend, technique
    )


def kernel_cache_stats() -> dict[str, int]:
    """Process-wide totals: hits, misses, evictions, entries, capacity."""
    with _lock:
        return {
            "hits": _hits,
            "misses": _misses,
            "evictions": _evictions,
            "entries": len(_cache),
            "capacity": _capacity,
        }


def clear_kernel_cache() -> None:
    """Drop all cached kernels and reset the counters (tests).

    The capacity is reset to the default; the on-disk native-kernel cache
    is untouched (delete its directory, or point ``REPRO_KERNEL_CACHE``
    elsewhere, to cold-start the second tier too).
    """
    global _hits, _misses, _evictions, _capacity
    with _lock:
        _cache.clear()
        _hits = 0
        _misses = 0
        _evictions = 0
        _capacity = _DEFAULT_CAPACITY
