"""Index mapping — the paper's Algorithm 3 (``computeIndex``) and Figure 6.

Once a nested structure has been linearized, every access on the original
view must be rewritten into a byte offset in the dense buffer.  The paper's
Figure 6 lists the metadata collected during linearization:

``levels``
    number of array levels along the access path;
``unitSize[]``
    packed byte size of one element at each level
    (``{unitSize_B, unitSize_A, sizeof(real)}`` for the running example);
``unitOffset[][]``
    per level, the member-offset table of the record traversed between this
    level and the next (``{{unitOffset_B[]}, {unitOffset_A[]}}``);
``position[][]``
    per level, which member of that table the path actually uses
    (``position[0][0] = 0, position[1][0] = 0`` — both ``b1`` and ``a1`` are
    first members);
``myIndex[]``
    the loop indices, collected from the accumulate function at run time.

:func:`collect_mapping_info` computes everything static;
:func:`compute_index` is the faithful recursive Algorithm 3; and
:func:`vectorized_offsets` / :func:`contiguous_run` are the vectorized and
strength-reduced (opt-1) forms used by generated kernels.

Generalizations beyond the paper's pseudo-code, both documented here:

* a level may traverse a *chain* of record members, so ``unitOffset[i]`` is
  a tuple of member tables and ``position[i]`` a tuple of positions (the
  paper's example has exactly one member per level);
* a trailing member chain after the innermost index (e.g. ``data[i].b2``)
  contributes a constant ``trailing_offset``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.chapel.domains import Domain
from repro.chapel.types import ArrayType, ChapelType, RecordType
from repro.compiler.access import AccessPath, FieldStep, IndexStep
from repro.util.errors import MappingError

__all__ = [
    "MappingInfo",
    "collect_mapping_info",
    "compute_index",
    "compute_index_chapel",
    "vectorized_offsets",
    "contiguous_run",
]


@dataclass(frozen=True)
class MappingInfo:
    """Everything Figure 6 collects during linearization, plus domains."""

    path: AccessPath
    root: ArrayType
    levels: int
    unit_size: tuple[int, ...]
    unit_offset: tuple[tuple[tuple[int, ...], ...], ...]
    position: tuple[tuple[int, ...], ...]
    trailing_offset: int
    domains: tuple[Domain, ...]  # iteration domain of each level
    inner_dtype: np.dtype  # dtype of the scalar the path reads

    @property
    def level_offsets(self) -> tuple[int, ...]:
        """Derived: total member-offset contribution per non-innermost level.

        Has ``levels - 1`` entries; the innermost level contributes no
        inter-level member offset (Algorithm 3's base case).
        """
        out = []
        for tables, poss in zip(self.unit_offset[:-1], self.position[:-1]):
            out.append(sum(table[p] for table, p in zip(tables, poss)))
        return tuple(out)

    @property
    def inner_extent(self) -> int:
        """Number of contiguous innermost scalars (opt-1's run length)."""
        return self.domains[-1].size

    def dense_positions(self, chapel_indices: Sequence) -> tuple[int, ...]:
        """Convert per-level Chapel indices to 0-based dense ``myIndex[]``."""
        if len(chapel_indices) != self.levels:
            raise MappingError(
                f"expected {self.levels} per-level indices, got {len(chapel_indices)}"
            )
        return tuple(
            dom.flat_position(idx) for dom, idx in zip(self.domains, chapel_indices)
        )


def collect_mapping_info(root: ChapelType, path: AccessPath | str) -> MappingInfo:
    """Analyze ``path`` against ``root`` and collect the Figure 6 metadata."""
    if isinstance(path, str):
        path = AccessPath.parse(path)
    if not isinstance(root, ArrayType):
        raise MappingError(f"mapping requires an array-typed dataset, got {root}")
    inner = path.validate_scalar(root)

    unit_size: list[int] = []
    unit_offset: list[tuple[tuple[int, ...], ...]] = []
    position: list[tuple[int, ...]] = []
    domains: list[Domain] = []

    # Walk the path, grouping field chains with the level they follow.
    pending_tables: list[tuple[int, ...]] = []
    pending_positions: list[int] = []
    level_open = False

    def close_level() -> None:
        nonlocal pending_tables, pending_positions, level_open
        if level_open:
            unit_offset.append(tuple(pending_tables))
            position.append(tuple(pending_positions))
            pending_tables, pending_positions = [], []
            level_open = False

    cur: ChapelType = root
    for step in path.steps:
        if isinstance(step, IndexStep):
            close_level()
            assert isinstance(cur, ArrayType)  # validated by walk below
            unit_size.append(cur.elt.sizeof)
            domains.append(cur.domain)
            cur = cur.elt
            level_open = True
        else:
            assert isinstance(step, FieldStep)
            if not isinstance(cur, RecordType):
                raise MappingError(f"field {step.name!r} on non-record {cur}")
            table = tuple(cur.field_offsets[n] for n in cur.field_names)
            pending_tables.append(table)
            pending_positions.append(cur.field_position(step.name))
            cur = cur.field_type(step.name)
    # Whatever chain remains after the innermost index is the trailing chain.
    trailing = sum(
        table[p] for table, p in zip(pending_tables, pending_positions)
    )
    # The innermost level carries no inter-level member table (Algorithm 3's
    # base case has only unitSize[i] * myIndex[i]); record empties for it.
    unit_offset.append(())
    position.append(())

    levels = len(unit_size)
    if levels != path.levels:  # pragma: no cover - structural invariant
        raise MappingError("level bookkeeping mismatch")

    return MappingInfo(
        path=path,
        root=root,
        levels=levels,
        unit_size=tuple(unit_size),
        unit_offset=tuple(unit_offset[:levels]),
        position=tuple(position[:levels]),
        trailing_offset=trailing,
        domains=tuple(domains),
        inner_dtype=np.dtype(inner.dtype),
    )


def compute_index(
    info: MappingInfo, my_index: Sequence[int], i: int = 0
) -> int:
    """Algorithm 3, verbatim recursion, over 0-based dense ``myIndex[]``.

    Returns the byte offset of the addressed scalar in the linearized
    buffer (plus the trailing-chain constant when the path has one).
    """
    if len(my_index) != info.levels:
        raise MappingError(
            f"myIndex has {len(my_index)} entries for {info.levels} levels"
        )
    dom = info.domains[i]
    if not 0 <= my_index[i] < dom.size:
        raise MappingError(
            f"myIndex[{i}] = {my_index[i]} out of range for level of size {dom.size}"
        )
    if i < info.levels - 1:
        index = info.unit_size[i] * my_index[i] + info.level_offsets[i]
        index += compute_index(info, my_index, i + 1)
    else:
        index = info.unit_size[i] * my_index[i] + info.trailing_offset
    return index


def compute_index_chapel(info: MappingInfo, chapel_indices: Sequence) -> int:
    """Algorithm 3 on Chapel-style per-level indices (e.g. 1-based)."""
    return compute_index(info, info.dense_positions(chapel_indices))


def vectorized_offsets(
    info: MappingInfo, my_index_arrays: Sequence[np.ndarray]
) -> np.ndarray:
    """Byte offsets for whole index arrays at once (broadcasting).

    The vectorized form of Algorithm 3: the per-level terms are affine, so
    the offsets are a broadcast sum.  Used by vectorized kernels and tests.
    """
    if len(my_index_arrays) != info.levels:
        raise MappingError(
            f"need {info.levels} index arrays, got {len(my_index_arrays)}"
        )
    total: np.ndarray | float = float(info.trailing_offset)
    offsets = info.level_offsets
    for i, arr in enumerate(my_index_arrays):
        term = np.asarray(arr, dtype=np.int64) * info.unit_size[i]
        if i < info.levels - 1:
            term = term + offsets[i]
        total = total + term
    return np.asarray(total, dtype=np.int64)


def contiguous_run(info: MappingInfo, outer_index: Sequence[int]) -> tuple[int, int]:
    """Opt-1 helper: the byte base and scalar count of one innermost run.

    "Since the inner-most level of the data is continuous, we can move the
    computeIndex function outside of the k loop, and only calculate the
    address of the first element" — this returns that first address plus
    the run length.  Only valid when the path has no trailing chain (the
    innermost scalars must be adjacent).
    """
    if info.trailing_offset != 0:
        raise MappingError("innermost level is not contiguous (trailing members)")
    if len(outer_index) != info.levels - 1:
        raise MappingError(
            f"expected {info.levels - 1} outer indices, got {len(outer_index)}"
        )
    base = compute_index(info, tuple(outer_index) + (0,))
    return base, info.inner_extent
