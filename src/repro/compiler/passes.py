"""Optimization passes over the lowered reduction — the paper's §V versions.

The three compiled versions differ only in the *plan* these passes produce:

``generated`` (opt level 0)
    data accesses go through the linearized buffer with a full
    ``computeIndex`` call at every access; structured class fields
    (extras, e.g. the k-means centroids) remain nested Chapel accesses.
``opt-1`` (level 1)
    strength reduction: for an access whose innermost index is exactly the
    surrounding loop's variable (and whose outer indices are invariant in
    that loop), the ``computeIndex`` call is hoisted out of the loop — the
    base address of the contiguous innermost run is computed once and the
    loop indexes a typed view of the run.
``opt-2`` (level 2)
    additionally, the "frequently accessed output or temporary variables
    are only linearized, and accessed through the mapping algorithm" —
    extras are linearized too, and strength reduction applies to them.

The passes are analyses: they annotate sites and loops; the code generator
realizes the plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chapel import ast as A
from repro.compiler.access import IndexStep
from repro.compiler.lower import AccessSite, LoweredReduction, free_vars
from repro.util.errors import CompilerError

__all__ = ["SitePlan", "LoopHoist", "CompilationPlan", "plan_compilation", "VERSION_NAMES"]

VERSION_NAMES = {0: "generated", 1: "opt-1", 2: "opt-2", "manual": "manual FR"}


@dataclass
class SitePlan:
    """How codegen should realize one access site."""

    site: AccessSite
    mode: str  # "nested" | "linear" | "hoisted"
    hoist_id: int | None = None  # row variable id when mode == "hoisted"


@dataclass
class LoopHoist:
    """A strength-reduced row.

    Plain hoist: the row view is emitted just before ``loop`` (its base is
    invariant there).  Incremental hoist (``incremental`` set): the base
    depends affinely on the *enclosing* loop's variable, so — exactly as the
    paper describes opt-1 — "the start point ... is computed before the
    first iteration, and an appropriate pre-computed offset is added for
    each iteration": the base is initialized before the enclosing loop and
    bumped by ``step_bytes`` at the top of each of its iterations.
    """

    hoist_id: int
    site: AccessSite
    loop: A.ForStmt
    incremental: A.ForStmt | None = None  # the enclosing loop driving the base
    step_bytes: int = 0
    var_group: int = -1  # which index group (0-based, excl. wrapper) varies


@dataclass
class CompilationPlan:
    """The full plan for one optimization level."""

    opt_level: int
    site_plans: dict[int, SitePlan] = field(default_factory=dict)  # id(expr) ->
    loop_hoists: dict[int, list[LoopHoist]] = field(default_factory=dict)  # id(for) ->
    #: id(enclosing for) -> incremental hoists driven by that loop
    incremental_hoists: dict[int, list[LoopHoist]] = field(default_factory=dict)

    def plan_for(self, expr_id: int) -> SitePlan:
        return self.site_plans[expr_id]


def _bound_names(loop: A.ForStmt) -> set[str]:
    """Names bound or assigned anywhere inside a loop (incl. its variable)."""
    names = {loop.var}

    def walk(stmt: A.Stmt) -> None:
        if isinstance(stmt, A.VarDeclStmt):
            names.add(stmt.decl.name)
        elif isinstance(stmt, A.Assign):
            if isinstance(stmt.target, A.Ident):
                names.add(stmt.target.name)
        elif isinstance(stmt, A.ForStmt):
            names.add(stmt.var)
            for s in stmt.body.stmts:
                walk(s)
        elif isinstance(stmt, A.IfStmt):
            for s in stmt.then.stmts:
                walk(s)
            if stmt.orelse is not None:
                for s in stmt.orelse.stmts:
                    walk(s)

    for s in loop.body.stmts:
        walk(s)
    return names


class _LoopStackWalker:
    """Visits every expression with the enclosing for-loop stack available."""

    def __init__(self, plan: CompilationPlan, lowered: LoweredReduction) -> None:
        self.plan = plan
        self.low = lowered
        self.loops: list[A.ForStmt] = []
        self._next_hoist = 0

    # -- traversal ------------------------------------------------------------

    def walk_block(self, block: A.Block) -> None:
        for stmt in block.stmts:
            self.walk_stmt(stmt)

    def walk_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.VarDeclStmt):
            if stmt.decl.init is not None:
                self.visit_expr(stmt.decl.init)
        elif isinstance(stmt, A.Assign):
            self.visit_expr(stmt.value)
        elif isinstance(stmt, A.ForStmt):
            self.loops.append(stmt)
            self.walk_block(stmt.body)
            self.loops.pop()
        elif isinstance(stmt, A.IfStmt):
            self.visit_expr(stmt.cond)
            self.walk_block(stmt.then)
            if stmt.orelse is not None:
                self.walk_block(stmt.orelse)
        elif isinstance(stmt, A.ExprStmt):
            self.visit_expr(stmt.expr)
        elif isinstance(stmt, A.Block):  # pragma: no cover - not produced
            self.walk_block(stmt)

    def visit_expr(self, expr: A.Expr) -> None:
        site = self.low.sites.get(id(expr))
        if site is not None:
            self.visit_site(expr, site)
            # still visit index expressions (they may contain other sites)
            for group in site.index_exprs:
                for ie in group:
                    self.visit_expr(ie)
            return
        if isinstance(expr, A.BinOp):
            self.visit_expr(expr.left)
            self.visit_expr(expr.right)
        elif isinstance(expr, A.UnaryOp):
            self.visit_expr(expr.operand)
        elif isinstance(expr, A.Call):
            for a in expr.args:
                self.visit_expr(a)
        elif isinstance(expr, (A.Index, A.Member)):
            # chains not classified as sites were rejected at lower time
            raise CompilerError(f"unplanned access chain {expr}")  # pragma: no cover

    # -- planning --------------------------------------------------------------

    def visit_site(self, expr: A.Expr, site: AccessSite) -> None:
        level = self.plan.opt_level
        linear = site.kind == "data" or level >= 2
        if not linear:
            self.plan.site_plans[id(expr)] = SitePlan(site=site, mode="nested")
            return
        if level >= 1:
            target_idx = self._hoistable_loop(site)
            if target_idx is not None:
                loop = self.loops[target_idx]
                hoist = LoopHoist(self._next_hoist, site, loop)
                self._next_hoist += 1
                self._try_incremental(hoist, site, target_idx)
                if hoist.incremental is not None:
                    self.plan.incremental_hoists.setdefault(
                        id(hoist.incremental), []
                    ).append(hoist)
                else:
                    self.plan.loop_hoists.setdefault(id(loop), []).append(hoist)
                self.plan.site_plans[id(expr)] = SitePlan(
                    site=site, mode="hoisted", hoist_id=hoist.hoist_id
                )
                return
        self.plan.site_plans[id(expr)] = SitePlan(site=site, mode="linear")

    def _try_incremental(
        self, hoist: LoopHoist, site: AccessSite, target_idx: int
    ) -> None:
        """Upgrade a plain hoist to an incremental one when possible."""
        if target_idx == 0:
            return
        enclosing = self.loops[target_idx - 1]
        var = enclosing.var
        varying: list[int] = []
        other_free: set[str] = set()
        for gi, group in enumerate(site.index_exprs[:-1]):
            fv = set()
            for ie in group:
                fv |= free_vars(ie)
            if var in fv:
                varying.append(gi)
                # the varying level must be a bare 1-D loop-variable index
                if len(group) != 1 or not isinstance(group[0], A.Ident):
                    return
            else:
                other_free |= fv
        if len(varying) != 1:
            return
        # the remaining base inputs must be invariant in the enclosing loop
        if other_free & _bound_names(enclosing):
            return
        info = site.info
        assert info is not None
        wrapped = info.levels == len(site.index_exprs) + 1
        level_in_info = varying[0] + (1 if wrapped else 0)
        hoist.incremental = enclosing
        hoist.step_bytes = info.unit_size[level_in_info]
        hoist.var_group = varying[0]

    def _hoistable_loop(self, site: AccessSite) -> int | None:
        """Where to place the strength-reduced row computation.

        Step 1 (the paper's opt-1): find the innermost enclosing loop whose
        variable drives the site's innermost index — the row base can be
        computed just outside it.  Step 2 (standard LICM): keep climbing out
        of enclosing loops as long as the outer index expressions are
        invariant in them (their free variables are not bound/assigned
        inside), so e.g. the k-means point row is computed once per element
        rather than once per centroid.
        """
        if site.info is None or site.info.trailing_offset != 0:
            return None
        if not site.index_exprs:
            return None
        last_group = site.index_exprs[-1]
        if len(last_group) != 1 or not isinstance(last_group[0], A.Ident):
            return None
        var = last_group[0].name
        # the chain must END with that index step (no trailing members) —
        # trailing_offset == 0 already guarantees contiguity.
        if not (site.steps and isinstance(site.steps[-1], IndexStep)):
            return None
        # find the innermost enclosing loop with this variable
        target_idx = None
        for i, loop in enumerate(self.loops):
            if loop.var == var:
                target_idx = i
        if target_idx is None:
            return None
        outer_free: set[str] = set()
        for group in site.index_exprs[:-1]:
            for ie in group:
                outer_free |= free_vars(ie)
        # outer index expressions must be invariant in the target loop
        if outer_free & _bound_names(self.loops[target_idx]):
            return None
        # climb outward while the outer indices stay invariant
        while target_idx > 0 and not (
            outer_free & _bound_names(self.loops[target_idx - 1])
        ):
            target_idx -= 1
        return target_idx


def plan_compilation(lowered: LoweredReduction, opt_level: int) -> CompilationPlan:
    """Run the passes for one optimization level and return the plan."""
    if opt_level not in (0, 1, 2):
        raise CompilerError(f"opt_level must be 0, 1 or 2, got {opt_level!r}")
    plan = CompilationPlan(opt_level=opt_level)
    walker = _LoopStackWalker(plan, lowered)
    walker.walk_block(lowered.body)
    # Every site must have been planned.
    missing = set(lowered.sites) - set(plan.site_plans)
    if missing:  # pragma: no cover - traversal invariant
        raise CompilerError(f"{len(missing)} access sites left unplanned")
    return plan
