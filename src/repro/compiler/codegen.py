"""Code generation: lowered reduction + plan -> executable kernel source.

Two backends share one traversal strategy:

* :class:`PythonCodegen` emits an instrumented Python kernel.  Every data
  access, index computation, nested-structure access, arithmetic operation
  and reduction-object update increments an
  :class:`~repro.machine.counters.OpCounters` ledger, so running the kernel
  *measures* the operation mix of its optimization level; the simulated
  machine then prices those measurements.
* :class:`CLikeCodegen` emits C-flavored source text mirroring what the
  modified Chapel compiler would hand to its C backend (the paper's
  Figure 8 right-hand side) — used for inspection and golden tests.

Kernel calling convention::

    def _kernel(_start, _end, _ro, _env, _C):
        # processes global elements [_start, _end) of the linearized dataset

``_env`` carries the linearized buffers, per-site readers and mapping infos
(built by :mod:`repro.compiler.translate` at bind time); ``_ro`` is the
thread's reduction-object accessor; ``_C`` the counter ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chapel import ast as A
from repro.compiler.access import FieldStep, IndexStep
from repro.compiler.lower import AccessSite, LoweredReduction
from repro.compiler.passes import CompilationPlan, SitePlan
from repro.util.errors import CodegenError

__all__ = ["PythonCodegen", "CLikeCodegen", "site_key"]

_PY_BINOPS = {
    "+": "+",
    "-": "-",
    "*": "*",
    "/": "/",
    "%": "%",
    "==": "==",
    "!=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
    "&&": "and",
    "||": "or",
}

_MATH_BUILTINS = {
    "abs": "abs",
    "sqrt": "_sqrt",
    "min": "min",
    "max": "max",
    "floor": "_floor",
    "toInt": "int",
    "exp": "_exp",
    "log": "_log",
}


def site_key(site: AccessSite) -> str:
    """Sites with the same root and steps share buffers/infos/readers."""
    return f"{site.kind}:{site.root}:{''.join(str(s) for s in site.steps)}"


@dataclass
class _Cost:
    """Static per-execution operation counts for one statement."""

    counts: dict[str, int] = field(default_factory=dict)

    def bump(self, name: str, by: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + by

    def merge(self, other: "_Cost") -> None:
        for k, v in other.counts.items():
            self.bump(k, v)

    def lines(self, indent: str) -> list[str]:
        if not self.counts:
            return []
        parts = [f"_C.{k} += {v}" for k, v in sorted(self.counts.items())]
        return [indent + "; ".join(parts)]


class PythonCodegen:
    """Emit the instrumented Python kernel for one compilation plan."""

    def __init__(self, lowered: LoweredReduction, plan: CompilationPlan) -> None:
        self.low = lowered
        self.plan = plan
        self.lines: list[str] = []
        self.indent = 0
        # stable ids for shared site resources
        self.keys: dict[str, int] = {}
        for site in lowered.sites.values():
            self.keys.setdefault(site_key(site), len(self.keys))

    # -- small helpers ------------------------------------------------------

    def _w(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def _mangle(self, name: str) -> str:
        return f"u_{name}"

    def _key_id(self, site: AccessSite) -> int:
        return self.keys[site_key(site)]

    # -- expressions -------------------------------------------------------------

    def emit_expr(self, expr: A.Expr, cost: _Cost) -> str:
        site = self.low.sites.get(id(expr))
        if site is not None:
            return self.emit_site(expr, site, cost)
        if isinstance(expr, A.IntLit):
            return repr(expr.value)
        if isinstance(expr, A.RealLit):
            return repr(expr.value)
        if isinstance(expr, A.BoolLit):
            return "True" if expr.value else "False"
        if isinstance(expr, A.Ident):
            name = expr.name
            if name in self.low.constants:
                return repr(self.low.constants[name])
            return self._mangle(name)
        if isinstance(expr, A.BinOp):
            left = self.emit_expr(expr.left, cost)
            right = self.emit_expr(expr.right, cost)
            cost.bump("flops")
            return f"({left} {_PY_BINOPS[expr.op]} {right})"
        if isinstance(expr, A.UnaryOp):
            inner = self.emit_expr(expr.operand, cost)
            cost.bump("flops")
            return f"(-{inner})" if expr.op == "-" else f"(not {inner})"
        if isinstance(expr, A.Call):
            if expr.name in A.RO_INTRINSICS:
                raise CodegenError(
                    f"{expr.name} is a statement-level intrinsic, not an expression"
                )
            if expr.name == "elemIdx":
                return "_e"
            fn = _MATH_BUILTINS[expr.name]
            args = ", ".join(self.emit_expr(a, cost) for a in expr.args)
            cost.bump("flops")
            return f"{fn}({args})"
        raise CodegenError(f"cannot emit expression {expr!r}")  # pragma: no cover

    # -- access sites ---------------------------------------------------------------

    def _dense_level_exprs(
        self,
        site: AccessSite,
        cost: _Cost,
        override_groups: dict[int, str] | None = None,
    ) -> list[str]:
        """Dense 0-based position code per mapping level (incl. wrapper).

        ``override_groups`` replaces whole groups (keyed by 0-based group
        index, wrapper excluded) with precomputed dense code — used by
        hoist preambles (innermost -> "0") and incremental base inits
        (varying level -> its start position).
        """
        info = site.info
        assert info is not None
        dense: list[str] = []
        level_domains = list(info.domains)
        wrapped = self._site_wrapped(site)
        groups = list(site.index_exprs)
        if wrapped:
            # The wrapper level's index is always 0: for data, the dataset
            # level's contribution is the separate `_e * elem_sizeof` term;
            # for member-rooted extras, the synthetic wrapper has one slot.
            dense.append("0")
            level_domains = level_domains[1:]
        for gi, (dom, group) in enumerate(zip(level_domains, groups)):
            if override_groups is not None and gi in override_groups:
                dense.append(override_groups[gi])
                continue
            terms = []
            for dim, (rng, ie) in enumerate(zip(dom.ranges, group)):
                code = self.emit_expr(ie, cost)
                if rng.low != 0:
                    code = f"({code} - {rng.low})"
                # row-major scaling by the sizes of later dimensions
                scale = 1
                for later in dom.ranges[dim + 1 :]:
                    scale *= len(later)
                terms.append(code if scale == 1 else f"{code} * {scale}")
            dense.append(" + ".join(terms) if terms else "0")
        return dense

    @staticmethod
    def _site_wrapped(site: AccessSite) -> bool:
        if site.kind == "data":
            return True
        return not (site.steps and isinstance(site.steps[0], IndexStep))

    def emit_site(self, expr: A.Expr, site: AccessSite, cost: _Cost) -> str:
        plan = self.plan.plan_for(id(expr))
        if plan.mode == "nested":
            return self._emit_nested(site, cost)
        if plan.mode == "linear":
            return self._emit_linear(site, cost)
        if plan.mode == "hoisted":
            return self._emit_hoisted(site, plan, cost)
        raise CodegenError(f"unknown site mode {plan.mode!r}")  # pragma: no cover

    def _emit_nested(self, site: AccessSite, cost: _Cost) -> str:
        """Access through the real nested Chapel value (pointer chasing)."""
        code = f"_v_{site.root}"
        for step, group in self._steps_with_groups(site):
            if isinstance(step, FieldStep):
                code = f"{code}.{step.name}"
            else:
                idx = ", ".join(self.emit_expr(ie, cost) for ie in group)
                code = f"{code}[{idx}]"
        cost.bump("nested_reads")
        cost.bump("nested_steps", site.num_steps)
        return code

    def _steps_with_groups(self, site: AccessSite):
        groups = iter(site.index_exprs)
        for step in site.steps:
            if isinstance(step, IndexStep):
                yield step, next(groups)
            else:
                yield step, ()

    def _offset_code(self, site: AccessSite, cost: _Cost) -> str:
        kid = self._key_id(site)
        dense = self._dense_level_exprs(site, cost)
        base = f"_ci(_info_{kid}, ({', '.join(dense)},))"
        if site.kind == "data":
            base = f"_e * _esz + {base}"
        cost.bump("index_calls")
        cost.bump("index_levels", site.info.levels)  # type: ignore[union-attr]
        return base

    def _emit_linear(self, site: AccessSite, cost: _Cost) -> str:
        kid = self._key_id(site)
        cost.bump("linear_reads")
        return f"_rd_{kid}({self._offset_code(site, cost)})"

    def _emit_hoisted(self, site: AccessSite, plan: SitePlan, cost: _Cost) -> str:
        inner = site.index_exprs[-1][0]
        rng = site.info.domains[-1].ranges[0]  # type: ignore[union-attr]
        idx = self.emit_expr(inner, cost)
        if rng.low != 0:
            idx = f"{idx} - {rng.low}"
        cost.bump("linear_reads")
        return f"_row_{plan.hoist_id}[{idx}]"

    def _hoist_base_code(
        self,
        site: AccessSite,
        cost: _Cost,
        override_groups: dict[int, str],
    ) -> str:
        kid = self._key_id(site)
        num_groups = len(site.index_exprs)
        overrides = dict(override_groups)
        overrides[num_groups - 1] = "0"  # base of the innermost run
        dense = self._dense_level_exprs(site, cost, overrides)
        base = f"_ci(_info_{kid}, ({', '.join(dense)},))"
        if site.kind == "data":
            base = f"_e * _esz + {base}"
        cost.bump("index_calls")
        cost.bump("index_levels", site.info.levels)  # type: ignore[union-attr]
        return base

    def emit_hoist_preamble(self, loop: A.ForStmt) -> None:
        """Emit the strength-reduced row views placed just before a loop."""
        for hoist in self.plan.loop_hoists.get(id(loop), []):
            cost = _Cost()
            base = self._hoist_base_code(hoist.site, cost, {})
            kid = self._key_id(hoist.site)
            for line in cost.lines("    " * self.indent):
                self.lines.append(line)
            self._w(f"_row_{hoist.hoist_id} = _tv_{kid}({base})")

    def emit_incremental_inits(self, loop: A.ForStmt) -> None:
        """Base pointers for incremental hoists driven by this loop.

        "The start point for the continuous data split is computed before
        the first iteration, and an appropriate pre-computed offset is
        added for each iteration" (§V, opt-1).
        """
        for hoist in self.plan.incremental_hoists.get(id(loop), []):
            site = hoist.site
            cost = _Cost()
            # the varying level starts at the loop's first iteration value
            rng = site.info.domains[  # type: ignore[union-attr]
                hoist.var_group + (1 if self._site_wrapped(site) else 0)
            ].ranges[0]
            lo_code = self.emit_expr(loop.range.lo, cost)
            start = f"({lo_code} - {rng.low})" if rng.low != 0 else lo_code
            base = self._hoist_base_code(site, cost, {hoist.var_group: start})
            for line in cost.lines("    " * self.indent):
                self.lines.append(line)
            self._w(f"_b_{hoist.hoist_id} = {base}")

    def emit_incremental_tops(self, loop: A.ForStmt) -> None:
        """Row view + base bump at the top of each driving-loop iteration."""
        for hoist in self.plan.incremental_hoists.get(id(loop), []):
            kid = self._key_id(hoist.site)
            cost = _Cost()
            cost.bump("flops")  # the base bump
            for line in cost.lines("    " * self.indent):
                self.lines.append(line)
            self._w(f"_row_{hoist.hoist_id} = _tv_{kid}(_b_{hoist.hoist_id})")
            self._w(f"_b_{hoist.hoist_id} += {hoist.step_bytes}")

    # -- statements ----------------------------------------------------------------

    def emit_block(self, block: A.Block) -> None:
        if not block.stmts:
            self._w("pass")
            return
        for stmt in block.stmts:
            self.emit_stmt(stmt)

    def emit_stmt(self, stmt: A.Stmt) -> None:
        ind = "    " * self.indent
        if isinstance(stmt, A.VarDeclStmt):
            d = stmt.decl
            cost = _Cost()
            init = self.emit_expr(d.init, cost) if d.init is not None else "0"
            self.lines.extend(cost.lines(ind))
            self._w(f"{self._mangle(d.name)} = {init}")
        elif isinstance(stmt, A.Assign):
            cost = _Cost()
            value = self.emit_expr(stmt.value, cost)
            target = self._mangle(stmt.target.name)  # lower guarantees Ident
            if stmt.op is not None:
                cost.bump("flops")
                self.lines.extend(cost.lines(ind))
                self._w(f"{target} {stmt.op}= {value}")
            else:
                self.lines.extend(cost.lines(ind))
                self._w(f"{target} = {value}")
        elif isinstance(stmt, A.ForStmt):
            cost = _Cost()
            lo = self.emit_expr(stmt.range.lo, cost)
            hi = self.emit_expr(stmt.range.hi, cost)
            self.lines.extend(cost.lines(ind))
            self.emit_hoist_preamble(stmt)
            self.emit_incremental_inits(stmt)
            self._w(f"for {self._mangle(stmt.var)} in range({lo}, {hi} + 1):")
            self.indent += 1
            self.emit_incremental_tops(stmt)
            self.emit_block(stmt.body)
            self.indent -= 1
        elif isinstance(stmt, A.IfStmt):
            cost = _Cost()
            cond = self.emit_expr(stmt.cond, cost)
            self.lines.extend(cost.lines(ind))
            self._w(f"if {cond}:")
            self.indent += 1
            self.emit_block(stmt.then)
            self.indent -= 1
            if stmt.orelse is not None:
                self._w("else:")
                self.indent += 1
                self.emit_block(stmt.orelse)
                self.indent -= 1
        elif isinstance(stmt, A.ExprStmt):
            expr = stmt.expr
            if isinstance(expr, A.Call) and expr.name in A.RO_INTRINSICS:
                cost = _Cost()
                args = [self.emit_expr(a, cost) for a in expr.args]
                cost.bump("ro_updates")
                self.lines.extend(cost.lines(ind))
                self._w(f"_ro.accumulate({args[0]}, {args[1]}, {args[2]})")
            else:
                cost = _Cost()
                code = self.emit_expr(expr, cost)
                self.lines.extend(cost.lines(ind))
                self._w(code)
        else:  # pragma: no cover
            raise CodegenError(f"cannot emit statement {stmt!r}")

    # -- whole kernel ------------------------------------------------------------------

    def generate(self) -> str:
        self.lines = []
        self.indent = 0
        self._w("def _kernel(_start, _end, _ro, _env, _C):")
        self.indent += 1
        self._w('_ci = _env["compute_index"]')
        self._w('_esz = _env["elem_sizeof"]')
        self._w('_sqrt = _env["sqrt"]; _floor = _env["floor"]')
        self._w('_exp = _env["exp"]; _log = _env["log"]')
        emitted: set[str] = set()
        for site in self.low.sites.values():
            key = site_key(site)
            kid = self.keys[key]
            if key in emitted:
                continue
            emitted.add(key)
            plan_modes = {
                p.mode
                for p in self.plan.site_plans.values()
                if site_key(p.site) == key
            }
            if plan_modes & {"linear", "hoisted"}:
                self._w(f'_info_{kid} = _env["info_{kid}"]')
                self._w(f'_rd_{kid} = _env["read_{kid}"]')
                self._w(f'_tv_{kid} = _env["view_{kid}"]')
            if "nested" in plan_modes:
                self._w(f'_v_{site.root} = _env["val_{site.root}"]')
        self._w("for _e in range(_start, _end):")
        self.indent += 1
        self._w("_C.elements_processed += 1")
        self.emit_block(self.low.body)
        return "\n".join(self.lines) + "\n"


class CLikeCodegen:
    """Emit C-flavored source mirroring the plan (documentation/golden tests)."""

    def __init__(self, lowered: LoweredReduction, plan: CompilationPlan) -> None:
        self.low = lowered
        self.plan = plan
        self.lines: list[str] = []
        self.indent = 0
        self.keys: dict[str, int] = {}
        for site in lowered.sites.values():
            self.keys.setdefault(site_key(site), len(self.keys))

    def _w(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def emit_expr(self, expr: A.Expr) -> str:
        site = self.low.sites.get(id(expr))
        if site is not None:
            plan = self.plan.plan_for(id(expr))
            kid = self.keys[site_key(site)]
            if plan.mode == "nested":
                code = site.root
                groups = iter(site.index_exprs)
                for step in site.steps:
                    if isinstance(step, IndexStep):
                        idx = ", ".join(self.emit_expr(ie) for ie in next(groups))
                        code += f"[{idx}]"
                    else:
                        code += f".{step.name}"
                return code
            if plan.mode == "linear":
                idx = ", ".join(
                    self.emit_expr(ie) for g in site.index_exprs for ie in g
                )
                head = "e" + (", " if idx else "") if site.kind == "data" else ""
                return (
                    f"linear_{site.root}[computeIndex(unitSize_{kid}, "
                    f"unitOffset_{kid}, myIndex({head}{idx}), position_{kid}, 0, "
                    f"{site.info.levels})]"  # type: ignore[union-attr]
                )
            inner = self.emit_expr(site.index_exprs[-1][0])
            low = site.info.domains[-1].ranges[0].low  # type: ignore[union-attr]
            if low != 0:
                inner = f"{inner} - {low}"
            return f"row_{plan.hoist_id}[{inner}]"
        if isinstance(expr, A.IntLit):
            return str(expr.value)
        if isinstance(expr, A.RealLit):
            return repr(expr.value)
        if isinstance(expr, A.BoolLit):
            return "1" if expr.value else "0"
        if isinstance(expr, A.Ident):
            if expr.name in self.low.constants:
                return repr(self.low.constants[expr.name])
            return expr.name
        if isinstance(expr, A.BinOp):
            return f"({self.emit_expr(expr.left)} {expr.op} {self.emit_expr(expr.right)})"
        if isinstance(expr, A.UnaryOp):
            return f"({expr.op}{self.emit_expr(expr.operand)})"
        if isinstance(expr, A.Call):
            if expr.name == "elemIdx":
                return "e"
            args = ", ".join(self.emit_expr(a) for a in expr.args)
            return f"{expr.name}({args})"
        raise CodegenError(f"cannot emit {expr!r}")  # pragma: no cover

    def emit_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.VarDeclStmt):
            d = stmt.decl
            ctype = "double" if isinstance(d.type, A.NamedTypeExpr) and d.type.name == "real" else "long"
            init = f" = {self.emit_expr(d.init)}" if d.init is not None else ""
            self._w(f"{ctype} {d.name}{init};")
        elif isinstance(stmt, A.Assign):
            op = (stmt.op or "") + "="
            self._w(f"{self.emit_expr(stmt.target)} {op} {self.emit_expr(stmt.value)};")
        elif isinstance(stmt, A.ForStmt):
            for hoist in self.plan.loop_hoists.get(id(stmt), []):
                kid = self.keys[site_key(hoist.site)]
                self._w(
                    f"double* row_{hoist.hoist_id} = &linear_{hoist.site.root}"
                    f"[computeIndex_base_{kid}(...)];  /* hoisted (opt-1) */"
                )
            for hoist in self.plan.incremental_hoists.get(id(stmt), []):
                kid = self.keys[site_key(hoist.site)]
                self._w(
                    f"long base_{hoist.hoist_id} = computeIndex_base_{kid}(...);"
                    "  /* start point, computed before the first iteration */"
                )
            lo, hi = self.emit_expr(stmt.range.lo), self.emit_expr(stmt.range.hi)
            self._w(f"for (long {stmt.var} = {lo}; {stmt.var} <= {hi}; {stmt.var}++) {{")
            self.indent += 1
            for hoist in self.plan.incremental_hoists.get(id(stmt), []):
                self._w(
                    f"double* row_{hoist.hoist_id} = &linear_{hoist.site.root}"
                    f"[base_{hoist.hoist_id}]; base_{hoist.hoist_id} += "
                    f"{hoist.step_bytes};  /* pre-computed offset per iteration */"
                )
            for s in stmt.body.stmts:
                self.emit_stmt(s)
            self.indent -= 1
            self._w("}")
        elif isinstance(stmt, A.IfStmt):
            self._w(f"if ({self.emit_expr(stmt.cond)}) {{")
            self.indent += 1
            for s in stmt.then.stmts:
                self.emit_stmt(s)
            self.indent -= 1
            if stmt.orelse is not None:
                self._w("} else {")
                self.indent += 1
                for s in stmt.orelse.stmts:
                    self.emit_stmt(s)
                self.indent -= 1
            self._w("}")
        elif isinstance(stmt, A.ExprStmt):
            expr = stmt.expr
            if isinstance(expr, A.Call) and expr.name in A.RO_INTRINSICS:
                args = ", ".join(self.emit_expr(a) for a in expr.args)
                self._w(f"accumulate({args});  /* reduction object update */")
            else:
                self._w(f"{self.emit_expr(expr)};")
        else:  # pragma: no cover
            raise CodegenError(f"cannot emit {stmt!r}")

    def generate(self) -> str:
        self.lines = []
        self.indent = 0
        self._w(f"/* {self.low.name}: FREERIDE reduction, opt level {self.plan.opt_level} */")
        self._w("void reduction(reduction_args_t* args) {")
        self.indent += 1
        self._w("for (long e = args->start; e < args->end; e++) {")
        self.indent += 1
        for s in self.low.body.stmts:
            self.emit_stmt(s)
        self.indent -= 1
        self._w("}")
        self.indent -= 1
        self._w("}")
        return "\n".join(self.lines) + "\n"

    def generate_program(self) -> str:
        """A complete C-like FREERIDE application (the paper's Figure 5).

        Wraps the reduction function with the initialization section
        (reduction-object allocation, linearization of the dataset and —
        at opt-2 — of the extras), the default splitter/combine stubs, and
        the function-pointer registration the Table I API expects.
        """
        reduction_fn = self.generate()
        lines: list[str] = []
        w = lines.append
        w(f"/* Generated FREERIDE application for {self.low.name} */")
        w('#include "freeride.h"')
        w("")
        w("/* ---- initialization section ---- */")
        w("void init(void* chapel_data, int num_threads) {")
        w("    /* Algorithm 1/2: linearize the Chapel dataset once */")
        w("    linear_data = linearizeIt(chapel_data, computeLinearizeSize(chapel_data));")
        hot = sorted(
            {
                p.site.root
                for p in self.plan.site_plans.values()
                if p.site.kind == "extra" and p.mode != "nested"
            }
        )
        for root in hot:
            w(f"    /* opt-2: linearize frequently-accessed {root} */")
            w(f"    linear_{root} = linearizeIt({root}, computeLinearizeSize({root}));")
        w("    reduction_object_alloc();  /* unique IDs per element */")
        w("}")
        w("")
        w("/* ---- middleware defaults (Table I) ---- */")
        w("void splitter(void* data_in, int req_units, reduction_args_t* out) {")
        w("    /* Using default splitter */")
        w("}")
        w("")
        w("void combine(void* copies) {")
        w("    /* Using default combine function */")
        w("}")
        w("")
        w(reduction_fn.rstrip())
        w("")
        w("/* ---- registration: call reduction functions by function pointers ---- */")
        w("int main(int argc, char** argv) {")
        w("    freeride_init(argc, argv);")
        w("    freeride_register((splitter_t) splitter,")
        w("                      (reduction_t) reduction,")
        w("                      (combination_t) combine);")
        w("    freeride_run();")
        w("    return 0;")
        w("}")
        return "\n".join(lines) + "\n"


