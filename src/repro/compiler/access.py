"""Access paths: the compiler's view of ``data[i].b1[j].a1[k]``.

An :class:`AccessPath` describes how a reduction loop reads scalars out of a
nested Chapel structure: an alternation of *index steps* (one per loop
level — the paper's ``levels``) and *field steps* (record member selections
between array levels).  The linearization stage analyzes the path against
the data's type to collect the paper's Figure 6 metadata (``unitSize[]``,
``unitOffset[][]``, ``position[][]``), and the mapping stage
(:mod:`repro.compiler.mapping`) turns loop indices into byte offsets.

Paths can be written as strings, e.g. ``"[i].b1[j].a1[k]"``, matching the
paper's example, or built programmatically.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, Union

from repro.chapel.types import (
    ArrayType,
    ChapelType,
    PrimitiveType,
    RecordType,
    EnumType,
    StringType,
)
from repro.util.errors import MappingError

__all__ = ["IndexStep", "FieldStep", "AccessStep", "AccessPath"]


@dataclass(frozen=True)
class IndexStep:
    """Indexing an array level with one loop variable per dimension.

    ``[i]`` indexes a 1-D level; ``[r, c]`` a 2-D level (e.g. the PCA data
    matrix).  A multi-dimensional level is still *one* linearization level —
    its indices combine into one dense position for ``myIndex[]``.
    """

    vars: tuple[str, ...]

    def __init__(self, vars: str | tuple[str, ...]) -> None:
        if isinstance(vars, str):
            vars = (vars,)
        object.__setattr__(self, "vars", tuple(vars))
        if not self.vars:
            raise MappingError("index step needs at least one variable")

    @property
    def var(self) -> str:
        """The single variable of a 1-D step (errors on multi-dim)."""
        if len(self.vars) != 1:
            raise MappingError(f"index step {self} is multi-dimensional")
        return self.vars[0]

    def __str__(self) -> str:
        return "[" + ", ".join(self.vars) + "]"


@dataclass(frozen=True)
class FieldStep:
    """Selecting a record member."""

    name: str

    def __str__(self) -> str:
        return f".{self.name}"


AccessStep = Union[IndexStep, FieldStep]

_TOKEN = re.compile(
    r"\[\s*([A-Za-z_]\w*(?:\s*,\s*[A-Za-z_]\w*)*)\s*\]"  # [i] or [i, j]
    r"|\.([A-Za-z_]\w*)"  # .field
    r"|([A-Za-z_]\w*)"  # leading root name
)


@dataclass(frozen=True)
class AccessPath:
    """A sequence of index/field steps rooted at a dataset variable."""

    steps: tuple[AccessStep, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise MappingError("access path must have at least one step")
        if not isinstance(self.steps[0], IndexStep):
            raise MappingError(
                "access path must start with an index step (the dataset is an array)"
            )

    @classmethod
    def parse(cls, text: str) -> "AccessPath":
        """Parse ``"[i].b1[j].a1[k]"`` (a leading root name is allowed)."""
        steps: list[AccessStep] = []
        pos = 0
        stripped = text.strip()
        while pos < len(stripped):
            m = _TOKEN.match(stripped, pos)
            if m is None:
                raise MappingError(f"cannot parse access path {text!r} at {pos}")
            if m.group(1) is not None:
                vars_ = tuple(v.strip() for v in m.group(1).split(","))
                steps.append(IndexStep(vars_))
            elif m.group(2) is not None:
                steps.append(FieldStep(m.group(2)))
            else:
                # a bare leading identifier names the root variable; skip it
                if pos != 0:
                    raise MappingError(
                        f"unexpected identifier {m.group(3)!r} inside path {text!r}"
                    )
            pos = m.end()
        return cls(tuple(steps))

    # -- structure ------------------------------------------------------------

    @property
    def levels(self) -> int:
        """Number of array levels — the paper's ``levels``."""
        return sum(1 for s in self.steps if isinstance(s, IndexStep))

    @property
    def index_vars(self) -> tuple[tuple[str, ...], ...]:
        """Per-level loop variable tuples, outermost first."""
        return tuple(s.vars for s in self.steps if isinstance(s, IndexStep))

    @property
    def flat_index_vars(self) -> tuple[str, ...]:
        """All loop variable names in order, flattened across levels."""
        return tuple(v for s in self.steps if isinstance(s, IndexStep) for v in s.vars)

    def field_chains(self) -> list[tuple[str, ...]]:
        """Field names between consecutive index steps.

        Entry ``i`` (0-based) is the chain applied after index step ``i``;
        there are ``levels`` entries, the last being the trailing chain after
        the innermost index (usually empty).
        """
        chains: list[tuple[str, ...]] = []
        current: list[str] = []
        seen_first_index = False
        for step in self.steps:
            if isinstance(step, IndexStep):
                if seen_first_index:
                    chains.append(tuple(current))
                    current = []
                seen_first_index = True
            else:
                if not seen_first_index:  # pragma: no cover - blocked by init
                    raise MappingError("field before first index")
                current.append(step.name)
        chains.append(tuple(current))
        return chains

    # -- type walking -----------------------------------------------------------

    def walk_types(self, root: ChapelType) -> Iterator[tuple[AccessStep, ChapelType]]:
        """Yield ``(step, type-after-step)`` validating the path against a type."""
        cur = root
        for step in self.steps:
            if isinstance(step, IndexStep):
                if not isinstance(cur, ArrayType):
                    raise MappingError(
                        f"path step {step} indexes non-array type {cur}"
                    )
                if cur.domain.rank != len(step.vars):
                    raise MappingError(
                        f"path step {step} has {len(step.vars)} indices but "
                        f"{cur} has rank {cur.domain.rank}"
                    )
                cur = cur.elt
            else:
                if not isinstance(cur, RecordType):
                    raise MappingError(
                        f"path step {step} selects member of non-record type {cur}"
                    )
                cur = cur.field_type(step.name)
            yield step, cur

    def result_type(self, root: ChapelType) -> ChapelType:
        """The type at the end of the path."""
        cur = root
        for _, cur in self.walk_types(root):
            pass
        return cur

    def validate_scalar(self, root: ChapelType) -> PrimitiveType | StringType | EnumType:
        """Require the path to end at a primitive; return it."""
        end = self.result_type(root)
        if not end.is_primitive:
            raise MappingError(
                f"access path {self} ends at non-primitive type {end}; "
                "reductions read scalars"
            )
        return end  # type: ignore[return-value]

    def __str__(self) -> str:
        return "".join(str(s) for s in self.steps)
