"""Native-code backend: lowered kernel IR -> C -> shared library (JIT).

The third compiled backend (``backend="native"``).  :class:`NativeCodegen`
walks the same lowered reduction + compilation plan the Python and batch
emitters consume and emits one self-contained C translation unit per
kernel version, mirroring the instrumented Python kernel *exactly*:

* the same SitePlan/LoopHoist decisions realize every access site
  (``computeIndex`` inlined as a constant-folded affine byte offset,
  hoisted rows as base pointers, incremental bases bumped per iteration);
* the same static per-statement :class:`~repro.compiler.codegen._Cost`
  bumps land in a ``double`` counter array folded back into the
  :class:`~repro.machine.counters.OpCounters` ledger after each call, so
  OpCounters parity with the scalar kernel is structural, not accidental;
* reduction-object updates accumulate into a preallocated per-split
  *scratch* buffer (identity-initialized, with the same group/element/op
  validation the scalar path performs) that the Python wrapper commits
  through the accessor's ``merge_from_scratch``/``merge_from`` — the
  existing combine tree — after the C call returns.

Because the C call runs through cffi's ABI mode, the GIL is released for
the whole split, so ``executor="thread"`` finally scales, and
element-dependent branches and bounded gathers that force the batch
backend whole-kernel scalar compile to ordinary C control flow.

Compiled artifacts are **cached on disk** per
``(format version, toolchain fingerprint, C source)`` under
``~/.cache/repro-kernels/`` (override with ``REPRO_KERNEL_CACHE``), so a
warm start dlopens the existing shared library and never invokes the
toolchain.  The C compiler is probed once per process (override with
``REPRO_CC``); a missing or broken toolchain downgrades every native
request to the batch/scalar path with a single warning and a single
``native_fallback`` trace event.

Semantics notes (all chosen to match the *scalar* Python kernel):

* ``/`` is always double division (Python 3 true division);
* ``%`` uses Python's sign convention for both ints and doubles;
* ``floor``/``toInt`` return integers (``math.floor`` / ``int()``);
* for-loop bounds are evaluated once, and the loop variable is driven by
  a hidden iterator so assignments to it inside the body cannot change
  the iteration (Python ``range`` semantics);
* out-of-range mapping indices and invalid reduction-object updates
  return an error code that the wrapper raises as the same exception
  type the scalar path would (:class:`~repro.util.errors.MappingError` /
  :class:`~repro.util.errors.ReductionObjectError`); checks proven
  redundant by the PR 7 effect summaries are elided.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import tempfile
import threading
from dataclasses import dataclass, fields as dc_fields
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.chapel import ast as A
from repro.compiler.codegen import _Cost, site_key
from repro.compiler.lower import AccessSite, LoweredReduction
from repro.compiler.passes import CompilationPlan, SitePlan
from repro.freeride.reduction_object import ReductionObject
from repro.freeride.sharedmem import ROAccessor
from repro.machine.counters import OpCounters
from repro.obs.tracer import get_tracer
from repro.util.errors import CodegenError, MappingError, ReductionObjectError
from repro.util.logging import get_logger

__all__ = [
    "NATIVE_FORMAT_VERSION",
    "NativeCodegen",
    "NativeKernel",
    "NativeUnsupported",
    "compile_native",
    "kernel_cache_dir",
    "make_native_kernel",
    "probe_toolchain",
    "reset_toolchain_probe",
]

_log = get_logger("compiler.native")

#: Bump on any change to the generated C's calling convention or layout —
#: part of every on-disk cache key, so stale artifacts are never dlopen'd.
NATIVE_FORMAT_VERSION = 1

#: Environment overrides.
CC_ENV = "REPRO_CC"
CACHE_ENV = "REPRO_KERNEL_CACHE"

#: OpCounters field order — the index layout of the C ``_C`` array.
_COUNTER_FIELDS: tuple[str, ...] = tuple(f.name for f in dc_fields(OpCounters))
_CIDX = {name: i for i, name in enumerate(_COUNTER_FIELDS)}
_IDX_RO_UPDATES = _CIDX["ro_updates"]

#: Accumulate-op codes shared between the C kernel and the wrapper tables.
_OP_CODES = {"add": 0, "min": 1, "max": 2}

#: Kernel return codes (0 = success).
_RC_MAP_OOB = 10  # computeIndex level position out of range
_RC_ROW_OOB = 11  # hoisted row index out of range
_RC_RO_GROUP = 20  # RO group id out of range
_RC_RO_ELEM = 21  # RO element id out of range for its group
_RC_RO_OP = 22  # RO update op does not match the group's declared op

_SYMBOL_SENTINEL = "__NATIVE_SYMBOL__"


class NativeUnsupported(Exception):
    """The native emitter cannot compile this kernel (fall back instead).

    ``toolchain`` marks process-wide failures (no C compiler, cffi
    missing) that should be reported once, not once per kernel.
    """

    def __init__(self, message: str, toolchain: bool = False) -> None:
        super().__init__(message)
        self.toolchain = toolchain


# --------------------------------------------------------------- C prelude

_C_PRELUDE = r"""#include <math.h>
#include <string.h>

static double _ld_f64(const unsigned char *p) { double v; memcpy(&v, p, 8); return v; }
static double _ld_f32(const unsigned char *p) { float v; memcpy(&v, p, 4); return (double)v; }
static long long _ld_i64(const unsigned char *p) { long long v; memcpy(&v, p, 8); return v; }
static long long _ld_i32(const unsigned char *p) { int v; memcpy(&v, p, 4); return (long long)v; }
static long long _ld_u64(const unsigned char *p) { unsigned long long v; memcpy(&v, p, 8); return (long long)v; }
static long long _ld_u8(const unsigned char *p) { return (long long)*p; }
static long long _imod(long long a, long long b) {
    long long r; if (b == 0) return 0; r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) r += b; return r;
}
static double _fmodpy(double a, double b) {
    double r = fmod(a, b);
    if (r != 0.0 && ((r < 0.0) != (b < 0.0))) r += b; return r;
}
static long long _minll(long long a, long long b) { return a < b ? a : b; }
static long long _maxll(long long a, long long b) { return a > b ? a : b; }
static double _mind(double a, double b) { return a < b ? a : b; }
static double _maxd(double a, double b) { return a > b ? a : b; }
static long long _absll(long long a) { return a < 0 ? -a : a; }
"""

#: ``(dtype kind, itemsize) -> (loader fn, value type)``.
_LOADERS = {
    ("f", 8): ("_ld_f64", "d"),
    ("f", 4): ("_ld_f32", "d"),
    ("i", 8): ("_ld_i64", "i"),
    ("i", 4): ("_ld_i32", "i"),
    ("u", 8): ("_ld_u64", "i"),
    ("u", 1): ("_ld_u8", "i"),
}

_CMP_OPS = {"==", "!=", "<", "<=", ">", ">="}


def _join(a: str, b: str) -> str:
    """Numeric type join: double absorbs int."""
    return "d" if "d" in (a, b) else "i"


def _c_literal(value: Any) -> tuple[str, str]:
    """A Python constant as a C literal + its value type."""
    if isinstance(value, bool):
        return ("1" if value else "0"), "i"
    if isinstance(value, int):
        return f"{value}LL", "i"
    if isinstance(value, float):
        if value != value:  # NaN
            return "(0.0/0.0)", "d"
        if value == float("inf"):
            return "(1.0/0.0)", "d"
        if value == float("-inf"):
            return "(-1.0/0.0)", "d"
        return repr(value), "d"
    raise NativeUnsupported(f"cannot emit constant {value!r} as C")


class NativeCodegen:
    """Emit the C kernel for one compilation plan.

    Mirrors :class:`~repro.compiler.codegen.PythonCodegen` statement by
    statement — same traversal, same cost-bump placement, same site-plan
    realization — so the counter ledgers of the two kernels agree exactly.
    ``summary`` (the PR 7 effect summary) proves index bounds; proven
    levels skip their runtime range check.
    """

    def __init__(
        self,
        lowered: LoweredReduction,
        plan: CompilationPlan,
        summary: Any = None,
    ) -> None:
        self.low = lowered
        self.plan = plan
        self.summary = summary
        self.lines: list[str] = []
        self.indent = 0
        self.keys: dict[str, int] = {}
        for site in lowered.sites.values():
            self.keys.setdefault(site_key(site), len(self.keys))
        self.local_types: dict[str, str] = {}
        self._tmp = 0  # unique suffix for statement-expression locals
        self.buf_order: list[int] = []

    # -- small helpers ------------------------------------------------------

    def _w(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def _mangle(self, name: str) -> str:
        return f"u_{name}"

    def _key_id(self, site: AccessSite) -> int:
        return self.keys[site_key(site)]

    def _next_tmp(self) -> int:
        self._tmp += 1
        return self._tmp

    def _cost_lines(self, cost: _Cost, indent: str) -> list[str]:
        if not cost.counts:
            return []
        parts = [
            f"_C[{_CIDX[k]}] += {v};" for k, v in sorted(cost.counts.items())
        ]
        return [indent + " ".join(parts)]

    def _flush_cost(self, cost: _Cost) -> None:
        self.lines.extend(self._cost_lines(cost, "    " * self.indent))

    # -- local type inference -----------------------------------------------

    def _infer_local_types(self) -> None:
        """Fixpoint: a local is ``long long`` unless any binding is real."""
        types: dict[str, str] = {name: "i" for name in self.low.locals}

        def seed(stmt: A.Stmt) -> None:
            if isinstance(stmt, A.VarDeclStmt):
                d = stmt.decl
                if isinstance(d.type, A.NamedTypeExpr) and d.type.name == "real":
                    types[d.name] = "d"
            elif isinstance(stmt, A.ForStmt):
                for s in stmt.body.stmts:
                    seed(s)
            elif isinstance(stmt, A.IfStmt):
                for s in stmt.then.stmts:
                    seed(s)
                if stmt.orelse is not None:
                    for s in stmt.orelse.stmts:
                        seed(s)

        for s in self.low.body.stmts:
            seed(s)

        def walk(stmt: A.Stmt) -> bool:
            changed = False
            if isinstance(stmt, A.VarDeclStmt):
                d = stmt.decl
                t = self._type_of(d.init, types) if d.init is not None else "i"
                joined = _join(types.get(d.name, "i"), t)
                if joined != types.get(d.name):
                    types[d.name] = joined
                    changed = True
            elif isinstance(stmt, A.Assign):
                name = stmt.target.name  # lower guarantees Ident
                t = self._type_of(stmt.value, types)
                if stmt.op == "/":
                    t = "d"
                joined = _join(types.get(name, "i"), t)
                if joined != types.get(name):
                    types[name] = joined
                    changed = True
            elif isinstance(stmt, A.ForStmt):
                for s in stmt.body.stmts:
                    changed |= walk(s)
            elif isinstance(stmt, A.IfStmt):
                for s in stmt.then.stmts:
                    changed |= walk(s)
                if stmt.orelse is not None:
                    for s in stmt.orelse.stmts:
                        changed |= walk(s)
            return changed

        while any(walk(s) for s in self.low.body.stmts):
            pass
        self.local_types = types

    def _type_of(self, expr: A.Expr, types: dict[str, str]) -> str:
        site = self.low.sites.get(id(expr))
        if site is not None:
            return "d" if np.dtype(site.scalar.dtype).kind == "f" else "i"
        if isinstance(expr, A.IntLit):
            return "i"
        if isinstance(expr, A.RealLit):
            return "d"
        if isinstance(expr, A.BoolLit):
            return "i"
        if isinstance(expr, A.Ident):
            if expr.name in self.low.constants:
                v = self.low.constants[expr.name]
                return "d" if isinstance(v, float) else "i"
            return types.get(expr.name, "i")
        if isinstance(expr, A.BinOp):
            if expr.op in _CMP_OPS or expr.op in ("&&", "||"):
                return "i"
            if expr.op == "/":
                return "d"
            return _join(
                self._type_of(expr.left, types), self._type_of(expr.right, types)
            )
        if isinstance(expr, A.UnaryOp):
            if expr.op == "-":
                return self._type_of(expr.operand, types)
            return "i"
        if isinstance(expr, A.Call):
            if expr.name == "elemIdx":
                return "i"
            if expr.name in ("sqrt", "exp", "log"):
                return "d"
            if expr.name in ("floor", "toInt"):
                return "i"
            if expr.name == "abs":
                return self._type_of(expr.args[0], types)
            if expr.name in ("min", "max"):
                t = "i"
                for a in expr.args:
                    t = _join(t, self._type_of(a, types))
                return t
        return "i"

    # -- expressions --------------------------------------------------------

    def emit_expr(self, expr: A.Expr, cost: _Cost) -> tuple[str, str]:
        """Returns ``(C code, value type)`` with ``"i"``/``"d"`` types."""
        site = self.low.sites.get(id(expr))
        if site is not None:
            return self.emit_site(expr, site, cost)
        if isinstance(expr, A.IntLit):
            return _c_literal(expr.value)
        if isinstance(expr, A.RealLit):
            return _c_literal(expr.value)
        if isinstance(expr, A.BoolLit):
            return _c_literal(expr.value)
        if isinstance(expr, A.Ident):
            name = expr.name
            if name in self.low.constants:
                return _c_literal(self.low.constants[name])
            return self._mangle(name), self.local_types.get(name, "i")
        if isinstance(expr, A.BinOp):
            left, lt = self.emit_expr(expr.left, cost)
            right, rt = self.emit_expr(expr.right, cost)
            cost.bump("flops")
            op = expr.op
            if op == "/":
                return f"((double)({left}) / (double)({right}))", "d"
            if op == "%":
                if _join(lt, rt) == "i":
                    return f"_imod({left}, {right})", "i"
                return f"_fmodpy((double)({left}), (double)({right}))", "d"
            if op in _CMP_OPS or op in ("&&", "||"):
                return f"({left} {op} {right})", "i"
            return f"({left} {op} {right})", _join(lt, rt)
        if isinstance(expr, A.UnaryOp):
            inner, it = self.emit_expr(expr.operand, cost)
            cost.bump("flops")
            if expr.op == "-":
                return f"(-({inner}))", it
            return f"(!({inner}))", "i"
        if isinstance(expr, A.Call):
            return self._emit_call(expr, cost)
        raise CodegenError(f"cannot emit expression {expr!r}")  # pragma: no cover

    def _emit_call(self, expr: A.Call, cost: _Cost) -> tuple[str, str]:
        if expr.name in A.RO_INTRINSICS:
            raise CodegenError(
                f"{expr.name} is a statement-level intrinsic, not an expression"
            )
        if expr.name == "elemIdx":
            return "_e", "i"
        args = [self.emit_expr(a, cost) for a in expr.args]
        cost.bump("flops")
        name = expr.name
        if name in ("sqrt", "exp", "log"):
            code, _ = args[0]
            return f"{name}((double)({code}))", "d"
        if name == "floor":
            code, t = args[0]
            if t == "i":  # math.floor of an int is the int itself
                return f"({code})", "i"
            return f"((long long)floor({code}))", "i"
        if name == "toInt":
            code, t = args[0]
            if t == "i":
                return f"({code})", "i"
            return f"((long long)({code}))", "i"  # C cast truncates like int()
        if name == "abs":
            code, t = args[0]
            if t == "d":
                return f"fabs({code})", "d"
            return f"_absll({code})", "i"
        if name in ("min", "max"):
            t = "i"
            for _, at in args:
                t = _join(t, at)
            fn = {"min": {"i": "_minll", "d": "_mind"},
                  "max": {"i": "_maxll", "d": "_maxd"}}[name][t]
            cast = "(double)" if t == "d" else ""
            out = f"{cast}({args[0][0]})"
            for code, _ in args[1:]:
                out = f"{fn}({out}, {cast}({code}))"
            return out, t
        raise NativeUnsupported(f"unsupported builtin {name!r} in native backend")

    # -- access sites -------------------------------------------------------

    @staticmethod
    def _site_wrapped(site: AccessSite) -> bool:
        from repro.compiler.access import IndexStep

        if site.kind == "data":
            return True
        return not (site.steps and isinstance(site.steps[0], IndexStep))

    def _loader(self, site: AccessSite) -> tuple[str, str, int]:
        info = site.info
        assert info is not None
        dt = np.dtype(info.inner_dtype)
        entry = _LOADERS.get((dt.kind, dt.itemsize))
        if entry is None:
            raise NativeUnsupported(
                f"no native loader for dtype {dt} at site {site.expr}"
            )
        return entry[0], entry[1], dt.itemsize

    def _group_proven(self, site: AccessSite, gi: int) -> bool:
        """True when every dim of index group ``gi`` has proven bounds."""
        if self.summary is None:
            return False
        info = site.info
        assert info is not None
        wrapped = self._site_wrapped(site)
        dom = info.domains[gi + (1 if wrapped else 0)]
        group = site.index_exprs[gi]
        try:
            for dim, rng in enumerate(dom.ranges[: len(group)]):
                bounds = self.summary.index_bounds(id(site.expr), gi, dim)
                if not bounds.contained_in(rng.low, rng.high):
                    return False
        except Exception:  # summary gaps degrade to a runtime check
            return False
        return True

    def _dense_level_exprs(
        self,
        site: AccessSite,
        cost: _Cost,
        override_groups: dict[int, str] | None = None,
    ) -> list[tuple[str, bool]]:
        """Per-level ``(dense position code, needs_runtime_check)`` pairs."""
        info = site.info
        assert info is not None
        dense: list[tuple[str, bool]] = []
        level_domains = list(info.domains)
        wrapped = self._site_wrapped(site)
        groups = list(site.index_exprs)
        if wrapped:
            dense.append(("0", False))
            level_domains = level_domains[1:]
        for gi, (dom, group) in enumerate(zip(level_domains, groups)):
            if override_groups is not None and gi in override_groups:
                code = override_groups[gi]
                dense.append((code, code != "0"))
                continue
            terms = []
            for dim, (rng, ie) in enumerate(zip(dom.ranges, group)):
                code, t = self.emit_expr(ie, cost)
                if t == "d":
                    code = f"((long long)({code}))"
                if rng.low != 0:
                    code = f"({code} - {rng.low})"
                scale = 1
                for later in dom.ranges[dim + 1:]:
                    scale *= len(later)
                terms.append(code if scale == 1 else f"{code} * {scale}")
            dense.append(
                (" + ".join(terms) if terms else "0", not self._group_proven(site, gi))
            )
        return dense

    def _offset_code(
        self,
        site: AccessSite,
        cost: _Cost,
        override_groups: dict[int, str] | None = None,
    ) -> str:
        """Inline ``computeIndex``: a statement expression yielding the
        byte offset, with the same per-level range checks Algorithm 3
        performs (elided when the effect summary proves them)."""
        info = site.info
        assert info is not None
        dense = self._dense_level_exprs(site, cost, override_groups)
        tmp = self._next_tmp()
        stmts: list[str] = []
        terms: list[str] = []
        const = info.trailing_offset + sum(info.level_offsets)
        for i, (code, check) in enumerate(dense):
            var = f"_x{tmp}_{i}"
            stmts.append(f"long long {var} = {code};")
            if check:
                size = info.domains[i].size
                stmts.append(
                    f"if ({var} < 0 || {var} >= {size}) return {_RC_MAP_OOB};"
                )
            if info.unit_size[i] == 1:
                terms.append(var)
            else:
                terms.append(f"{var} * {info.unit_size[i]}")
        value = " + ".join(terms) if terms else "0"
        if const:
            value = f"{value} + {const}"
        out = f"({{ {' '.join(stmts)} {value}; }})"
        if site.kind == "data":
            out = f"(_e * {self.low.element_type.sizeof} + {out})"
        cost.bump("index_calls")
        cost.bump("index_levels", info.levels)
        return out

    def emit_site(
        self, expr: A.Expr, site: AccessSite, cost: _Cost
    ) -> tuple[str, str]:
        plan = self.plan.plan_for(id(expr))
        if plan.mode == "nested":
            raise NativeUnsupported(
                f"nested access {site.expr} (un-linearized extra at opt level "
                f"{self.plan.opt_level}); native backend needs linear/hoisted "
                "sites — use opt-2 or the batch/scalar path"
            )
        if plan.mode == "linear":
            return self._emit_linear(site, cost)
        if plan.mode == "hoisted":
            return self._emit_hoisted(site, plan, cost)
        raise CodegenError(f"unknown site mode {plan.mode!r}")  # pragma: no cover

    def _emit_linear(self, site: AccessSite, cost: _Cost) -> tuple[str, str]:
        kid = self._key_id(site)
        loader, vtype, _ = self._loader(site)
        off = self._offset_code(site, cost)
        cost.bump("linear_reads")
        return f"{loader}(_buf_{kid} + {off})", vtype

    def _emit_hoisted(
        self, site: AccessSite, plan: SitePlan, cost: _Cost
    ) -> tuple[str, str]:
        inner = site.index_exprs[-1][0]
        info = site.info
        assert info is not None
        rng = info.domains[-1].ranges[0]
        loader, vtype, itemsize = self._loader(site)
        idx, t = self.emit_expr(inner, cost)
        if t == "d":
            idx = f"((long long)({idx}))"
        if rng.low != 0:
            idx = f"({idx} - {rng.low})"
        cost.bump("linear_reads")
        extent = info.inner_extent
        if self._group_proven(site, len(site.index_exprs) - 1):
            access = f"{loader}(_row_{plan.hoist_id} + ({idx}) * {itemsize})"
        else:
            tmp = self._next_tmp()
            # numpy row-view semantics: one negative wrap, then bounds check
            access = (
                f"({{ long long _h{tmp} = {idx}; "
                f"if (_h{tmp} < 0) _h{tmp} += {extent}; "
                f"if (_h{tmp} < 0 || _h{tmp} >= {extent}) return {_RC_ROW_OOB}; "
                f"{loader}(_row_{plan.hoist_id} + _h{tmp} * {itemsize}); }})"
            )
        return access, vtype

    def _hoist_base_code(
        self, site: AccessSite, cost: _Cost, override_groups: dict[int, str]
    ) -> str:
        overrides = dict(override_groups)
        overrides[len(site.index_exprs) - 1] = "0"  # base of the innermost run
        return self._offset_code(site, cost, overrides)

    def emit_hoist_preamble(self, loop: A.ForStmt) -> None:
        for hoist in self.plan.loop_hoists.get(id(loop), []):
            cost = _Cost()
            base = self._hoist_base_code(hoist.site, cost, {})
            kid = self._key_id(hoist.site)
            self._flush_cost(cost)
            self._w(f"_row_{hoist.hoist_id} = _buf_{kid} + {base};")

    def emit_incremental_inits(self, loop: A.ForStmt) -> None:
        for hoist in self.plan.incremental_hoists.get(id(loop), []):
            site = hoist.site
            cost = _Cost()
            info = site.info
            assert info is not None
            rng = info.domains[
                hoist.var_group + (1 if self._site_wrapped(site) else 0)
            ].ranges[0]
            lo_code, t = self.emit_expr(loop.range.lo, cost)
            if t == "d":
                lo_code = f"((long long)({lo_code}))"
            start = f"({lo_code} - {rng.low})" if rng.low != 0 else lo_code
            base = self._hoist_base_code(site, cost, {hoist.var_group: start})
            self._flush_cost(cost)
            self._w(f"_b_{hoist.hoist_id} = {base};")

    def emit_incremental_tops(self, loop: A.ForStmt) -> None:
        for hoist in self.plan.incremental_hoists.get(id(loop), []):
            kid = self._key_id(hoist.site)
            cost = _Cost()
            cost.bump("flops")  # the base bump
            self._flush_cost(cost)
            self._w(f"_row_{hoist.hoist_id} = _buf_{kid} + _b_{hoist.hoist_id};")
            self._w(f"_b_{hoist.hoist_id} += {hoist.step_bytes};")

    # -- statements ---------------------------------------------------------

    def emit_block(self, block: A.Block) -> None:
        for stmt in block.stmts:
            self.emit_stmt(stmt)

    def emit_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.VarDeclStmt):
            d = stmt.decl
            cost = _Cost()
            if d.init is not None:
                init, _ = self.emit_expr(d.init, cost)
            else:
                init = "0"
            self._flush_cost(cost)
            self._w(f"{self._mangle(d.name)} = {init};")
        elif isinstance(stmt, A.Assign):
            cost = _Cost()
            value, _ = self.emit_expr(stmt.value, cost)
            target = self._mangle(stmt.target.name)
            if stmt.op is not None:
                cost.bump("flops")
                self._flush_cost(cost)
                if stmt.op == "/":  # true division even for int targets
                    self._w(f"{target} = (double)({target}) / (double)({value});")
                else:
                    self._w(f"{target} {stmt.op}= {value};")
            else:
                self._flush_cost(cost)
                self._w(f"{target} = {value};")
        elif isinstance(stmt, A.ForStmt):
            cost = _Cost()
            lo, lt = self.emit_expr(stmt.range.lo, cost)
            hi, ht = self.emit_expr(stmt.range.hi, cost)
            if lt == "d":
                lo = f"((long long)({lo}))"
            if ht == "d":
                hi = f"((long long)({hi}))"
            self._flush_cost(cost)
            self.emit_hoist_preamble(stmt)
            self.emit_incremental_inits(stmt)
            tmp = self._next_tmp()
            var = self._mangle(stmt.var)
            # Bounds evaluated once and a hidden iterator drives the loop,
            # so body assignments to the loop variable cannot change the
            # iteration — exactly Python's ``for v in range(lo, hi + 1)``.
            self._w(f"{{ long long _lo{tmp} = {lo}; long long _hi{tmp} = {hi};")
            self.indent += 1
            self._w(
                f"for (long long _it{tmp} = _lo{tmp}; _it{tmp} <= _hi{tmp}; "
                f"_it{tmp}++) {{"
            )
            self.indent += 1
            self._w(f"{var} = _it{tmp};")
            self.emit_incremental_tops(stmt)
            self.emit_block(stmt.body)
            self.indent -= 1
            self._w("}")
            self.indent -= 1
            self._w("}")
        elif isinstance(stmt, A.IfStmt):
            cost = _Cost()
            cond, _ = self.emit_expr(stmt.cond, cost)
            self._flush_cost(cost)
            self._w(f"if ({cond}) {{")
            self.indent += 1
            self.emit_block(stmt.then)
            self.indent -= 1
            if stmt.orelse is not None:
                self._w("} else {")
                self.indent += 1
                self.emit_block(stmt.orelse)
                self.indent -= 1
            self._w("}")
        elif isinstance(stmt, A.ExprStmt):
            expr = stmt.expr
            if isinstance(expr, A.Call) and expr.name in A.RO_INTRINSICS:
                self._emit_ro_update(expr)
            else:
                cost = _Cost()
                code, _ = self.emit_expr(expr, cost)
                self._flush_cost(cost)
                self._w(f"(void)({code});")
        else:  # pragma: no cover
            raise CodegenError(f"cannot emit statement {stmt!r}")

    def _emit_ro_update(self, expr: A.Call) -> None:
        """``roAdd/roMin/roMax(group, elem, value)`` into the scratch buffer,
        with the same validation ``ReductionObject.accumulate`` performs."""
        cost = _Cost()
        (g, gt), (e, et), (v, _) = (self.emit_expr(a, cost) for a in expr.args)
        if gt == "d":
            g = f"((long long)({g}))"
        if et == "d":
            e = f"((long long)({e}))"
        opcode = _OP_CODES[A.RO_INTRINSICS[expr.name]]
        cost.bump("ro_updates")
        self._flush_cost(cost)
        tmp = self._next_tmp()
        self._w(f"{{ long long _g{tmp} = {g}; long long _el{tmp} = {e}; "
                f"double _v{tmp} = (double)({v});")
        self.indent += 1
        self._w(f"if (_g{tmp} < 0 || _g{tmp} >= _ro_groups) return {_RC_RO_GROUP};")
        self._w(f"if (_el{tmp} < 0 || _el{tmp} >= _ro_n[_g{tmp}]) return {_RC_RO_ELEM};")
        self._w(f"if (_ro_op[_g{tmp}] != {opcode}) return {_RC_RO_OP};")
        self._w(f"{{ double *_cell = _scr + _ro_off[_g{tmp}] + _el{tmp};")
        if opcode == _OP_CODES["add"]:
            self._w(f"  *_cell += _v{tmp}; }}")
        elif opcode == _OP_CODES["min"]:
            self._w(f"  if (_v{tmp} < *_cell) *_cell = _v{tmp}; }}")
        else:
            self._w(f"  if (_v{tmp} > *_cell) *_cell = _v{tmp}; }}")
        self._w(f"_touched[_g{tmp}] = 1;")
        self.indent -= 1
        self._w("}")

    # -- whole kernel -------------------------------------------------------

    def generate(self) -> str:
        """The full translation unit (symbol still the sentinel token)."""
        self._infer_local_types()

        # Native needs every site realized over a linearized buffer.
        used_kids: set[int] = set()
        for plan in self.plan.site_plans.values():
            if plan.mode == "nested":
                # raise with the same message emit_site would
                self.emit_site(plan.site.expr, plan.site, _Cost())
            used_kids.add(self._key_id(plan.site))
        self.buf_order = sorted(used_kids)
        buf_pos = {kid: i for i, kid in enumerate(self.buf_order)}

        self.lines = []
        self.indent = 0
        self._w(f"/* {self.low.name}: native FREERIDE kernel, "
                f"opt level {self.plan.opt_level} */")
        self._w(f"/* counter slots: "
                + ", ".join(f"{i}={n}" for i, n in enumerate(_COUNTER_FIELDS))
                + " */")
        self._w(f"long long {_SYMBOL_SENTINEL}(")
        self._w("    long long _start, long long _end,")
        self._w("    const unsigned char **_bufs, double *_scr,")
        self._w("    const long long *_ro_off, const long long *_ro_n,")
        self._w("    const long long *_ro_op, long long _ro_groups,")
        self._w("    unsigned char *_touched, double *_C)")
        self._w("{")
        self.indent += 1
        for kid in self.buf_order:
            self._w(f"const unsigned char *_buf_{kid} = _bufs[{buf_pos[kid]}];")
        for name in sorted(self.low.locals):
            ctype = "double" if self.local_types.get(name) == "d" else "long long"
            init = "0.0" if ctype == "double" else "0"
            self._w(f"{ctype} {self._mangle(name)} = {init};")
        hoists = [
            h
            for hs in list(self.plan.loop_hoists.values())
            + list(self.plan.incremental_hoists.values())
            for h in hs
        ]
        for hoist in sorted(hoists, key=lambda h: h.hoist_id):
            self._w(f"const unsigned char *_row_{hoist.hoist_id} = 0;")
            if hoist.incremental is not None:
                self._w(f"long long _b_{hoist.hoist_id} = 0;")
        self._w("(void)_bufs; (void)_scr; (void)_ro_off; (void)_ro_n;")
        self._w("(void)_ro_op; (void)_ro_groups; (void)_touched;")
        self._w("for (long long _e = _start; _e < _end; _e++) {")
        self.indent += 1
        self._w(f"_C[{_CIDX['elements_processed']}] += 1;")
        self.emit_block(self.low.body)
        self.indent -= 1
        self._w("}")
        self._w("return 0;")
        self.indent -= 1
        self._w("}")
        return _C_PRELUDE + "\n" + "\n".join(self.lines) + "\n"


# ----------------------------------------------------------- toolchain probe

_probe_lock = threading.Lock()
_probe_state: dict[str, Any] | None = None
_toolchain_event_pending = True


def probe_toolchain() -> dict[str, Any]:
    """Probe the C toolchain once per process.

    Returns ``{"ok", "cc", "fingerprint", "reason"}``.  ``REPRO_CC``
    overrides the compiler (default ``cc``).  A failed probe logs one
    warning; :func:`take_toolchain_event` lets the compiler emit exactly
    one ``native_fallback`` trace event for it.
    """
    global _probe_state
    with _probe_lock:
        if _probe_state is not None:
            return _probe_state
        cc = os.environ.get(CC_ENV) or "cc"
        state: dict[str, Any] = {
            "ok": False, "cc": cc, "fingerprint": "", "reason": None,
        }
        try:
            import cffi  # noqa: F401
        except ImportError:
            state["reason"] = "cffi is not installed"
        else:
            try:
                version = subprocess.run(
                    [cc, "--version"], capture_output=True, text=True, timeout=30
                )
                if version.returncode != 0:
                    raise OSError(version.stderr.strip() or "cc --version failed")
                with tempfile.TemporaryDirectory(prefix="repro-cc-probe-") as td:
                    src = Path(td) / "probe.c"
                    out = Path(td) / "probe.so"
                    src.write_text("int repro_probe(void) { return 42; }\n")
                    run = subprocess.run(
                        [cc, "-O2", "-shared", "-fPIC", "-o", str(out), str(src)],
                        capture_output=True, text=True, timeout=60,
                    )
                    if run.returncode != 0 or not out.exists():
                        raise OSError(run.stderr.strip() or "probe compile failed")
                state["ok"] = True
                state["fingerprint"] = hashlib.sha256(
                    f"{cc}\n{version.stdout.splitlines()[0] if version.stdout else ''}".encode()
                ).hexdigest()[:16]
            except (OSError, subprocess.SubprocessError, IndexError) as exc:
                state["reason"] = f"C compiler {cc!r} unusable: {exc}"
        if not state["ok"]:
            _log.warning(
                "native backend disabled for this process: %s "
                "(set %s to point at a working compiler)",
                state["reason"], CC_ENV,
            )
        _probe_state = state
        return state


def take_toolchain_event() -> bool:
    """True exactly once per process — gates the toolchain fallback event."""
    global _toolchain_event_pending
    with _probe_lock:
        if _toolchain_event_pending:
            _toolchain_event_pending = False
            return True
        return False


def reset_toolchain_probe() -> None:
    """Forget the probe result and event gate (tests only)."""
    global _probe_state, _toolchain_event_pending
    with _probe_lock:
        _probe_state = None
        _toolchain_event_pending = True


# ------------------------------------------------------------- disk cache

def kernel_cache_dir() -> Path:
    """The on-disk kernel cache directory (``REPRO_KERNEL_CACHE`` override)."""
    override = os.environ.get(CACHE_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-kernels"


_dlopen_lock = threading.Lock()
_dlopen_cache: dict[tuple[str, str], tuple[Any, Any]] = {}
_compile_locks: dict[str, threading.Lock] = {}


def _compile_lock_for(symbol: str) -> threading.Lock:
    with _dlopen_lock:
        return _compile_locks.setdefault(symbol, threading.Lock())


def _dlopen(so_path: Path, symbol: str) -> tuple[Any, Any]:
    """dlopen + symbol lookup, cached per (path, symbol) process-wide."""
    import cffi

    key = (str(so_path), symbol)
    with _dlopen_lock:
        entry = _dlopen_cache.get(key)
        if entry is not None:
            return entry
    ffi = cffi.FFI()
    ffi.cdef(
        f"long long {symbol}(long long, long long, const unsigned char **, "
        "double *, const long long *, const long long *, const long long *, "
        "long long, unsigned char *, double *);"
    )
    lib = ffi.dlopen(str(so_path))
    fn = getattr(lib, symbol)
    with _dlopen_lock:
        _dlopen_cache[key] = (ffi, fn)
    return ffi, fn


@dataclass
class NativeKernel:
    """A compiled-to-machine-code kernel plus everything to invoke it."""

    source: str
    symbol: str
    so_path: Path
    buf_order: tuple[int, ...]
    ffi: Any
    fn: Any
    #: True when this process ran the C compiler (False = disk-cache hit)
    compiled: bool


def compile_native(
    lowered: LoweredReduction,
    plan: CompilationPlan,
    summary: Any = None,
) -> NativeKernel:
    """Emit, (maybe) compile and dlopen the native kernel.

    The disk key is ``sha256(format version | toolchain fingerprint |
    C source)``; a warm start finds ``<key>.so`` already present and only
    dlopens it — zero toolchain invocations, asserted by the warm-start
    tests via the absence of ``native_compile`` trace spans.

    Raises :class:`NativeUnsupported` (caller records the fallback).
    """
    probe = probe_toolchain()
    if not probe["ok"]:
        raise NativeUnsupported(probe["reason"], toolchain=True)

    gen = NativeCodegen(lowered, plan, summary=summary)
    template = gen.generate()

    digest = hashlib.sha256(
        f"v{NATIVE_FORMAT_VERSION}|{probe['fingerprint']}|{template}".encode()
    ).hexdigest()
    symbol = f"repro_native_{digest[:16]}"
    source = template.replace(_SYMBOL_SENTINEL, symbol)

    cache_dir = kernel_cache_dir()
    so_path = cache_dir / f"{symbol}.so"
    tracer = get_tracer()
    compiled = False
    with _compile_lock_for(symbol):
        if so_path.exists():
            tracer.event(
                "native_cache.hit", cat="cache",
                reduction=lowered.name, opt_level=plan.opt_level,
                digest=digest[:12], path=str(so_path),
            )
        else:
            tracer.event(
                "native_cache.miss", cat="cache",
                reduction=lowered.name, opt_level=plan.opt_level,
                digest=digest[:12],
            )
            cache_dir.mkdir(parents=True, exist_ok=True)
            c_path = cache_dir / f"{symbol}.c"
            with tracer.span(
                "native_compile", cat="compiler",
                reduction=lowered.name, opt_level=plan.opt_level,
                cc=probe["cc"],
            ):
                tmp_c = cache_dir / f".{symbol}.{os.getpid()}.c"
                tmp_so = cache_dir / f".{symbol}.{os.getpid()}.so"
                try:
                    tmp_c.write_text(source)
                    run = subprocess.run(
                        [probe["cc"], "-O3", "-fPIC", "-shared",
                         "-o", str(tmp_so), str(tmp_c), "-lm"],
                        capture_output=True, text=True, timeout=120,
                    )
                    if run.returncode != 0 or not tmp_so.exists():
                        raise NativeUnsupported(
                            "C compilation failed: "
                            + (run.stderr.strip()[:500] or "unknown error")
                        )
                    # Atomic publish: concurrent processes race benignly.
                    os.replace(tmp_c, c_path)
                    os.replace(tmp_so, so_path)
                    compiled = True
                except (OSError, subprocess.SubprocessError) as exc:
                    raise NativeUnsupported(f"C compilation failed: {exc}")
                finally:
                    for leftover in (tmp_c, tmp_so):
                        try:
                            leftover.unlink()
                        except OSError:
                            pass
        ffi, fn = _dlopen(so_path, symbol)
    return NativeKernel(
        source=source,
        symbol=symbol,
        so_path=so_path,
        buf_order=tuple(gen.buf_order),
        ffi=ffi,
        fn=fn,
        compiled=compiled,
    )


# ------------------------------------------------------------ Python wrapper

_layout_lock = threading.Lock()
_layout_tables: dict[tuple, tuple] = {}


def _tables_for(layout: list[tuple[int, str]]) -> tuple:
    """Dense int64 ``(offsets, nelems, opcodes)`` + identity vector."""
    key = tuple(layout)
    with _layout_lock:
        entry = _layout_tables.get(key)
        if entry is not None:
            return entry
    offs, nelems, ops, ident = [], [], [], []
    offset = 0
    identities = {"add": 0.0, "min": np.inf, "max": -np.inf}
    for num_elems, op in layout:
        if op not in _OP_CODES:
            raise ReductionObjectError(f"unknown accumulate op {op!r}")
        offs.append(offset)
        nelems.append(num_elems)
        ops.append(_OP_CODES[op])
        ident.extend([identities[op]] * num_elems)
        offset += num_elems
    entry = (
        np.ascontiguousarray(offs, dtype=np.int64),
        np.ascontiguousarray(nelems, dtype=np.int64),
        np.ascontiguousarray(ops, dtype=np.int64),
        np.ascontiguousarray(ident, dtype=np.float64),
    )
    with _layout_lock:
        return _layout_tables.setdefault(key, entry)


_RC_MESSAGES = {
    _RC_MAP_OOB: (MappingError, "computeIndex position out of range"),
    _RC_ROW_OOB: (MappingError, "hoisted row index out of range"),
    _RC_RO_GROUP: (ReductionObjectError, "group not allocated"),
    _RC_RO_ELEM: (ReductionObjectError, "element out of range for its group"),
    _RC_RO_OP: (ReductionObjectError, "update op does not match the group's op"),
}


def make_native_kernel(native: NativeKernel, name: str) -> Callable:
    """The ``_kernel(_start, _end, _ro, _env, _C)`` twin of the C function.

    Per call: reset the thread-local scratch/touched/counter buffers, run
    the C kernel (GIL released by cffi for the whole split), fold the
    counter array into the ledger, and commit the scratch through the
    accessor's atomic ``merge_from_scratch`` (restricted to the touched
    groups, as the colored technique requires) or a plain ``merge_from``
    for bare reduction objects and per-attempt scratch accessors.
    """
    ffi = native.ffi
    fn = native.fn
    buf_order = native.buf_order
    buf_names = [f"buf_{kid}" for kid in buf_order]
    tls = threading.local()

    def _native_kernel(_start, _end, _ro, _env, _C):
        ro_obj = _ro if isinstance(_ro, ReductionObject) else _ro.ro
        layout = ro_obj.layout()
        offs, nelems, ops, ident = _tables_for(layout)

        store = getattr(tls, "store", None)
        if store is None:
            store = tls.store = {}
        key = tuple(layout)
        bufs3 = store.get(key)
        if bufs3 is None:
            bufs3 = store[key] = (
                np.empty(ident.size, dtype=np.float64),
                np.empty(len(layout), dtype=np.uint8),
                np.empty(len(_COUNTER_FIELDS), dtype=np.float64),
            )
        scratch, touched, counters = bufs3
        scratch[:] = ident
        touched[:] = 0
        counters[:] = 0.0

        data_bufs = [_env[n] for n in buf_names]  # kept alive across the call
        c_bufs = ffi.new("const unsigned char *[]", max(1, len(data_bufs)))
        for i, b in enumerate(data_bufs):
            c_bufs[i] = ffi.cast("const unsigned char *", b.ctypes.data)

        rc = fn(
            int(_start),
            int(_end),
            c_bufs,
            ffi.cast("double *", scratch.ctypes.data),
            ffi.cast("const long long *", offs.ctypes.data),
            ffi.cast("const long long *", nelems.ctypes.data),
            ffi.cast("const long long *", ops.ctypes.data),
            len(layout),
            ffi.cast("unsigned char *", touched.ctypes.data),
            ffi.cast("double *", counters.ctypes.data),
        )
        if rc != 0:
            exc_type, msg = _RC_MESSAGES.get(
                rc, (RuntimeError, f"native kernel error {rc}")
            )
            raise exc_type(f"native kernel {name}: {msg}")

        for i, field in enumerate(_COUNTER_FIELDS):
            setattr(_C, field, getattr(_C, field) + float(counters[i]))

        updates = int(counters[_IDX_RO_UPDATES])
        if updates == 0:
            return
        scratch_ro = ReductionObject.from_layout(
            layout, buffer=scratch, initialize=False
        )
        scratch_ro.update_count = updates
        if isinstance(_ro, ReductionObject):
            _ro.merge_from(scratch_ro)
            return
        if type(_ro).merge_from_scratch is not ROAccessor.merge_from_scratch:
            groups = [int(g) for g in np.nonzero(touched)[0]]
            _ro.merge_from_scratch(scratch_ro, groups=groups)
        else:
            # e.g. ScratchAccessor under the fault-tolerant engine: fold
            # into the per-attempt scratch; the engine commits on success.
            ro_obj.merge_from(scratch_ro)

    _native_kernel.__name__ = "_native_kernel"
    _native_kernel.native = native  # type: ignore[attr-defined]
    return _native_kernel
