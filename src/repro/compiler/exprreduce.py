"""Built-in reductions over iterative expressions, on FREERIDE.

§IV-B: "Chapel supports very general reductions, which can be applied to
standard arrays of some primitive types, expressions over arrays, loop
expressions, records of some mixed types and so on.  For instance,
``min reduce A+B`` can be used in Chapel to find the minimum sum of
corresponding elements from arrays A and B."

This module translates exactly that form: a built-in reduction op over an
elementwise expression whose leaves are (possibly nested) Chapel arrays.
Translation mirrors the class pipeline: every leaf array is linearized
(Algorithm 2), leaf accesses become mapped reads, and the reduction runs as
a FREERIDE job.  Two kernel strategies are generated:

* ``scalar`` — element-at-a-time reads through the mapping, like the
  ``generated`` class kernels (counted per element);
* ``vectorized`` — whole-buffer typed views combined with numpy ufuncs,
  the fast path the linearized representation makes possible (this is the
  practical payoff of linearization: dense buffers admit vector kernels).

Both produce identical results, verified against the pure-Chapel
:func:`repro.chapel.forall.reduce_expr` semantics.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.chapel.expr import ArrayRef, BinOpExpr, IterExpr, ScalarExpr, UnaryOpExpr
from repro.chapel.values import ChapelArray
from repro.compiler.linearize import LinearizedBuffer, linearize_it
from repro.freeride.reduction_object import ReductionObject
from repro.freeride.runtime import FreerideEngine, ReductionResult
from repro.freeride.spec import ReductionArgs, ReductionSpec
from repro.machine.counters import OpCounters
from repro.util.errors import CompilerError
from repro.util.validation import check_one_of

__all__ = ["ReduceExprJob", "LocReduceExprJob", "compile_reduce_expr"]

#: Built-in ops expressible as reduction-object element ops.
_RO_OPS = {"+": "add", "sum": "add", "min": "min", "max": "max"}

#: Location-carrying ops (Chapel's ``minloc/maxloc reduce zip(expr, dom)``).
#: These need a custom combination — the (value, index) pair is one logical
#: record, exactly the "records of some mixed types" case of §IV-B.
_LOC_OPS = {"minloc": "min", "maxloc": "max"}

_SCALAR_BINOPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "%": operator.mod,
    "**": operator.pow,
}

_VECTOR_BINOPS = dict(_SCALAR_BINOPS)


@dataclass
class _Leaf:
    """One linearized array leaf of the expression."""

    buffer: LinearizedBuffer
    dtype: np.dtype
    count: int

    def view(self) -> np.ndarray:
        return self.buffer.typed_view(0, self.dtype, self.count)


class ReduceExprJob:
    """A compiled ``op reduce expr`` ready to run on an engine."""

    def __init__(
        self,
        op: str,
        expr: IterExpr,
        strategy: str = "vectorized",
    ) -> None:
        self.op = check_one_of(op, tuple(_RO_OPS), "op")
        self.strategy = check_one_of(strategy, ("scalar", "vectorized"), "strategy")
        self.expr = expr
        self.counters = OpCounters()
        self._leaves: list[_Leaf] = []
        # Compile the expression tree once into per-strategy evaluators.
        self._scalar_eval = self._compile_scalar(expr)
        self._vector_eval = self._compile_vector(expr)
        self.n_elements = expr.domain.size

    # -- leaf linearization -----------------------------------------------------

    def _linearize_leaf(self, ref: ArrayRef) -> _Leaf:
        chapel = getattr(ref, "_chapel", None)
        if chapel is not None:
            if not chapel.type.elt.is_primitive:
                raise CompilerError(
                    "reduce expressions need primitive-element arrays"
                )
            buf = linearize_it(chapel, chapel.type, self.counters)
            dtype = np.dtype(chapel.type.elt.dtype)  # type: ignore[union-attr]
            count = chapel.domain.size
        else:
            arr = np.ascontiguousarray(ref.evaluate())
            raw = arr.reshape(-1).view(np.uint8)
            from repro.chapel.domains import Domain
            from repro.chapel.types import ArrayType, PrimitiveType

            elt = PrimitiveType(str(arr.dtype), arr.dtype)
            buf = LinearizedBuffer(
                typ=ArrayType(Domain(int(arr.size)), elt), raw=raw
            )
            self.counters.bytes_linearized += raw.size
            dtype = arr.dtype
            count = int(arr.size)
        leaf = _Leaf(buffer=buf, dtype=dtype, count=count)
        self._leaves.append(leaf)
        return leaf

    # -- strategy compilation ------------------------------------------------------

    def _compile_scalar(self, expr: IterExpr) -> Callable[[int], Any]:
        """Element-at-a-time evaluator over the linearized leaves."""
        if isinstance(expr, ArrayRef):
            leaf = self._linearize_leaf(expr)
            itemsize = leaf.dtype.itemsize
            raw = leaf.buffer.raw
            dt = leaf.dtype
            counters = self.counters

            def read(i: int) -> Any:
                counters.linear_reads += 1
                counters.index_calls += 1
                counters.index_levels += 1
                return np.frombuffer(raw, dt, 1, i * itemsize)[0].item()

            return read
        if isinstance(expr, ScalarExpr):
            value = expr._value

            def const(i: int) -> Any:
                return value

            return const
        if isinstance(expr, BinOpExpr):
            left = self._compile_scalar(expr.left)
            right = self._compile_scalar(expr.right)
            fn = _SCALAR_BINOPS[expr.op]
            counters = self.counters

            def binop(i: int) -> Any:
                counters.flops += 1
                return fn(left(i), right(i))

            return binop
        if isinstance(expr, UnaryOpExpr):
            inner = self._compile_scalar(expr.operand)
            neg = expr.op == "-"
            counters = self.counters

            def unop(i: int) -> Any:
                counters.flops += 1
                v = inner(i)
                return -v if neg else abs(v)

            return unop
        raise CompilerError(f"cannot compile expression node {type(expr)}")

    def _compile_vector(self, expr: IterExpr) -> Callable[[int, int], np.ndarray]:
        """Chunk-at-a-time evaluator over typed views of the leaves.

        Leaves were already linearized by the scalar compilation pass; the
        vector pass reuses them positionally.
        """
        leaf_iter = iter(self._leaves)

        def build(node: IterExpr) -> Callable[[int, int], np.ndarray]:
            if isinstance(node, ArrayRef):
                leaf = next(leaf_iter)
                view = leaf.view()

                def read(start: int, end: int) -> np.ndarray:
                    return view[start:end]

                return read
            if isinstance(node, ScalarExpr):
                value = node._value

                def const(start: int, end: int) -> np.ndarray:
                    return value  # numpy broadcasts scalars

                return const
            if isinstance(node, BinOpExpr):
                left, right = build(node.left), build(node.right)
                fn = _VECTOR_BINOPS[node.op]
                return lambda s, e: fn(left(s, e), right(s, e))
            if isinstance(node, UnaryOpExpr):
                inner = build(node.operand)
                if node.op == "-":
                    return lambda s, e: -inner(s, e)
                return lambda s, e: np.abs(inner(s, e))
            raise CompilerError(f"cannot compile expression node {type(node)}")

        return build(expr)

    # -- FREERIDE integration ---------------------------------------------------------

    def make_spec(self) -> tuple[ReductionSpec, range]:
        ro_op = _RO_OPS[self.op]
        counters = self.counters

        def setup(ro: ReductionObject) -> None:
            ro.alloc(1, ro_op)

        if self.strategy == "scalar":
            scalar_eval = self._scalar_eval

            def reduction(args: ReductionArgs) -> None:
                idx = args.data
                for i in idx:
                    args.ro.accumulate(0, 0, scalar_eval(i))
                counters.elements_processed += len(idx)
                counters.ro_updates += len(idx)

        else:
            vector_eval = self._vector_eval
            fold = {"add": np.sum, "min": np.min, "max": np.max}[ro_op]

            def reduction(args: ReductionArgs) -> None:
                idx = args.data
                if len(idx) == 0:
                    return
                values = vector_eval(idx[0], idx[-1] + 1)
                args.ro.accumulate(0, 0, float(fold(values)))
                n = len(idx)
                counters.elements_processed += n
                counters.linear_reads += n * len(self._leaves)
                counters.flops += n
                counters.ro_updates += 1

        return (
            ReductionSpec(
                name=f"{self.op}-reduce-expr[{self.strategy}]",
                setup_reduction_object=setup,
                reduction=reduction,
            ),
            range(self.n_elements),
        )

    def run(self, engine: FreerideEngine | None = None) -> ReductionResult:
        spec, idx = self.make_spec()
        engine = engine or FreerideEngine()
        return engine.run(spec, idx)

    def result_value(self, engine: FreerideEngine | None = None) -> float:
        return self.run(engine).ro.get(0, 0)


class LocReduceExprJob:
    """``minloc/maxloc reduce zip(expr, domain)`` on FREERIDE.

    The reduction object holds one logical *record* — (best value, its
    0-based element index) — whose two cells must update and merge
    atomically, so the job supplies a custom ``combination_t`` (the merge
    picks the better pair) and requires the full-replication technique
    (each thread owns its pair; no torn pair updates are possible).
    """

    def __init__(self, op: str, expr: IterExpr) -> None:
        self.op = check_one_of(op, tuple(_LOC_OPS), "op")
        self.expr = expr
        self._better = (
            (lambda a, b: a < b) if op == "minloc" else (lambda a, b: a > b)
        )
        self._fold = np.argmin if op == "minloc" else np.argmax
        # reuse the scalar job's leaf linearization + vector evaluator
        self._inner = ReduceExprJob(
            "min" if op == "minloc" else "max", expr, strategy="vectorized"
        )
        self.counters = self._inner.counters
        self.n_elements = self._inner.n_elements

    def make_spec(self) -> tuple[ReductionSpec, range]:
        ro_op = _LOC_OPS[self.op]
        better = self._better
        fold = self._fold
        vector_eval = self._inner._vector_eval
        counters = self.counters

        def setup(ro: ReductionObject) -> None:
            ro.alloc(1, ro_op)  # best value (identity +/- inf)
            ro.alloc(1, "add")  # its element index

        def reduction(args: ReductionArgs) -> None:
            idx = args.data
            if len(idx) == 0:
                return
            accessor = args.ro
            private = getattr(accessor, "ro", None)
            from repro.freeride.sharedmem import ReplicatedAccessor

            if not isinstance(accessor, ReplicatedAccessor) or private is None:
                raise CompilerError(
                    f"{self.op} reduce requires the full-replication technique "
                    "(the value/index pair must update atomically)"
                )
            values = np.asarray(vector_eval(idx[0], idx[-1] + 1))
            local = int(fold(values))
            value = float(values[local])
            if better(value, private.get(0, 0)):
                private.set(0, 0, value)
                private.set(1, 0, float(idx[0] + local))
            n = len(idx)
            counters.elements_processed += n
            counters.linear_reads += n * len(self._inner._leaves)
            counters.flops += n
            counters.ro_updates += 2

        def combination(copies: list[ReductionObject]) -> ReductionObject:
            best = copies[0]
            for c in copies[1:]:
                if better(c.get(0, 0), best.get(0, 0)):
                    best = c
            merged = copies[0].clone_empty()
            merged.set(0, 0, best.get(0, 0))
            merged.set(1, 0, best.get(1, 0))
            return merged

        spec = ReductionSpec(
            name=f"{self.op}-reduce-expr",
            setup_reduction_object=setup,
            reduction=reduction,
            combination=combination,
        )
        return spec, range(self.n_elements)

    def run(self, engine: FreerideEngine | None = None) -> ReductionResult:
        spec, idx = self.make_spec()
        engine = engine or FreerideEngine()
        return engine.run(spec, idx)

    def result_value(self, engine: FreerideEngine | None = None) -> tuple[float, int]:
        """(best value, 0-based element index) — Chapel's (value, loc)."""
        result = self.run(engine)
        return result.ro.get(0, 0), int(result.ro.get(1, 0))


def compile_reduce_expr(
    op: str,
    expr: IterExpr | ChapelArray | np.ndarray,
    strategy: str = "vectorized",
) -> "ReduceExprJob | LocReduceExprJob":
    """Compile ``op reduce expr`` into a FREERIDE job.

    ``expr`` may be an iterative expression (``ArrayRef(A) + ArrayRef(B)``),
    a Chapel array, or a bare numpy array.  ``op`` may also be ``minloc``
    or ``maxloc``, returning a (value, element-index) pair job.
    """
    if isinstance(expr, (ChapelArray, np.ndarray)):
        expr = ArrayRef(expr)
    if not isinstance(expr, IterExpr):
        raise CompilerError(f"cannot reduce over {type(expr)}")
    if op in _LOC_OPS:
        return LocReduceExprJob(op, expr)
    return ReduceExprJob(op, expr, strategy)
