"""Batch (vectorized) code generation — the "opt-3" execution backend.

The scalar backend (:class:`~repro.compiler.codegen.PythonCodegen`) walks the
linearized buffers one element at a time through an interpreted Python
kernel, so wall-clock time is dominated by interpreter overhead rather than
the memory behaviour the paper measures.  The dense layout produced by
Algorithms 1-2 is exactly what array-level execution wants:
:class:`BatchCodegen` emits a *split-level* NumPy kernel

.. code-block:: python

    def _batch_kernel(_start, _end, _ro, _env, _C):
        # processes global elements [_start, _end) in whole-array steps

with the same calling convention as the scalar ``_kernel``, where the
element dimension is carried as ``(_end - _start,)``-shaped lane arrays:

* **data accesses** become strided views over the linearized buffer — a 1-D
  lane view per linear access site (stride = element size), a 2-D
  ``(lanes, run)`` row view per hoisted site (reusing the ``SitePlan`` /
  ``LoopHoist`` decisions of the compilation plan, including incremental
  base bumping);
* **extra accesses** are element-invariant, so they stay scalar and are
  evaluated once per batch (nested Chapel chains included) — each lane sees
  the same value the scalar kernel would read;
* **conditionals** on element-dependent values are converted to masks: both
  branch bodies are evaluated for all lanes and assignments merge through
  ``np.where``, preserving the scalar kernel's lowest-index tie-breaking;
* **reduction-object updates** go through
  :meth:`~repro.freeride.reduction_object.ReductionObject.accumulate_batch`
  (``ufunc.at`` under the hood), which folds duplicate cells in lane order —
  bit-for-bit equal to the scalar element order for integer reductions;
* **operation counting** stays per batch: every statement's static
  :class:`~repro.compiler.codegen._Cost` counts are multiplied by the
  *active lane count* at that structural position, so the ledger a batch
  run produces equals the scalar ledger exactly.

Constructs the emitter cannot vectorize — element-dependent loop ranges or
element-dependent access-site indices — raise :class:`BatchUnsupported`;
the translator then falls back to the scalar kernel for the whole
reduction and logs the reason (per-site mixing would break the counter
parity above).
"""

from __future__ import annotations

import math

import numpy as np

from typing import TYPE_CHECKING

from repro.chapel import ast as A
from repro.compiler.codegen import PythonCodegen, _Cost, site_key
from repro.compiler.lower import LoweredReduction, AccessSite
from repro.compiler.passes import CompilationPlan, SitePlan
from repro.util.errors import CodegenError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.analysis.effects import EffectSummary

__all__ = ["BatchCodegen", "BatchUnsupported", "BATCH_NAMESPACE"]


class BatchUnsupported(Exception):
    """The batch emitter cannot vectorize this reduction; fall back to scalar."""


# ---------------------------------------------------------------- runtime lib
# Helpers injected into the namespace the batch kernel source is exec'd in.
# They accept scalars and lane arrays alike, so element-invariant
# subexpressions stay cheap Python scalars.


def _land(a, b):
    return np.logical_and(a, b)


def _lor(a, b):
    return np.logical_or(a, b)


def _lnot(a):
    return np.logical_not(a)


def _vmin(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.minimum(a, b)
    return min(a, b)


def _vmax(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.maximum(a, b)
    return max(a, b)


def _toint(x):
    # np.int64 truncates toward zero, matching Python's int().
    if isinstance(x, np.ndarray):
        return x.astype(np.int64)
    return int(x)


def _vfloor(x):
    return np.floor(x) if isinstance(x, np.ndarray) else math.floor(x)


def _vsqrt(x):
    return np.sqrt(x) if isinstance(x, np.ndarray) else math.sqrt(x)


def _vexp(x):
    return np.exp(x) if isinstance(x, np.ndarray) else math.exp(x)


def _vlog(x):
    return np.log(x) if isinstance(x, np.ndarray) else math.log(x)


def _msel(mask, new, old):
    """Masked assignment merge: lanes where ``mask`` holds take ``new``."""
    return np.where(mask, new, old)


def _mand(mask, cond):
    """Narrow the current mask by a lane condition (``mask`` may be None)."""
    cond = np.asarray(cond, dtype=bool)
    return cond if mask is None else (mask & cond)


def _mcount(mask, n):
    """Active lane count under ``mask`` (full width when mask is None)."""
    return int(n) if mask is None else int(np.count_nonzero(mask))


def _errstate():
    # Masked-off lanes still evaluate both branch bodies; their garbage
    # (division by zero, log of non-positives, ...) is discarded by the
    # np.where merges, so the transient FP warnings are suppressed.
    return np.errstate(divide="ignore", invalid="ignore", over="ignore")


#: Exec namespace for generated batch kernels.
BATCH_NAMESPACE = {
    "_np": np,
    "_land": _land,
    "_lor": _lor,
    "_lnot": _lnot,
    "_vmin": _vmin,
    "_vmax": _vmax,
    "_toint": _toint,
    "_vfloor": _vfloor,
    "_vsqrt": _vsqrt,
    "_vexp": _vexp,
    "_vlog": _vlog,
    "_msel": _msel,
    "_mand": _mand,
    "_mcount": _mcount,
    "_errstate": _errstate,
}

_BATCH_BINOPS = {
    "+": "+",
    "-": "-",
    "*": "*",
    "/": "/",
    "%": "%",
    "==": "==",
    "!=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
}

_BATCH_BUILTINS = {
    "abs": "abs",
    "sqrt": "_vsqrt",
    "min": "_vmin",
    "max": "_vmax",
    "floor": "_vfloor",
    "toInt": "_toint",
    "exp": "_vexp",
    "log": "_vlog",
}


# -------------------------------------------------------------- taint analysis


class _Taint:
    """Which locals may vary across lanes (flow-insensitive fixpoint).

    A value is *lane-varying* ("tainted") when it transitively depends on a
    data-site read or the ``elemIdx()`` intrinsic, or is assigned under a
    lane-varying condition (the ``np.where`` merge makes the target an
    array).  Loop variables are never tainted — a lane-varying loop
    *range* is unvectorizable and reported as the fallback reason instead.

    A lane-varying access-site index used to force the same whole-kernel
    fallback.  With an effect ``summary`` attached, a tainted index whose
    symbolic summary proves containment in the site's declared innermost
    extent is instead recorded as a **bounded-gather proof** — the emitter
    vectorizes that access with a grouped ``np.take`` (see
    :meth:`BatchCodegen._emit_gather_linear`); only refuted gathers still
    fall back, with the refutation recorded.
    """

    def __init__(
        self,
        lowered: LoweredReduction,
        summary: "EffectSummary | None" = None,
        plan: CompilationPlan | None = None,
    ) -> None:
        self.low = lowered
        self.summary = summary
        self.plan = plan
        self.tainted: set[str] = set()
        self.reason: str | None = None
        #: ``id(site.expr) -> proof record`` for every tainted index that
        #: was checked against its extent (proven and refuted alike)
        self.gather_proofs: dict[int, dict] = {}

    def run(self) -> None:
        for _ in range(len(self.low.locals) + 2):
            before = set(self.tainted)
            self._walk_block(self.low.body, ctx=False)
            if self.tainted == before:
                break

    def _flag(self, reason: str) -> None:
        if self.reason is None:
            self.reason = reason

    def expr_tainted(self, expr: A.Expr) -> bool:
        site = self.low.sites.get(id(expr))
        if site is not None:
            if site.kind == "data":
                return True
            return any(
                self.expr_tainted(ie) for group in site.index_exprs for ie in group
            )
        if isinstance(expr, A.Ident):
            return expr.name in self.tainted
        if isinstance(expr, A.BinOp):
            return self.expr_tainted(expr.left) or self.expr_tainted(expr.right)
        if isinstance(expr, A.UnaryOp):
            return self.expr_tainted(expr.operand)
        if isinstance(expr, A.Call):
            if expr.name == "elemIdx":
                return True
            return any(self.expr_tainted(a) for a in expr.args)
        return False

    def check_site_indices(self, expr: A.Expr, site: AccessSite) -> None:
        for group in site.index_exprs:
            for ie in group:
                if not self.expr_tainted(ie):
                    continue
                proof = self._prove_gather(expr, site)
                if proof is not None and proof["proven"]:
                    continue
                detail = "" if proof is None else f": {proof['reason']}"
                self._flag(
                    f"index {ie} of {site.kind} access {expr} is "
                    f"element-dependent (gather not vectorized){detail}"
                )

    def proven_gather(self, site: AccessSite) -> dict | None:
        """The successful proof record for ``site``, or None."""
        proof = self.gather_proofs.get(id(site.expr))
        if proof is not None and proof["proven"]:
            return proof
        return None

    def _prove_gather(self, expr: A.Expr, site: AccessSite) -> dict | None:
        """Try to prove a tainted index is a bounded gather.

        Returns the cached proof record — ``proven`` True plus the bounds
        and extent that justify a vectorized ``np.take``, or ``proven``
        False with the refutation reason.  Returns None when no effect
        summary is attached (legacy whole-kernel fallback).
        """
        if self.summary is None:
            return None
        sid = id(expr)
        if sid in self.gather_proofs:
            return self.gather_proofs[sid]
        proof = self._build_gather_proof(expr, site)
        self.gather_proofs[sid] = proof
        return proof

    def _build_gather_proof(self, expr: A.Expr, site: AccessSite) -> dict:
        from repro.analysis.effects import ELEM_RANGE

        record: dict = {
            "site": str(expr),
            "root": site.root,
            "kind": site.kind,
            "proven": False,
            "reason": None,
        }

        def refute(reason: str) -> dict:
            record["reason"] = reason
            return record

        if site.kind != "extra":
            return refute(
                "only read-only extra inputs can gather (data lanes are "
                "strided views)"
            )
        if site.info is None:
            return refute("site has no linearized layout info")
        mode = (
            self.plan.plan_for(id(expr)).mode if self.plan is not None else None
        )
        if mode != "linear":
            return refute(
                f"site planned as {mode!r}; a gather needs a linearized "
                "(non-hoisted) extra access"
            )
        groups = site.index_exprs
        if any(self.expr_tainted(ie) for g in groups[:-1] for ie in g):
            return refute("a non-innermost index is lane-varying")
        if len(groups[-1]) != 1:
            return refute("innermost level is multi-dimensional")
        inner = groups[-1][0]
        bounds = self.summary.index_bounds(
            id(expr), len(groups) - 1, 0, ELEM_RANGE
        )
        rng = site.info.domains[-1].ranges[0]
        record["extent"] = f"[{rng.low}..{rng.high}]"
        if bounds is None:
            return refute("no symbolic summary recorded for the index")
        record["bounds"] = str(bounds)
        if not bounds.contained_in(rng.low, rng.high):
            return refute(
                f"index summary {bounds} is not provably contained in the "
                f"declared extent [{rng.low}..{rng.high}]"
            )
        record["proven"] = True
        record["index"] = str(inner)
        return record

    def _walk_block(self, block: A.Block, ctx: bool) -> None:
        for stmt in block.stmts:
            self._walk_stmt(stmt, ctx)

    def _walk_stmt(self, stmt: A.Stmt, ctx: bool) -> None:
        if isinstance(stmt, A.VarDeclStmt):
            d = stmt.decl
            if ctx or (d.init is not None and self.expr_tainted(d.init)):
                self.tainted.add(d.name)
        elif isinstance(stmt, A.Assign):
            if ctx or self.expr_tainted(stmt.value):
                self.tainted.add(stmt.target.name)  # lower guarantees Ident
        elif isinstance(stmt, A.ForStmt):
            if self.expr_tainted(stmt.range.lo) or self.expr_tainted(stmt.range.hi):
                self._flag(
                    f"range of loop {stmt.var!r} is element-dependent; "
                    "lanes would iterate different trip counts"
                )
            self._walk_block(stmt.body, ctx)
        elif isinstance(stmt, A.IfStmt):
            inner = ctx or self.expr_tainted(stmt.cond)
            self._walk_block(stmt.then, inner)
            if stmt.orelse is not None:
                self._walk_block(stmt.orelse, inner)
        elif isinstance(stmt, A.Block):  # pragma: no cover - not produced
            self._walk_block(stmt, ctx)


def _uses_elem_idx(node: object) -> bool:
    """Whether any expression under ``node`` calls the elemIdx() intrinsic."""
    if isinstance(node, A.Call):
        if node.name == "elemIdx":
            return True
        return any(_uses_elem_idx(a) for a in node.args)
    if isinstance(node, A.Block):
        return any(_uses_elem_idx(s) for s in node.stmts)
    if isinstance(node, A.VarDeclStmt):
        return node.decl.init is not None and _uses_elem_idx(node.decl.init)
    if isinstance(node, A.Assign):
        return _uses_elem_idx(node.value)
    if isinstance(node, A.ForStmt):
        return (
            _uses_elem_idx(node.range.lo)
            or _uses_elem_idx(node.range.hi)
            or _uses_elem_idx(node.body)
        )
    if isinstance(node, A.IfStmt):
        return (
            _uses_elem_idx(node.cond)
            or _uses_elem_idx(node.then)
            or (node.orelse is not None and _uses_elem_idx(node.orelse))
        )
    if isinstance(node, A.ExprStmt):
        return _uses_elem_idx(node.expr)
    if isinstance(node, A.BinOp):
        return _uses_elem_idx(node.left) or _uses_elem_idx(node.right)
    if isinstance(node, A.UnaryOp):
        return _uses_elem_idx(node.operand)
    if isinstance(node, A.Index):
        return _uses_elem_idx(node.base) or any(
            _uses_elem_idx(i) for i in node.indices
        )
    if isinstance(node, A.Member):
        return _uses_elem_idx(node.base)
    return False


#: public alias — the translator gates position-dependent optimizations
#: (e.g. gathered delta retraction) on this
uses_elem_idx = _uses_elem_idx


# ------------------------------------------------------------------ generator


class BatchCodegen(PythonCodegen):
    """Emit the split-level NumPy kernel for one compilation plan.

    Shares site-key assignment, dense-position computation and the static
    cost model with :class:`PythonCodegen`; every emitted cost line is
    multiplied by the active lane count at that position so batch and
    scalar runs produce identical :class:`OpCounters` ledgers.
    """

    def __init__(
        self,
        lowered: LoweredReduction,
        plan: CompilationPlan,
        exclusive: bool = False,
        summary: "EffectSummary | None" = None,
    ) -> None:
        super().__init__(lowered, plan)
        self.taint = _Taint(lowered, summary, plan)
        self.mask = "None"  # current mask expression ("None" = all lanes)
        self.lane = "_n0"  # current active-lane-count variable
        self._next_mask = 0
        #: COLORED-technique variant: emit the ``exclusive=True`` hint on
        #: every accumulate_batch call.  The caller (the engine's wave
        #: schedule) guarantees no concurrent access to the touched cells;
        #: accessors that synchronize anyway ignore the hint, so a colored
        #: kernel stays correct under every accessor.
        self.exclusive = exclusive

    # -- cost ----------------------------------------------------------------

    def _emit_cost(self, cost: _Cost) -> None:
        if not cost.counts:
            return
        parts = [
            f"_C.{k} += {v} * {self.lane}" for k, v in sorted(cost.counts.items())
        ]
        self._w("; ".join(parts))

    # -- expressions ----------------------------------------------------------

    def emit_expr(self, expr: A.Expr, cost: _Cost) -> str:
        site = self.low.sites.get(id(expr))
        if site is not None:
            self.taint.check_site_indices(expr, site)
            if self.taint.reason is not None:
                raise BatchUnsupported(self.taint.reason)
            return self.emit_site(expr, site, cost)
        if isinstance(expr, A.BinOp):
            left = self.emit_expr(expr.left, cost)
            right = self.emit_expr(expr.right, cost)
            cost.bump("flops")
            if expr.op == "&&":
                return f"_land({left}, {right})"
            if expr.op == "||":
                return f"_lor({left}, {right})"
            return f"({left} {_BATCH_BINOPS[expr.op]} {right})"
        if isinstance(expr, A.UnaryOp):
            inner = self.emit_expr(expr.operand, cost)
            cost.bump("flops")
            return f"(-{inner})" if expr.op == "-" else f"_lnot({inner})"
        if isinstance(expr, A.Call):
            if expr.name in A.RO_INTRINSICS:
                raise CodegenError(
                    f"{expr.name} is a statement-level intrinsic, not an expression"
                )
            if expr.name == "elemIdx":
                return "_ev"
            fn = _BATCH_BUILTINS[expr.name]
            args = ", ".join(self.emit_expr(a, cost) for a in expr.args)
            cost.bump("flops")
            return f"{fn}({args})"
        return super().emit_expr(expr, cost)

    # -- access sites ---------------------------------------------------------

    def _emit_nested(self, site: AccessSite, cost: _Cost) -> str:
        if site.kind == "data":  # pragma: no cover - plans always linearize data
            raise BatchUnsupported(
                f"data access {site.expr} planned as nested (not linearized)"
            )
        return super()._emit_nested(site, cost)

    def _inner_offset_code(self, site: AccessSite, cost: _Cost) -> str:
        """Element-local byte offset (the scalar backend adds ``_e*_esz``)."""
        kid = self._key_id(site)
        dense = self._dense_level_exprs(site, cost)
        cost.bump("index_calls")
        cost.bump("index_levels", site.info.levels)  # type: ignore[union-attr]
        return f"_ci(_info_{kid}, ({', '.join(dense)},))"

    def _emit_linear(self, site: AccessSite, cost: _Cost) -> str:
        kid = self._key_id(site)
        proof = self.taint.proven_gather(site)
        if proof is not None:
            return self._emit_gather_linear(site, cost)
        cost.bump("linear_reads")
        inner = self._inner_offset_code(site, cost)
        if site.kind == "data":
            # one strided lane view: lane i reads element (_start+i)'s scalar
            return f"_lanes_{kid}({inner})"
        return f"_rd_{kid}({inner})"

    def _emit_gather_linear(self, site: AccessSite, cost: _Cost) -> str:
        """Vectorize a proven bounded gather over an extra input.

        The innermost index is lane-varying but its effect summary is
        contained in the declared extent, so the access becomes one
        ``np.take`` over the innermost run starting at the (scalar,
        lane-invariant) base offset of the outer levels.  The ``np.clip``
        never changes a live lane's index — containment is proven — it
        only keeps the garbage indices of masked-off lanes in range before
        their values are discarded by the ``np.where`` merges.

        Cost parity with the scalar backend holds because the base offset
        skips exactly the innermost index expression that ``emit_expr``
        then accounts for separately.
        """
        kid = self._key_id(site)
        cost.bump("linear_reads")
        base = self._hoist_base_inner(site, cost, {})
        inner = site.index_exprs[-1][0]
        rng = site.info.domains[-1].ranges[0]  # type: ignore[union-attr]
        idx = self.emit_expr(inner, cost)
        if rng.low != 0:
            idx = f"({idx} - {rng.low})"
        return (
            f"_np.take(_tv_{kid}({base}), "
            f"_np.clip({idx}, 0, {rng.high - rng.low}))"
        )

    def _emit_hoisted(self, site: AccessSite, plan: SitePlan, cost: _Cost) -> str:
        inner = site.index_exprs[-1][0]
        rng = site.info.domains[-1].ranges[0]  # type: ignore[union-attr]
        idx = self.emit_expr(inner, cost)
        if rng.low != 0:
            idx = f"{idx} - {rng.low}"
        cost.bump("linear_reads")
        if site.kind == "data":
            return f"_row_{plan.hoist_id}[:, {idx}]"
        return f"_row_{plan.hoist_id}[{idx}]"

    def _hoist_base_inner(
        self, site: AccessSite, cost: _Cost, override_groups: dict[int, str]
    ) -> str:
        kid = self._key_id(site)
        overrides = dict(override_groups)
        overrides[len(site.index_exprs) - 1] = "0"
        dense = self._dense_level_exprs(site, cost, overrides)
        cost.bump("index_calls")
        cost.bump("index_levels", site.info.levels)  # type: ignore[union-attr]
        return f"_ci(_info_{kid}, ({', '.join(dense)},))"

    def emit_hoist_preamble(self, loop: A.ForStmt) -> None:
        for hoist in self.plan.loop_hoists.get(id(loop), []):
            site = hoist.site
            self.taint.check_site_indices(site.expr, site)
            if self.taint.reason is not None:
                raise BatchUnsupported(self.taint.reason)
            cost = _Cost()
            base = self._hoist_base_inner(site, cost, {})
            kid = self._key_id(site)
            self._emit_cost(cost)
            if site.kind == "data":
                self._w(f"_row_{hoist.hoist_id} = _rows_{kid}({base})")
            else:
                self._w(f"_row_{hoist.hoist_id} = _tv_{kid}({base})")

    def emit_incremental_inits(self, loop: A.ForStmt) -> None:
        for hoist in self.plan.incremental_hoists.get(id(loop), []):
            site = hoist.site
            self.taint.check_site_indices(site.expr, site)
            if self.taint.reason is not None:
                raise BatchUnsupported(self.taint.reason)
            cost = _Cost()
            rng = site.info.domains[  # type: ignore[union-attr]
                hoist.var_group + (1 if self._site_wrapped(site) else 0)
            ].ranges[0]
            lo_code = self.emit_expr(loop.range.lo, cost)
            start = f"({lo_code} - {rng.low})" if rng.low != 0 else lo_code
            base = self._hoist_base_inner(site, cost, {hoist.var_group: start})
            self._emit_cost(cost)
            self._w(f"_b_{hoist.hoist_id} = {base}")

    def emit_incremental_tops(self, loop: A.ForStmt) -> None:
        for hoist in self.plan.incremental_hoists.get(id(loop), []):
            kid = self._key_id(hoist.site)
            cost = _Cost()
            cost.bump("flops")  # the base bump
            self._emit_cost(cost)
            if hoist.site.kind == "data":
                self._w(f"_row_{hoist.hoist_id} = _rows_{kid}(_b_{hoist.hoist_id})")
            else:
                self._w(f"_row_{hoist.hoist_id} = _tv_{kid}(_b_{hoist.hoist_id})")
            self._w(f"_b_{hoist.hoist_id} += {hoist.step_bytes}")

    # -- statements ----------------------------------------------------------

    def _assign(self, target: str, value: str) -> None:
        """Assign under the current mask (np.where merge when masked).

        Never emits an in-place array update: lane arrays may alias the
        linearized data buffer (strided views), so every assignment rebinds
        to a fresh value.
        """
        if self.mask == "None":
            self._w(f"{target} = {value}")
        else:
            self._w(f"{target} = _msel({self.mask}, {value}, {target})")

    def emit_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.VarDeclStmt):
            d = stmt.decl
            cost = _Cost()
            init = self.emit_expr(d.init, cost) if d.init is not None else "0"
            self._emit_cost(cost)
            # A declaration is unconditional even under a mask: the DSL
            # scopes the local to this branch, so inactive lanes' garbage
            # can never escape the mask region.
            self._w(f"{self._mangle(d.name)} = {init}")
        elif isinstance(stmt, A.Assign):
            cost = _Cost()
            value = self.emit_expr(stmt.value, cost)
            target = self._mangle(stmt.target.name)  # lower guarantees Ident
            if stmt.op is not None:
                cost.bump("flops")
                value = f"({target} {stmt.op} {value})"
            self._emit_cost(cost)
            self._assign(target, value)
        elif isinstance(stmt, A.ForStmt):
            if self.taint.expr_tainted(stmt.range.lo) or self.taint.expr_tainted(
                stmt.range.hi
            ):
                raise BatchUnsupported(
                    f"range of loop {stmt.var!r} is element-dependent; "
                    "lanes would iterate different trip counts"
                )
            cost = _Cost()
            lo = self.emit_expr(stmt.range.lo, cost)
            hi = self.emit_expr(stmt.range.hi, cost)
            self._emit_cost(cost)
            self.emit_hoist_preamble(stmt)
            self.emit_incremental_inits(stmt)
            self._w(f"for {self._mangle(stmt.var)} in range({lo}, {hi} + 1):")
            self.indent += 1
            self.emit_incremental_tops(stmt)
            self.emit_block(stmt.body)
            self.indent -= 1
        elif isinstance(stmt, A.IfStmt):
            if not self.taint.expr_tainted(stmt.cond):
                # element-invariant condition: a plain Python branch
                cost = _Cost()
                cond = self.emit_expr(stmt.cond, cost)
                self._emit_cost(cost)
                self._w(f"if {cond}:")
                self.indent += 1
                self.emit_block(stmt.then)
                self.indent -= 1
                if stmt.orelse is not None:
                    self._w("else:")
                    self.indent += 1
                    self.emit_block(stmt.orelse)
                    self.indent -= 1
                return
            self._emit_masked_if(stmt)
        elif isinstance(stmt, A.ExprStmt):
            expr = stmt.expr
            if isinstance(expr, A.Call) and expr.name in A.RO_INTRINSICS:
                cost = _Cost()
                args = [self.emit_expr(a, cost) for a in expr.args]
                cost.bump("ro_updates")
                self._emit_cost(cost)
                op = A.RO_INTRINSICS[expr.name]
                hint = ", exclusive=True" if self.exclusive else ""
                self._w(
                    f"_ro.accumulate_batch({args[0]}, {args[1]}, {args[2]}, "
                    f"{op!r}, {self.mask}, _n0{hint})"
                )
            else:
                cost = _Cost()
                code = self.emit_expr(expr, cost)
                self._emit_cost(cost)
                self._w(code)
        else:  # pragma: no cover
            raise CodegenError(f"cannot emit statement {stmt!r}")

    def _emit_masked_if(self, stmt: A.IfStmt) -> None:
        """Element-dependent condition: evaluate both branches under masks."""
        n = self._next_mask
        self._next_mask += 1
        cost = _Cost()
        cond = self.emit_expr(stmt.cond, cost)
        self._emit_cost(cost)
        self._w(f"_c{n} = {cond}")
        outer_mask, outer_lane = self.mask, self.lane
        for suffix, mask_expr, body in (
            ("t", f"_mand({outer_mask}, _c{n})", stmt.then),
            ("f", f"_mand({outer_mask}, _lnot(_c{n}))", stmt.orelse),
        ):
            if body is None:
                continue
            mvar, nvar = f"_m{n}{suffix}", f"_n{n}{suffix}"
            self._w(f"{mvar} = {mask_expr}")
            self._w(f"{nvar} = _mcount({mvar}, _n0)")
            self._w(f"if {nvar}:")
            self.indent += 1
            self.mask, self.lane = mvar, nvar
            self.emit_block(body)
            self.mask, self.lane = outer_mask, outer_lane
            self.indent -= 1

    # -- whole kernel ---------------------------------------------------------

    def generate(self) -> str:
        self.taint.run()
        if self.taint.reason is not None:
            raise BatchUnsupported(self.taint.reason)
        self.lines = []
        self.indent = 0
        self.mask, self.lane = "None", "_n0"
        self._next_mask = 0
        self._w("def _batch_kernel(_start, _end, _ro, _env, _C):")
        self.indent += 1
        self._w("if _end <= _start:")
        self._w("    return")
        self._w('_ci = _env["compute_index"]')
        emitted: set[str] = set()
        for site in self.low.sites.values():
            key = site_key(site)
            kid = self.keys[key]
            if key in emitted:
                continue
            emitted.add(key)
            plan_modes = {
                p.mode
                for p in self.plan.site_plans.values()
                if site_key(p.site) == key
            }
            if plan_modes & {"linear", "hoisted"}:
                self._w(f'_info_{kid} = _env["info_{kid}"]')
                if site.kind == "data":
                    self._w(f'_mklanes_{kid} = _env["lanes_{kid}"]')
                    self._w(f'_mkrows_{kid} = _env["rows_{kid}"]')
                    self._w(f"_lanes_{kid} = lambda _o: _mklanes_{kid}(_start, _n0, _o)")
                    self._w(f"_rows_{kid} = lambda _o: _mkrows_{kid}(_start, _n0, _o)")
                else:
                    self._w(f'_rd_{kid} = _env["read_{kid}"]')
                    self._w(f'_tv_{kid} = _env["view_{kid}"]')
            if "nested" in plan_modes:
                self._w(f'_v_{site.root} = _env["val_{site.root}"]')
        self._w("_n0 = _end - _start")
        if _uses_elem_idx(self.low.body):
            # global 0-based element index per lane (the elemIdx() intrinsic);
            # gathered execution re-runs scattered elements out of a compacted
            # buffer and supplies their true global indices via the env
            self._w('_ev = _env.get("_elem_indices")')
            self._w("if _ev is None:")
            self._w("    _ev = _np.arange(_start, _end)")
        self._w("_C.elements_processed += _n0")
        self._w("with _errstate():")
        self.indent += 1
        self.emit_block(self.low.body)
        return "\n".join(self.lines) + "\n"
