"""Compilation driver: all paper versions of a reduction at once."""

from __future__ import annotations

from typing import Any

from repro.chapel import ast as A
from repro.chapel.parser import parse_program
from repro.compiler.translate import CompiledReduction, compile_reduction

__all__ = ["compile_all_versions", "OPT_LEVELS"]

#: The compiled versions evaluated in §V (manual FR is hand-written per app).
OPT_LEVELS = {"generated": 0, "opt-1": 1, "opt-2": 2}


def compile_all_versions(
    source: str | A.Program,
    constants: dict[str, Any],
    class_name: str | None = None,
) -> dict[str, CompiledReduction]:
    """Compile a reduction class at every optimization level.

    Returns ``{"generated": ..., "opt-1": ..., "opt-2": ...}``.  The program
    is parsed once; each level gets its own lowering (sites carry per-plan
    annotations).
    """
    program = parse_program(source) if isinstance(source, str) else source
    return {
        name: compile_reduction(program, constants, level, class_name)
        for name, level in OPT_LEVELS.items()
    }
