"""Compilation driver: all paper versions of a reduction at once."""

from __future__ import annotations

from typing import Any

from repro.chapel import ast as A
from repro.chapel.parser import parse_program
from repro.compiler.cache import compile_cached
from repro.compiler.translate import BACKENDS, CompiledReduction
from repro.obs.tracer import get_tracer
from repro.util.errors import AnalysisError

__all__ = ["compile_all_versions", "OPT_LEVELS"]

#: The compiled versions evaluated in §V (manual FR is hand-written per app).
OPT_LEVELS = {"generated": 0, "opt-1": 1, "opt-2": 2}


def compile_all_versions(
    source: str | A.Program,
    constants: dict[str, Any],
    class_name: str | None = None,
    analyze: str | None = None,
    backend: str = "scalar",
) -> dict[str, CompiledReduction]:
    """Compile a reduction class at every optimization level.

    Returns ``{"generated": ..., "opt-1": ..., "opt-2": ...}``.  The program
    is parsed once; each level gets its own lowering (sites carry per-plan
    annotations).  Compiles go through the process-wide kernel cache, so
    repeated calls with identical (source, constants, backend) reuse the
    already-exec'd kernels.

    ``backend`` selects the execution strategy for every level:
    ``"scalar"`` (per-element interpreted kernels, default) or ``"batch"``
    (split-level NumPy kernels with scalar fallback — see
    :mod:`repro.compiler.batch`).

    ``analyze`` runs the reduction-safety analyzer first:

    * ``None`` (default) — no analysis, behavior unchanged;
    * ``"warn"`` — render every diagnostic to stderr, compile anyway;
    * ``"strict"`` — additionally raise :class:`~repro.util.errors.\
AnalysisError` (refusing to emit code) when any **error**-level
      diagnostic is reported; warnings/infos never block compilation.
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    with get_tracer().span(
        "compile_all_versions", cat="compiler", backend=backend,
        analyze=analyze or "off",
    ):
        program = parse_program(source) if isinstance(source, str) else source
        if analyze is not None:
            if analyze not in ("warn", "strict"):
                raise ValueError(
                    f"analyze must be None, 'warn' or 'strict', got {analyze!r}"
                )
            _run_analysis(program, constants, class_name, strict=analyze == "strict")
        return {
            name: compile_cached(program, constants, level, class_name, backend)
            for name, level in OPT_LEVELS.items()
        }


def _run_analysis(
    program: A.Program,
    constants: dict[str, Any],
    class_name: str | None,
    strict: bool,
) -> None:
    # Imported here so plain compilation never pays the analysis import.
    import sys

    from repro.analysis import analyze_program, render_diagnostics

    diags = analyze_program(program, constants, class_name, effects=True)
    if diags:
        print(render_diagnostics(diags), file=sys.stderr)
    errors = [d for d in diags if d.is_error]
    if strict and errors:
        raise AnalysisError(
            f"refusing to compile: analyzer reported {len(errors)} "
            f"error(s) ({', '.join(sorted({d.code for d in errors}))})",
            diagnostics=errors,
        )
