"""Reference interpreter for mini-Chapel accumulate bodies.

Executes the *unlowered* reduction semantics directly: every element is a
live nested Chapel value, class fields are looked up as-is, and the
reduction object is updated through a plain
:class:`~repro.freeride.reduction_object.ReductionObject`.  This is the
semantic oracle the compiled versions (generated/opt-1/opt-2) are tested
against — if a transformation changes any result, the integration tests
catch it here.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Sequence

import numpy as np

from repro.chapel import ast as A
from repro.chapel.values import ChapelArray, ChapelRecord
from repro.compiler.lower import LoweredReduction
from repro.freeride.reduction_object import ReductionObject
from repro.util.errors import CompilerError

__all__ = ["interpret_accumulate", "interpret_over"]

_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "&&": lambda a, b: bool(a) and bool(b),
    "||": lambda a, b: bool(a) or bool(b),
}

_MATH = {
    "abs": abs,
    "sqrt": math.sqrt,
    "min": min,
    "max": max,
    "floor": math.floor,
    "toInt": int,
    "exp": math.exp,
    "log": math.log,
}

_RO_METHODS = {"roAdd": "add", "roMin": "min", "roMax": "max"}


class _Interp:
    def __init__(
        self,
        lowered: LoweredReduction,
        element: Any,
        extras: dict[str, Any],
        ro: ReductionObject,
        elem_index: int = 0,
    ) -> None:
        self.low = lowered
        self.ro = ro
        self.elem_index = elem_index
        self.scopes: list[dict[str, Any]] = [
            {lowered.param_name: element, **extras, **lowered.constants}
        ]

    # -- name resolution ----------------------------------------------------

    def lookup(self, name: str) -> Any:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise CompilerError(f"interpreter: unknown name {name!r}")

    def assign(self, name: str, value: Any) -> None:
        for scope in reversed(self.scopes):
            if name in scope:
                scope[name] = value
                return
        raise CompilerError(f"interpreter: assignment to undeclared {name!r}")

    # -- execution ------------------------------------------------------------

    def exec_block(self, block: A.Block) -> None:
        self.scopes.append({})
        for stmt in block.stmts:
            self.exec_stmt(stmt)
        self.scopes.pop()

    def exec_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.VarDeclStmt):
            d = stmt.decl
            value = self.eval(d.init) if d.init is not None else 0
            self.scopes[-1][d.name] = value
        elif isinstance(stmt, A.Assign):
            assert isinstance(stmt.target, A.Ident)
            value = self.eval(stmt.value)
            if stmt.op is not None:
                value = _BINOPS[stmt.op](self.lookup(stmt.target.name), value)
            self.assign(stmt.target.name, value)
        elif isinstance(stmt, A.ForStmt):
            lo = self.eval(stmt.range.lo)
            hi = self.eval(stmt.range.hi)
            self.scopes.append({stmt.var: lo})
            for i in range(int(lo), int(hi) + 1):
                self.scopes[-1][stmt.var] = i
                self.exec_block(stmt.body)
            self.scopes.pop()
        elif isinstance(stmt, A.IfStmt):
            if self.eval(stmt.cond):
                self.exec_block(stmt.then)
            elif stmt.orelse is not None:
                self.exec_block(stmt.orelse)
        elif isinstance(stmt, A.ExprStmt):
            expr = stmt.expr
            if isinstance(expr, A.Call) and expr.name in _RO_METHODS:
                g, e, v = (self.eval(a) for a in expr.args)
                self.ro.accumulate(int(g), int(e), float(v))
            else:
                self.eval(expr)
        else:  # pragma: no cover
            raise CompilerError(f"interpreter: unsupported statement {stmt!r}")

    def eval(self, expr: A.Expr) -> Any:
        if isinstance(expr, A.IntLit):
            return expr.value
        if isinstance(expr, A.RealLit):
            return expr.value
        if isinstance(expr, A.BoolLit):
            return expr.value
        if isinstance(expr, A.Ident):
            return self.lookup(expr.name)
        if isinstance(expr, A.BinOp):
            return _BINOPS[expr.op](self.eval(expr.left), self.eval(expr.right))
        if isinstance(expr, A.UnaryOp):
            v = self.eval(expr.operand)
            return -v if expr.op == "-" else (not v)
        if isinstance(expr, A.Index):
            base = self.eval(expr.base)
            idx = tuple(self.eval(i) for i in expr.indices)
            if isinstance(base, np.ndarray):
                # numpy elements use 1-based Chapel indexing in the DSL
                return base[tuple(int(i) - 1 for i in idx)]
            return base[idx if len(idx) > 1 else idx[0]]
        if isinstance(expr, A.Member):
            return getattr(self.eval(expr.base), expr.name)
        if isinstance(expr, A.Call):
            if expr.name in _RO_METHODS:
                raise CompilerError(f"{expr.name} is only valid as a statement")
            if expr.name == "elemIdx":
                return self.elem_index
            fn = _MATH[expr.name]
            return fn(*(self.eval(a) for a in expr.args))
        raise CompilerError(f"interpreter: unsupported expression {expr!r}")


def interpret_accumulate(
    lowered: LoweredReduction,
    element: Any,
    extras: dict[str, Any],
    ro: ReductionObject,
    elem_index: int = 0,
) -> None:
    """Run the accumulate body for one element.

    ``elem_index`` is the element's 0-based dataset position, observable
    from the DSL via the ``elemIdx()`` intrinsic.
    """
    interp = _Interp(lowered, element, extras, ro, elem_index=elem_index)
    interp.exec_block(lowered.body)


def interpret_over(
    lowered: LoweredReduction,
    elements: Iterable[Any] | ChapelArray,
    extras: dict[str, Any],
    ro_layout: Sequence[tuple[int, str]],
) -> ReductionObject:
    """Run the reduction over a whole dataset; returns the reduction object.

    ``elements`` may be a Chapel array of elements, any iterable of Chapel
    values, or a 2-D numpy array (rows as elements, 1-based indexing inside
    the DSL).
    """
    ro = ReductionObject()
    for num_elems, op in ro_layout:
        ro.alloc(num_elems, op)
    if isinstance(elements, np.ndarray):
        iterable: Iterable[Any] = (elements[i] for i in range(elements.shape[0]))
    elif isinstance(elements, ChapelArray):
        iterable = elements.elements()
    else:
        iterable = elements
    for i, element in enumerate(iterable):
        interpret_accumulate(lowered, element, extras, ro, elem_index=i)
    return ro
