"""Linearization — the paper's Algorithms 1 and 2.

FREERIDE exposes a dense-buffer view of data; Chapel allows arbitrarily
nested structures.  Linearization bridges them:

* :func:`compute_linearize_size` (Algorithm 1) recursively computes the
  packed byte size of a nested value — dispatching on primitive / iterative
  (array) / structure (record, tuple) types exactly as the paper's
  pseudo-code does;
* :func:`linearize_it` (Algorithm 2) allocates a buffer of that size and
  recursively copies every scalar into it, depth-first, producing a
  :class:`LinearizedBuffer`;
* :func:`delinearize` is the inverse (rebuild the nested value), used by
  round-trip tests and by applications that need results back in Chapel
  form.

Copy work is charged to an :class:`~repro.machine.counters.OpCounters`
ledger (``bytes_linearized``), because sequential linearization is the
scalability limit the paper observes for the opt-2 version.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.chapel.types import (
    ArrayType,
    ChapelType,
    EnumType,
    PrimitiveType,
    RecordType,
    StringType,
    TupleType,
)
from repro.chapel.values import ChapelArray, ChapelRecord, ChapelTuple
from repro.machine.counters import OpCounters
from repro.util.errors import LinearizationError

__all__ = [
    "compute_linearize_size",
    "linearize_it",
    "linearize_append",
    "delinearize",
    "LinearizedBuffer",
]


def compute_linearize_size(value: Any, typ: ChapelType) -> int:
    """Algorithm 1: the packed byte size of ``value`` under type ``typ``.

    Recursive over the value so that (in a Chapel with runtime domains) the
    size reflects the data actually present; for the fixed-shape types of
    this substrate it equals ``typ.sizeof``, which tests assert.
    """
    if typ.is_primitive:
        return typ.sizeof
    if isinstance(typ, ArrayType):
        if not isinstance(value, ChapelArray):
            raise LinearizationError(f"expected ChapelArray for {typ}, got {type(value)}")
        size = 0
        for x in value.elements():
            size += compute_linearize_size(x, typ.elt)
        return size
    if isinstance(typ, RecordType):
        if not isinstance(value, ChapelRecord):
            raise LinearizationError(f"expected ChapelRecord for {typ}, got {type(value)}")
        size = 0
        for name, ftype in typ.fields:
            size += compute_linearize_size(getattr(value, name), ftype)
        return size
    if isinstance(typ, TupleType):
        if not isinstance(value, ChapelTuple):
            raise LinearizationError(f"expected ChapelTuple for {typ}, got {type(value)}")
        size = 0
        for comp, ctype in zip(value, typ.elts):
            size += compute_linearize_size(comp, ctype)
        return size
    raise LinearizationError(f"cannot compute linearized size of {typ!r}")


@dataclass
class LinearizedBuffer:
    """The dense memory buffer Algorithm 2 produces.

    ``raw`` is a byte array; scalars live at packed offsets.  Typed numpy
    views over contiguous runs (``typed_view``) are what the opt-1
    strength-reduction exploits: "the inner-most level of the data is
    continuous".
    """

    typ: ChapelType
    raw: np.ndarray  # uint8

    def __post_init__(self) -> None:
        if self.raw.dtype != np.uint8:
            raise LinearizationError("LinearizedBuffer requires a uint8 backing array")
        # capacity-doubled backing storage; allocated lazily on first grow()
        # so the zero-copy numpy fast path stays zero-copy until appends
        # actually happen.  When present, ``raw`` is always a prefix view
        # of it.
        self._backing: np.ndarray | None = None

    @property
    def nbytes(self) -> int:
        return int(self.raw.size)

    @property
    def capacity(self) -> int:
        """Bytes available without reallocating (== nbytes before any grow)."""
        return int(self._backing.size) if self._backing is not None else self.nbytes

    def grow(self, new_nbytes: int) -> None:
        """Extend ``raw`` to ``new_nbytes``, preserving the existing prefix.

        Within capacity this is O(1) — ``raw`` just becomes a longer view
        of the backing array, so the unchanged prefix is never copied or
        re-walked.  Past capacity the backing doubles (amortized O(1) per
        appended byte); the one-time prefix copy also migrates buffers
        whose ``raw`` aliased caller-owned memory (the zero-copy fast
        path) into storage this buffer owns.
        """
        if new_nbytes < self.raw.size:
            raise LinearizationError(
                f"grow({new_nbytes}) would shrink a {self.raw.size}-byte buffer"
            )
        if self._backing is None or self._backing.size < new_nbytes:
            cap = max(new_nbytes, 2 * self.raw.size, 64)
            backing = np.zeros(cap, dtype=np.uint8)
            backing[: self.raw.size] = self.raw
            self._backing = backing
        self.raw = self._backing[: new_nbytes]

    def shrink(self, new_nbytes: int) -> None:
        """Roll ``raw`` back to a shorter prefix (failed append batch)."""
        if not 0 <= new_nbytes <= self.raw.size:
            raise LinearizationError(
                f"shrink({new_nbytes}) outside [0, {self.raw.size}]"
            )
        self.raw = self.raw[:new_nbytes]

    def _check(self, offset: int, size: int) -> None:
        if offset < 0 or offset + size > self.raw.size:
            raise LinearizationError(
                f"access [{offset}, {offset + size}) outside buffer of {self.raw.size} bytes"
            )

    def read_scalar(self, offset: int, prim: PrimitiveType | StringType | EnumType) -> Any:
        """Read one typed scalar at a byte offset."""
        self._check(offset, prim.sizeof)
        if isinstance(prim, StringType):
            return self.raw[offset : offset + prim.width].tobytes()
        view = self.raw[offset : offset + prim.sizeof].view(prim.dtype)
        return view[0].item()

    def write_scalar(
        self, offset: int, prim: PrimitiveType | StringType | EnumType, value: Any
    ) -> None:
        """Write one typed scalar at a byte offset."""
        self._check(offset, prim.sizeof)
        if isinstance(prim, StringType):
            data = prim.coerce(value)
            self.raw[offset : offset + prim.width] = np.frombuffer(data, dtype=np.uint8)
            return
        view = self.raw[offset : offset + prim.sizeof].view(prim.dtype)
        view[0] = prim.coerce(value) if hasattr(prim, "coerce") else value

    def typed_view(self, offset: int, dtype: np.dtype, count: int) -> np.ndarray:
        """A zero-copy typed view of ``count`` contiguous scalars."""
        dtype = np.dtype(dtype)
        self._check(offset, dtype.itemsize * count)
        return self.raw[offset : offset + dtype.itemsize * count].view(dtype)

    def slice_bytes(self, offset: int, size: int) -> np.ndarray:
        """A zero-copy byte view (e.g. one chunk of elements)."""
        self._check(offset, size)
        return self.raw[offset : offset + size]


def linearize_it(
    value: Any,
    typ: ChapelType,
    counters: OpCounters | None = None,
) -> LinearizedBuffer:
    """Algorithm 2: copy a nested value into a fresh dense buffer.

    Charges ``bytes_linearized`` to ``counters`` when given.  Arrays of
    primitives use a vectorized copy from their numpy backing — layout
    identical to the scalar walk, just faster.
    """
    size = compute_linearize_size(value, typ)
    buf = LinearizedBuffer(typ=typ, raw=np.zeros(size, dtype=np.uint8))
    _copy_in(buf, 0, value, typ)
    if counters is not None:
        counters.bytes_linearized += size
    return buf


def _copy_in(buf: LinearizedBuffer, offset: int, value: Any, typ: ChapelType) -> int:
    """Recursive copy; returns the offset after the copied value."""
    if typ.is_primitive:
        buf.write_scalar(offset, typ, value)  # type: ignore[arg-type]
        return offset + typ.sizeof
    if isinstance(typ, ArrayType):
        if not isinstance(value, ChapelArray):
            raise LinearizationError(f"expected ChapelArray for {typ}")
        if typ.elt.is_primitive and not isinstance(typ.elt, StringType):
            # Fast path: the numpy backing is already in row-major order.
            arr = value.as_numpy().reshape(-1)
            view = buf.typed_view(offset, typ.elt.dtype, arr.size)  # type: ignore[union-attr]
            view[:] = arr
            return offset + typ.sizeof
        for x in value.elements():
            offset = _copy_in(buf, offset, x, typ.elt)
        return offset
    if isinstance(typ, RecordType):
        if not isinstance(value, ChapelRecord):
            raise LinearizationError(f"expected ChapelRecord for {typ}")
        for name, ftype in typ.fields:
            offset = _copy_in(buf, offset, getattr(value, name), ftype)
        return offset
    if isinstance(typ, TupleType):
        if not isinstance(value, ChapelTuple):
            raise LinearizationError(f"expected ChapelTuple for {typ}")
        for comp, ctype in zip(value, typ.elts):
            offset = _copy_in(buf, offset, comp, ctype)
        return offset
    raise LinearizationError(f"cannot linearize type {typ!r}")


def linearize_append(
    buf: LinearizedBuffer,
    value: Any,
    counters: OpCounters | None = None,
) -> int:
    """Extend an array-typed buffer with more elements, in place.

    The complement of :func:`linearize_it` for the delta path: only the
    appended elements are walked and copied — the already-linearized
    prefix is left untouched (see :meth:`LinearizedBuffer.grow`).
    ``value`` must be a :class:`~repro.chapel.values.ChapelArray` with the
    same element type as the buffer.  Updates ``buf.typ`` to the extended
    domain and returns the new element count.
    """
    from repro.chapel.domains import Domain  # deferred: avoids a cycle

    typ = buf.typ
    if not isinstance(typ, ArrayType):
        raise LinearizationError(
            f"linearize_append requires an array-typed buffer, got {typ!r}"
        )
    if not isinstance(value, ChapelArray) or not isinstance(value.type, ArrayType):
        raise LinearizationError(
            f"expected a ChapelArray of new elements, got {type(value)}"
        )
    if value.type.elt != typ.elt:
        raise LinearizationError(
            f"appended element type {value.type.elt!r} does not match "
            f"buffer element type {typ.elt!r}"
        )
    extra = compute_linearize_size(value, value.type)
    offset = buf.raw.size
    buf.grow(offset + extra)
    end = _copy_in(buf, offset, value, value.type)
    if end != offset + extra:
        raise LinearizationError(
            f"append copied {end - offset} bytes, expected {extra}"
        )
    new_count = typ.domain.size + value.type.domain.size
    buf.typ = ArrayType(Domain(new_count), typ.elt)
    if counters is not None:
        counters.bytes_linearized += extra
    return new_count


def delinearize(buf: LinearizedBuffer) -> Any:
    """Rebuild the nested Chapel value from a linearized buffer."""
    value, end = _copy_out(buf, 0, buf.typ)
    if end != buf.nbytes:
        raise LinearizationError(
            f"delinearize consumed {end} of {buf.nbytes} bytes"
        )
    return value


def _copy_out(buf: LinearizedBuffer, offset: int, typ: ChapelType) -> tuple[Any, int]:
    if typ.is_primitive:
        return buf.read_scalar(offset, typ), offset + typ.sizeof  # type: ignore[arg-type]
    if isinstance(typ, ArrayType):
        arr = ChapelArray(typ)
        if typ.elt.is_primitive and not isinstance(typ.elt, StringType):
            view = buf.typed_view(offset, typ.elt.dtype, typ.domain.size)  # type: ignore[union-attr]
            arr.fill_from(view.copy())
            return arr, offset + typ.sizeof
        values = []
        for _ in range(typ.domain.size):
            v, offset = _copy_out(buf, offset, typ.elt)
            values.append(v)
        arr.fill_from(values)
        return arr, offset
    if isinstance(typ, RecordType):
        rec = ChapelRecord(typ)
        for name, ftype in typ.fields:
            v, offset = _copy_out(buf, offset, ftype)
            rec._fields[name] = v
        return rec, offset
    if isinstance(typ, TupleType):
        comps = []
        for ctype in typ.elts:
            v, offset = _copy_out(buf, offset, ctype)
            comps.append(v)
        return ChapelTuple(typ, comps), offset
    raise LinearizationError(f"cannot delinearize type {typ!r}")
