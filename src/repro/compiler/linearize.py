"""Linearization — the paper's Algorithms 1 and 2.

FREERIDE exposes a dense-buffer view of data; Chapel allows arbitrarily
nested structures.  Linearization bridges them:

* :func:`compute_linearize_size` (Algorithm 1) recursively computes the
  packed byte size of a nested value — dispatching on primitive / iterative
  (array) / structure (record, tuple) types exactly as the paper's
  pseudo-code does;
* :func:`linearize_it` (Algorithm 2) allocates a buffer of that size and
  recursively copies every scalar into it, depth-first, producing a
  :class:`LinearizedBuffer`;
* :func:`delinearize` is the inverse (rebuild the nested value), used by
  round-trip tests and by applications that need results back in Chapel
  form.

Copy work is charged to an :class:`~repro.machine.counters.OpCounters`
ledger (``bytes_linearized``), because sequential linearization is the
scalability limit the paper observes for the opt-2 version.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.chapel.types import (
    ArrayType,
    ChapelType,
    EnumType,
    PrimitiveType,
    RecordType,
    StringType,
    TupleType,
)
from repro.chapel.values import ChapelArray, ChapelRecord, ChapelTuple
from repro.machine.counters import OpCounters
from repro.util.errors import LinearizationError

__all__ = [
    "compute_linearize_size",
    "linearize_it",
    "delinearize",
    "LinearizedBuffer",
]


def compute_linearize_size(value: Any, typ: ChapelType) -> int:
    """Algorithm 1: the packed byte size of ``value`` under type ``typ``.

    Recursive over the value so that (in a Chapel with runtime domains) the
    size reflects the data actually present; for the fixed-shape types of
    this substrate it equals ``typ.sizeof``, which tests assert.
    """
    if typ.is_primitive:
        return typ.sizeof
    if isinstance(typ, ArrayType):
        if not isinstance(value, ChapelArray):
            raise LinearizationError(f"expected ChapelArray for {typ}, got {type(value)}")
        size = 0
        for x in value.elements():
            size += compute_linearize_size(x, typ.elt)
        return size
    if isinstance(typ, RecordType):
        if not isinstance(value, ChapelRecord):
            raise LinearizationError(f"expected ChapelRecord for {typ}, got {type(value)}")
        size = 0
        for name, ftype in typ.fields:
            size += compute_linearize_size(getattr(value, name), ftype)
        return size
    if isinstance(typ, TupleType):
        if not isinstance(value, ChapelTuple):
            raise LinearizationError(f"expected ChapelTuple for {typ}, got {type(value)}")
        size = 0
        for comp, ctype in zip(value, typ.elts):
            size += compute_linearize_size(comp, ctype)
        return size
    raise LinearizationError(f"cannot compute linearized size of {typ!r}")


@dataclass
class LinearizedBuffer:
    """The dense memory buffer Algorithm 2 produces.

    ``raw`` is a byte array; scalars live at packed offsets.  Typed numpy
    views over contiguous runs (``typed_view``) are what the opt-1
    strength-reduction exploits: "the inner-most level of the data is
    continuous".
    """

    typ: ChapelType
    raw: np.ndarray  # uint8

    def __post_init__(self) -> None:
        if self.raw.dtype != np.uint8:
            raise LinearizationError("LinearizedBuffer requires a uint8 backing array")

    @property
    def nbytes(self) -> int:
        return int(self.raw.size)

    def _check(self, offset: int, size: int) -> None:
        if offset < 0 or offset + size > self.raw.size:
            raise LinearizationError(
                f"access [{offset}, {offset + size}) outside buffer of {self.raw.size} bytes"
            )

    def read_scalar(self, offset: int, prim: PrimitiveType | StringType | EnumType) -> Any:
        """Read one typed scalar at a byte offset."""
        self._check(offset, prim.sizeof)
        if isinstance(prim, StringType):
            return self.raw[offset : offset + prim.width].tobytes()
        view = self.raw[offset : offset + prim.sizeof].view(prim.dtype)
        return view[0].item()

    def write_scalar(
        self, offset: int, prim: PrimitiveType | StringType | EnumType, value: Any
    ) -> None:
        """Write one typed scalar at a byte offset."""
        self._check(offset, prim.sizeof)
        if isinstance(prim, StringType):
            data = prim.coerce(value)
            self.raw[offset : offset + prim.width] = np.frombuffer(data, dtype=np.uint8)
            return
        view = self.raw[offset : offset + prim.sizeof].view(prim.dtype)
        view[0] = prim.coerce(value) if hasattr(prim, "coerce") else value

    def typed_view(self, offset: int, dtype: np.dtype, count: int) -> np.ndarray:
        """A zero-copy typed view of ``count`` contiguous scalars."""
        dtype = np.dtype(dtype)
        self._check(offset, dtype.itemsize * count)
        return self.raw[offset : offset + dtype.itemsize * count].view(dtype)

    def slice_bytes(self, offset: int, size: int) -> np.ndarray:
        """A zero-copy byte view (e.g. one chunk of elements)."""
        self._check(offset, size)
        return self.raw[offset : offset + size]


def linearize_it(
    value: Any,
    typ: ChapelType,
    counters: OpCounters | None = None,
) -> LinearizedBuffer:
    """Algorithm 2: copy a nested value into a fresh dense buffer.

    Charges ``bytes_linearized`` to ``counters`` when given.  Arrays of
    primitives use a vectorized copy from their numpy backing — layout
    identical to the scalar walk, just faster.
    """
    size = compute_linearize_size(value, typ)
    buf = LinearizedBuffer(typ=typ, raw=np.zeros(size, dtype=np.uint8))
    _copy_in(buf, 0, value, typ)
    if counters is not None:
        counters.bytes_linearized += size
    return buf


def _copy_in(buf: LinearizedBuffer, offset: int, value: Any, typ: ChapelType) -> int:
    """Recursive copy; returns the offset after the copied value."""
    if typ.is_primitive:
        buf.write_scalar(offset, typ, value)  # type: ignore[arg-type]
        return offset + typ.sizeof
    if isinstance(typ, ArrayType):
        if not isinstance(value, ChapelArray):
            raise LinearizationError(f"expected ChapelArray for {typ}")
        if typ.elt.is_primitive and not isinstance(typ.elt, StringType):
            # Fast path: the numpy backing is already in row-major order.
            arr = value.as_numpy().reshape(-1)
            view = buf.typed_view(offset, typ.elt.dtype, arr.size)  # type: ignore[union-attr]
            view[:] = arr
            return offset + typ.sizeof
        for x in value.elements():
            offset = _copy_in(buf, offset, x, typ.elt)
        return offset
    if isinstance(typ, RecordType):
        if not isinstance(value, ChapelRecord):
            raise LinearizationError(f"expected ChapelRecord for {typ}")
        for name, ftype in typ.fields:
            offset = _copy_in(buf, offset, getattr(value, name), ftype)
        return offset
    if isinstance(typ, TupleType):
        if not isinstance(value, ChapelTuple):
            raise LinearizationError(f"expected ChapelTuple for {typ}")
        for comp, ctype in zip(value, typ.elts):
            offset = _copy_in(buf, offset, comp, ctype)
        return offset
    raise LinearizationError(f"cannot linearize type {typ!r}")


def delinearize(buf: LinearizedBuffer) -> Any:
    """Rebuild the nested Chapel value from a linearized buffer."""
    value, end = _copy_out(buf, 0, buf.typ)
    if end != buf.nbytes:
        raise LinearizationError(
            f"delinearize consumed {end} of {buf.nbytes} bytes"
        )
    return value


def _copy_out(buf: LinearizedBuffer, offset: int, typ: ChapelType) -> tuple[Any, int]:
    if typ.is_primitive:
        return buf.read_scalar(offset, typ), offset + typ.sizeof  # type: ignore[arg-type]
    if isinstance(typ, ArrayType):
        arr = ChapelArray(typ)
        if typ.elt.is_primitive and not isinstance(typ.elt, StringType):
            view = buf.typed_view(offset, typ.elt.dtype, typ.domain.size)  # type: ignore[union-attr]
            arr.fill_from(view.copy())
            return arr, offset + typ.sizeof
        values = []
        for _ in range(typ.domain.size):
            v, offset = _copy_out(buf, offset, typ.elt)
            values.append(v)
        arr.fill_from(values)
        return arr, offset
    if isinstance(typ, RecordType):
        rec = ChapelRecord(typ)
        for name, ftype in typ.fields:
            v, offset = _copy_out(buf, offset, ftype)
            rec._fields[name] = v
        return rec, offset
    if isinstance(typ, TupleType):
        comps = []
        for ctype in typ.elts:
            v, offset = _copy_out(buf, offset, ctype)
            comps.append(v)
        return ChapelTuple(typ, comps), offset
    raise LinearizationError(f"cannot delinearize type {typ!r}")
