"""Plan-time bounds on reduction-object *group* indices.

The COLORED shared-memory technique (see :mod:`repro.freeride.coloring`)
needs to know, before a split runs, which reduction-object groups its RO
updates can possibly touch.  Two splits whose group sets are disjoint can
then update the one shared reduction object concurrently with no locks and
no per-thread replicas — the PyOP2-style conflict-free coloring argument.

This module answers the compile-time half of that question: a small
flow-sensitive abstract interpretation over the lowered accumulate body
computes an integer interval for the first argument of every
``roAdd``/``roMin``/``roMax`` intrinsic call.  The analysis understands

* integer literals, integer constants and ``+``/``-``/``*`` arithmetic;
* ``for`` loops (the loop variable ranges over the loop bounds' interval;
  the body is iterated to a fixpoint so accumulator-style updates widen
  soundly);
* conditionals, including **condition narrowing** for comparisons against
  declared-``int`` variables — which is what bounds histogram's clamp
  pattern ``if (b < 0) { b = 0; } if (b > bins - 1) { b = bins - 1; }``
  to ``[0, bins - 1]`` even though ``b`` starts as an unbounded
  ``toInt(...)`` result.

Anything else (reals, calls, data reads, division) is *unbounded*; a single
unbounded group index makes the whole result inexact and the engine falls
back to a replica- or lock-based technique.  The analysis is deliberately
conservative: it may report a wider interval than any execution realizes,
never a narrower one.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.chapel import ast as A
from repro.compiler.lower import LoweredReduction

__all__ = ["GroupBounds", "analyze_group_bounds"]

#: Fixpoint iteration cap for loop bodies; variables still changing after
#: this many rounds are widened to unbounded.
_MAX_LOOP_ITERATIONS = 8


@dataclass(frozen=True)
class _Iv:
    """An integer interval with independently optional bounds.

    ``None`` means unbounded on that side — unlike
    :class:`repro.analysis.intervals.Interval`, which requires both ends
    known, half-open intervals are first-class here because condition
    narrowing produces them (``b >= 0`` pins only the lower bound).
    """

    lo: int | None
    hi: int | None

    @property
    def bounded(self) -> bool:
        return self.lo is not None and self.hi is not None

    def add(self, other: "_Iv") -> "_Iv":
        return _Iv(
            None if self.lo is None or other.lo is None else self.lo + other.lo,
            None if self.hi is None or other.hi is None else self.hi + other.hi,
        )

    def sub(self, other: "_Iv") -> "_Iv":
        return _Iv(
            None if self.lo is None or other.hi is None else self.lo - other.hi,
            None if self.hi is None or other.lo is None else self.hi - other.lo,
        )

    def mul(self, other: "_Iv") -> "_Iv":
        if not (self.bounded and other.bounded):
            return _TOP
        products = [
            self.lo * other.lo, self.lo * other.hi,
            self.hi * other.lo, self.hi * other.hi,
        ]
        return _Iv(min(products), max(products))

    def neg(self) -> "_Iv":
        return _Iv(
            None if self.hi is None else -self.hi,
            None if self.lo is None else -self.lo,
        )

    def join(self, other: "_Iv") -> "_Iv":
        """Smallest interval containing both (the lattice join)."""
        return _Iv(
            None if self.lo is None or other.lo is None else min(self.lo, other.lo),
            None if self.hi is None or other.hi is None else max(self.hi, other.hi),
        )

    def clamp_hi(self, bound: int | None) -> "_Iv":
        if bound is None:
            return self
        hi = bound if self.hi is None else min(self.hi, bound)
        return _Iv(self.lo, hi)

    def clamp_lo(self, bound: int | None) -> "_Iv":
        if bound is None:
            return self
        lo = bound if self.lo is None else max(self.lo, bound)
        return _Iv(lo, self.hi)


_TOP = _Iv(None, None)


@dataclass(frozen=True)
class GroupBounds:
    """The analysis result for one lowered reduction.

    ``bounded`` is True only when *every* RO update site's group index got
    a finite interval; ``lo``/``hi`` then cover the union of all sites.
    ``sites`` counts the intrinsic calls analyzed — zero sites is bounded
    and touches no groups.  ``reason`` documents why an inexact result is
    inexact (for stats and trace events).
    """

    bounded: bool
    lo: int | None
    hi: int | None
    sites: int
    reason: str | None = None

    def groups(self, num_groups: int) -> frozenset[int] | None:
        """The touched group ids, clipped to the allocated layout.

        Returns ``None`` when the bounds are inexact (the caller must fall
        back), an explicit — possibly empty — frozenset otherwise.
        """
        if not self.bounded:
            return None
        if self.sites == 0 or self.lo is None or self.hi is None:
            return frozenset()
        lo = max(0, self.lo)
        hi = min(num_groups - 1, self.hi)
        return frozenset(range(lo, hi + 1))

    def fingerprint(self) -> str:
        """Stable digest of the bounds (folded into kernel-cache entries)."""
        text = f"{self.bounded}:{self.lo}:{self.hi}:{self.sites}"
        return hashlib.sha256(text.encode()).hexdigest()[:12]


class _Analyzer:
    """One flow-sensitive walk over an accumulate body."""

    def __init__(self, constants: dict[str, object]) -> None:
        self.constants = {
            k: int(v)
            for k, v in constants.items()
            if isinstance(v, int) and not isinstance(v, bool)
        }
        #: variables declared ``: int`` (plus loop vars) — the only ones
        #: condition narrowing may touch, since the ±1 adjustments for
        #: strict comparisons assume integer semantics
        self.int_vars: set[str] = set()
        self.record = True
        self.site_bounds: list[_Iv] = []

    # -- expressions ---------------------------------------------------------

    def eval(self, expr: A.Expr, env: dict[str, _Iv]) -> _Iv:
        if isinstance(expr, A.IntLit):
            return _Iv(expr.value, expr.value)
        if isinstance(expr, A.Ident):
            if expr.name in env:
                return env[expr.name]
            if expr.name in self.constants:
                c = self.constants[expr.name]
                return _Iv(c, c)
            return _TOP
        if isinstance(expr, A.BinOp):
            left = self.eval(expr.left, env)
            right = self.eval(expr.right, env)
            if expr.op == "+":
                return left.add(right)
            if expr.op == "-":
                return left.sub(right)
            if expr.op == "*":
                return left.mul(right)
            return _TOP  # division, modulo, comparisons, logical ops
        if isinstance(expr, A.UnaryOp) and expr.op == "-":
            return self.eval(expr.operand, env).neg()
        # reals, calls, data/extra reads, member chains: unbounded
        return _TOP

    # -- condition narrowing --------------------------------------------------

    def narrow(
        self, cond: A.Expr, truth: bool, env: dict[str, _Iv]
    ) -> dict[str, _Iv]:
        """Refine ``env`` under ``cond == truth`` (new dict, input unshared)."""
        env = dict(env)
        self._narrow_into(cond, truth, env)
        return env

    def _narrow_into(self, cond: A.Expr, truth: bool, env: dict[str, _Iv]) -> None:
        if isinstance(cond, A.UnaryOp) and cond.op == "!":
            self._narrow_into(cond.operand, not truth, env)
            return
        if not isinstance(cond, A.BinOp):
            return
        if cond.op == "&&" and truth:
            self._narrow_into(cond.left, True, env)
            self._narrow_into(cond.right, True, env)
            return
        if cond.op == "||" and not truth:
            self._narrow_into(cond.left, False, env)
            self._narrow_into(cond.right, False, env)
            return
        if cond.op not in ("<", "<=", ">", ">=", "=="):
            return
        # Normalize to <var> <op> <expr>; handle the mirrored form too.
        if isinstance(cond.left, A.Ident) and cond.left.name in self.int_vars:
            self._narrow_var(cond.left.name, cond.op, cond.right, truth, env)
        if isinstance(cond.right, A.Ident) and cond.right.name in self.int_vars:
            mirrored = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "=="}
            self._narrow_var(
                cond.right.name, mirrored[cond.op], cond.left, truth, env
            )

    def _narrow_var(
        self,
        name: str,
        op: str,
        bound_expr: A.Expr,
        truth: bool,
        env: dict[str, _Iv],
    ) -> None:
        bound = self.eval(bound_expr, env)
        iv = env.get(name, _TOP)
        if not truth:
            negated = {"<": ">=", "<=": ">", ">": "<=", ">=": "<"}
            if op == "==":  # != gives no interval refinement
                return
            op = negated[op]
        if op == "<":
            iv = iv.clamp_hi(None if bound.hi is None else bound.hi - 1)
        elif op == "<=":
            iv = iv.clamp_hi(bound.hi)
        elif op == ">":
            iv = iv.clamp_lo(None if bound.lo is None else bound.lo + 1)
        elif op == ">=":
            iv = iv.clamp_lo(bound.lo)
        elif op == "==":
            iv = iv.clamp_lo(bound.lo).clamp_hi(bound.hi)
        env[name] = iv

    # -- statements -----------------------------------------------------------

    def block(self, block: A.Block, env: dict[str, _Iv]) -> dict[str, _Iv]:
        for stmt in block.stmts:
            env = self.stmt(stmt, env)
        return env

    def stmt(self, stmt: A.Stmt, env: dict[str, _Iv]) -> dict[str, _Iv]:
        if isinstance(stmt, A.VarDeclStmt):
            decl = stmt.decl
            if (
                isinstance(decl.type, A.NamedTypeExpr)
                and decl.type.name == "int"
            ):
                self.int_vars.add(decl.name)
            env = dict(env)
            env[decl.name] = (
                self.eval(decl.init, env) if decl.init is not None else _TOP
            )
            return env
        if isinstance(stmt, A.Assign):
            if not isinstance(stmt.target, A.Ident):
                return env  # array-element stores carry no group index
            value = self.eval(stmt.value, env)
            if stmt.op is not None:
                cur = env.get(stmt.target.name, _TOP)
                value = {
                    "+": cur.add, "-": cur.sub, "*": cur.mul,
                }.get(stmt.op, lambda _v: _TOP)(value)
            env = dict(env)
            env[stmt.target.name] = value
            return env
        if isinstance(stmt, A.IfStmt):
            then_env = self.block(stmt.then, self.narrow(stmt.cond, True, env))
            else_env = self.narrow(stmt.cond, False, env)
            if stmt.orelse is not None:
                else_env = self.block(stmt.orelse, else_env)
            return self._join_envs(then_env, else_env)
        if isinstance(stmt, A.ForStmt):
            return self._for(stmt, env)
        if isinstance(stmt, A.ExprStmt):
            expr = stmt.expr
            if (
                self.record
                and isinstance(expr, A.Call)
                and expr.name in A.RO_INTRINSICS
                and expr.args
            ):
                self.site_bounds.append(self.eval(expr.args[0], env))
            return env
        if isinstance(stmt, A.Block):  # pragma: no cover - not produced
            return self.block(stmt, env)
        return env  # ReturnStmt and friends: no bindings change

    def _for(self, stmt: A.ForStmt, env: dict[str, _Iv]) -> dict[str, _Iv]:
        self.int_vars.add(stmt.var)
        lo = self.eval(stmt.range.lo, env)
        hi = self.eval(stmt.range.hi, env)
        loop_iv = _Iv(lo.lo, hi.hi)

        # Fixpoint over the body WITHOUT recording sites: intermediate
        # environments may be narrower than the loop invariant, and sites
        # must only ever be recorded under the invariant.
        recording, self.record = self.record, False
        cur = dict(env)
        converged = False
        for _ in range(_MAX_LOOP_ITERATIONS):
            inner = dict(cur)
            inner[stmt.var] = loop_iv
            out = self.block(stmt.body, inner)
            out.pop(stmt.var, None)
            new = self._join_envs(cur, out)
            if new == cur:
                converged = True
                break
            cur = new
        if not converged:
            for name in set(cur) | set(env):
                if cur.get(name) != env.get(name):
                    cur[name] = _TOP
        self.record = recording

        # One final pass under the stable invariant records the sites (and
        # re-applies the body's effect once, which the invariant absorbs).
        inner = dict(cur)
        inner[stmt.var] = loop_iv
        out = self.block(stmt.body, inner)
        out.pop(stmt.var, None)
        return self._join_envs(cur, out)

    @staticmethod
    def _join_envs(a: dict[str, _Iv], b: dict[str, _Iv]) -> dict[str, _Iv]:
        """Pointwise join; a variable bound on only one path is unbounded."""
        return {k: a[k].join(b[k]) for k in a.keys() & b.keys()}


def analyze_group_bounds(lowered: LoweredReduction) -> GroupBounds:
    """Bound the group index of every RO intrinsic in ``lowered``'s body."""
    analyzer = _Analyzer(lowered.constants)
    analyzer.block(lowered.body, {})
    sites = analyzer.site_bounds
    if not sites:
        return GroupBounds(bounded=True, lo=None, hi=None, sites=0)
    inexact = [iv for iv in sites if not iv.bounded]
    if inexact:
        return GroupBounds(
            bounded=False,
            lo=None,
            hi=None,
            sites=len(sites),
            reason=(
                f"{len(inexact)} of {len(sites)} reduction-object update "
                "sites have an unbounded group index"
            ),
        )
    total = sites[0]
    for iv in sites[1:]:
        total = total.join(iv)
    assert total.lo is not None and total.hi is not None
    return GroupBounds(
        bounded=True, lo=total.lo, hi=total.hi, sites=len(sites)
    )
