"""Plan-time bounds on reduction-object *group* indices.

The COLORED shared-memory technique (see :mod:`repro.freeride.coloring`)
needs to know, before a split runs, which reduction-object groups its RO
updates can possibly touch.  Two splits whose group sets are disjoint can
then update the one shared reduction object concurrently with no locks and
no per-thread replicas — the PyOP2-style conflict-free coloring argument.

This module is now a thin consumer of the unified symbolic effect
analysis (:mod:`repro.analysis.effects`): one abstract interpretation of
the lowered accumulate body yields a **split-parametric** summary — an
affine :class:`~repro.analysis.affine.Form` of the element index per
``roAdd``/``roMin``/``roMax`` call — and :class:`GroupBounds` carries it
forward so that

* :meth:`GroupBounds.groups` answers the whole-run question the old
  interval analysis answered (which groups can *any* element touch), and
* :meth:`GroupBounds.groups_for_range` answers the per-split question
  (which groups can elements ``[start, end)`` touch), which is what lets
  compiler-bounded apps color into genuinely wide waves instead of every
  split conflicting with every other;
* :attr:`GroupBounds.alignment` exposes the element-period of
  ``elemIdx()``-derived group forms (``e // k`` windows change group only
  at multiples of ``k``) as a split-boundary hint for
  :func:`repro.freeride.splitter.aligned_splits`.

The shared engine also fixes the historical one-sided-clamp widening:
``max(0, b)`` narrows to ``[0, +inf)`` and composes with a later
``min(b, hi)`` into ``[0, hi]`` instead of widening straight to
unbounded.  The analysis remains deliberately conservative: it may report
a wider footprint than any execution realizes, never a narrower one.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.compiler.lower import LoweredReduction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.analysis.effects import EffectSummary

__all__ = ["GroupBounds", "analyze_group_bounds"]


@dataclass(frozen=True)
class GroupBounds:
    """The analysis result for one lowered reduction.

    ``bounded`` is True only when *every* RO update site's group index got
    a finite interval; ``lo``/``hi`` then cover the union of all sites.
    ``sites`` counts the intrinsic calls analyzed — zero sites is bounded
    and touches no groups.  ``reason`` documents why an inexact result is
    inexact (for stats and trace events).

    ``summary`` is the underlying effect summary; ``alignment`` is the
    combined element-period of the group forms (``None`` when no
    element-dependent form exposes one).
    """

    bounded: bool
    lo: int | None
    hi: int | None
    sites: int
    reason: str | None = None
    alignment: int | None = None
    summary: "EffectSummary | None" = field(
        default=None, compare=False, repr=False
    )

    def groups(self, num_groups: int) -> frozenset[int] | None:
        """The touched group ids, clipped to the allocated layout.

        Returns ``None`` when the bounds are inexact (the caller must fall
        back), an explicit — possibly empty — frozenset otherwise.
        """
        if not self.bounded:
            return None
        if self.sites == 0 or self.lo is None or self.hi is None:
            return frozenset()
        lo = max(0, self.lo)
        hi = min(num_groups - 1, self.hi)
        return frozenset(range(lo, hi + 1))

    def groups_for_range(
        self, start: int, end: int, num_groups: int
    ) -> frozenset[int] | None:
        """Group ids elements ``[start, end)`` can touch (split footprint).

        Falls back to the whole-run :meth:`groups` set when no effect
        summary is attached (e.g. a :class:`GroupBounds` deserialized from
        an older spec).  Returns ``None`` when the bounds are inexact.
        """
        if not self.bounded:
            return None
        if self.summary is None:
            return self.groups(num_groups)
        out = self.summary.groups_for_range(start, end, num_groups)
        if out is None:  # pragma: no cover - bounded implies per-range too
            return self.groups(num_groups)
        return out

    def fingerprint(self) -> str:
        """Stable digest of the bounds (folded into kernel-cache entries).

        Includes the symbolic forms: two reductions with the same hull but
        different per-split footprints must not share colored kernel-cache
        entries.
        """
        text = f"{self.bounded}:{self.lo}:{self.hi}:{self.sites}"
        if self.summary is not None:
            text += f":{self.summary.fingerprint()}:{self.alignment}"
        return hashlib.sha256(text.encode()).hexdigest()[:12]


def analyze_group_bounds(lowered: LoweredReduction) -> GroupBounds:
    """Bound the group index of every RO intrinsic in ``lowered``'s body."""
    # Imported lazily: repro.analysis.effects pulls in the analysis package,
    # which this compiler-side module must not require at import time.
    from repro.analysis.effects import ELEM_RANGE, analyze_effects

    summary = analyze_effects(lowered)
    sites = summary.accumulates
    if not sites:
        return GroupBounds(
            bounded=True, lo=None, hi=None, sites=0, summary=summary
        )
    intervals = [eff.group_bounds(ELEM_RANGE) for eff in sites]
    inexact = [iv for iv in intervals if not iv.bounded]
    if inexact:
        return GroupBounds(
            bounded=False,
            lo=None,
            hi=None,
            sites=len(sites),
            reason=(
                f"{len(inexact)} of {len(sites)} reduction-object update "
                "sites have an unbounded group index"
            ),
            summary=summary,
        )
    total = intervals[0]
    for iv in intervals[1:]:
        total = total.join(iv)
    assert total.lo is not None and total.hi is not None
    return GroupBounds(
        bounded=True,
        lo=_ceil_int(total.lo),
        hi=_floor_int(total.hi),
        sites=len(sites),
        alignment=summary.alignment(),
        summary=summary,
    )


def _ceil_int(v: float | int) -> int:
    i = int(v)
    return i if i >= v else i + 1


def _floor_int(v: float | int) -> int:
    i = int(v)
    return i if i <= v else i - 1
