"""A Phoenix-style Map-Reduce runtime — the paper's structural comparator.

Figure 4 (right) shows the Map-Reduce processing structure the paper argues
against for data mining: all elements are processed in the map step, the
intermediate ``(key, value)`` pairs are **stored**, sorted and grouped, and
only then reduced.  FREERIDE fuses process+reduce per element and therefore
"avoids the overhead due to sorting, grouping, and shuffling ... [and] the
need for storage of intermediate (key, value) pairs".

This engine makes those overheads measurable: it counts every intermediate
pair, its storage bytes, and the sort/group work, so the Figure 4 ablation
benchmark can report exactly what FREERIDE saves.
"""

from __future__ import annotations

import sys
from collections import defaultdict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Sequence

from repro.freeride.splitter import SplitQueue, chunked_splitter, default_splitter
from repro.util.errors import ReproError
from repro.util.timing import PhaseTimer
from repro.util.validation import check_one_of, check_positive_int

__all__ = ["MapReduceStats", "MapReduceResult", "MapReduceEngine"]

#: ``map_fn(element, emit)`` calls ``emit(key, value)`` any number of times.
MapFn = Callable[[Any, Callable[[Hashable, Any], None]], None]
#: ``reduce_fn(key, values) -> reduced value`` over the grouped values.
ReduceFn = Callable[[Hashable, list[Any]], Any]
#: Optional map-side combiner with reduce semantics.
CombineFn = ReduceFn


@dataclass
class MapReduceStats:
    """Overhead accounting for one job."""

    num_threads: int = 1
    total_elements: int = 0
    pairs_emitted: int = 0
    pairs_after_combine: int = 0
    intermediate_bytes: int = 0
    sort_comparisons: int = 0
    distinct_keys: int = 0
    elements_per_thread: list[int] = field(default_factory=list)
    phase_seconds: dict[str, float] = field(default_factory=dict)


@dataclass
class MapReduceResult:
    """Final key -> reduced-value mapping plus overhead stats."""

    output: dict[Hashable, Any]
    stats: MapReduceStats


class _CountingKey:
    """Sort key wrapper that counts comparisons for the stats."""

    __slots__ = ("key", "counter")

    def __init__(self, key: Any, counter: list[int]) -> None:
        self.key = key
        self.counter = counter

    def __lt__(self, other: "_CountingKey") -> bool:
        self.counter[0] += 1
        return self.key < other.key


class MapReduceEngine:
    """Runs map -> sort/group -> reduce jobs with overhead accounting.

    Parameters mirror :class:`~repro.freeride.runtime.FreerideEngine` so the
    Figure 4 comparison holds everything but the processing structure fixed.
    """

    def __init__(
        self,
        num_threads: int = 1,
        executor: str = "serial",
        chunk_size: int | None = None,
        use_combiner: bool = False,
    ) -> None:
        self.num_threads = check_positive_int(num_threads, "num_threads")
        self.executor = check_one_of(executor, ("serial", "threads"), "executor")
        if chunk_size is not None:
            check_positive_int(chunk_size, "chunk_size")
        self.chunk_size = chunk_size
        self.use_combiner = use_combiner

    def run(
        self,
        map_fn: MapFn,
        reduce_fn: ReduceFn,
        data: Sequence[Any],
        combine_fn: CombineFn | None = None,
    ) -> MapReduceResult:
        """Execute one Map-Reduce job over ``data``."""
        if not callable(map_fn) or not callable(reduce_fn):
            raise ReproError("map_fn and reduce_fn must be callable")
        if self.use_combiner and combine_fn is None:
            combine_fn = reduce_fn

        timer = PhaseTimer()
        stats = MapReduceStats(num_threads=self.num_threads)

        if self.chunk_size is not None:
            splits = chunked_splitter(data, self.chunk_size)
        else:
            splits = default_splitter(data, self.num_threads)

        # ---- Map phase: every element processed, pairs buffered ----------
        buffers: list[list[tuple[Hashable, Any]]] = [
            [] for _ in range(self.num_threads)
        ]
        elems = [0] * self.num_threads

        def map_split(thread_id: int, split) -> None:
            buf = buffers[thread_id]
            emit = lambda k, v: buf.append((k, v))  # noqa: E731 - hot path
            for element in split.data:
                map_fn(element, emit)
                elems[thread_id] += 1

        with timer.phase("map"):
            if self.executor == "serial":
                for i, split in enumerate(splits):
                    if len(split):
                        map_split(i % self.num_threads, split)
            else:
                queue = SplitQueue(splits)

                def worker(thread_id: int) -> None:
                    while (s := queue.take()) is not None:
                        if len(s):
                            map_split(thread_id, s)

                with ThreadPoolExecutor(max_workers=self.num_threads) as pool:
                    for f in [
                        pool.submit(worker, t) for t in range(self.num_threads)
                    ]:
                        f.result()

        stats.total_elements = sum(elems)
        stats.elements_per_thread = elems
        stats.pairs_emitted = sum(len(b) for b in buffers)

        # ---- Optional map-side combine (per thread buffer) ----------------
        with timer.phase("combine"):
            if combine_fn is not None:
                combined_buffers = []
                for buf in buffers:
                    grouped: dict[Hashable, list[Any]] = defaultdict(list)
                    for k, v in buf:
                        grouped[k].append(v)
                    combined_buffers.append(
                        [(k, combine_fn(k, vs)) for k, vs in grouped.items()]
                    )
                buffers = combined_buffers

        all_pairs = [pair for buf in buffers for pair in buf]
        stats.pairs_after_combine = len(all_pairs)
        stats.intermediate_bytes = sum(
            sys.getsizeof(k) + sys.getsizeof(v) for k, v in all_pairs
        )

        # ---- Sort and group ("Sort (i,val) pairs using i") -----------------
        with timer.phase("sort_group"):
            counter = [0]
            all_pairs.sort(key=lambda kv: _CountingKey(kv[0], counter))
            stats.sort_comparisons = counter[0]
            groups: list[tuple[Hashable, list[Any]]] = []
            for k, v in all_pairs:
                if groups and groups[-1][0] == k:
                    groups[-1][1].append(v)
                else:
                    groups.append((k, [v]))
            stats.distinct_keys = len(groups)

        # ---- Reduce phase ("Reduce to compute each RObj(i)") ---------------
        with timer.phase("reduce"):
            output = {k: reduce_fn(k, vs) for k, vs in groups}

        stats.phase_seconds = timer.as_dict()
        return MapReduceResult(output=output, stats=stats)
