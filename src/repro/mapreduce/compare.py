"""Structural FREERIDE-vs-Map-Reduce comparison (the paper's Figure 4).

Runs the *same logical reduction* through both runtimes and reports the
overheads unique to the Map-Reduce structure: intermediate pair storage and
sort/group work.  The reduction result must be identical — only the
processing structure differs — which the comparison verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Sequence

import numpy as np

from repro.freeride.reduction_object import ReductionObject
from repro.freeride.runtime import FreerideEngine
from repro.freeride.spec import ReductionArgs, ReductionSpec
from repro.mapreduce.runtime import MapReduceEngine
from repro.util.errors import ReproError

__all__ = ["GeneralizedReduction", "StructuralComparison", "compare_structures"]


@dataclass
class GeneralizedReduction:
    """One computation expressed in Figure 4's common vocabulary.

    ``process(element) -> (group_index, values)`` maps an element to the
    reduction-object group it updates and the element values to fold in,
    exactly the ``(i, val) = Process(e)`` of Figure 4.  ``num_groups`` and
    ``num_elems`` give the reduction-object shape.
    """

    name: str
    process: Callable[[Any], tuple[int, np.ndarray]]
    num_groups: int
    num_elems: int

    def freeride_spec(self) -> ReductionSpec:
        process = self.process
        num_groups, num_elems = self.num_groups, self.num_elems

        def setup(ro: ReductionObject) -> None:
            ro.alloc_matrix(num_groups, num_elems)

        def reduction(args: ReductionArgs) -> None:
            # FREERIDE: each element is processed AND reduced immediately.
            for e in args.data:
                i, val = process(e)
                args.ro.accumulate_group(i, val)

        def finalize(ro: ReductionObject) -> dict[int, np.ndarray]:
            return {g: vals for g, vals in ro.groups()}

        return ReductionSpec(
            name=self.name,
            setup_reduction_object=setup,
            reduction=reduction,
            finalize=finalize,
        )

    def map_fn(self, element: Any, emit: Callable[[Hashable, Any], None]) -> None:
        # Map-Reduce: process every element, STORE the (i, val) pair.
        i, val = self.process(element)
        emit(i, np.asarray(val, dtype=np.float64))

    @staticmethod
    def reduce_fn(_key: Hashable, values: list[np.ndarray]) -> np.ndarray:
        return np.sum(values, axis=0)


@dataclass
class StructuralComparison:
    """Side-by-side overhead accounting for one workload."""

    name: str
    results_match: bool
    freeride_ro_updates: int
    freeride_intermediate_pairs: int  # always 0 - definitional
    mapreduce_pairs: int
    mapreduce_intermediate_bytes: int
    mapreduce_sort_comparisons: int
    freeride_output: dict[int, np.ndarray]
    mapreduce_output: dict[int, np.ndarray]


def compare_structures(
    workload: GeneralizedReduction,
    data: Sequence[Any],
    num_threads: int = 1,
    use_combiner: bool = False,
) -> StructuralComparison:
    """Run ``workload`` through both runtimes and compare."""
    fr = FreerideEngine(num_threads=num_threads).run(workload.freeride_spec(), data)
    mr = MapReduceEngine(num_threads=num_threads, use_combiner=use_combiner).run(
        workload.map_fn, workload.reduce_fn, data
    )

    fr_out: dict[int, np.ndarray] = fr.value
    mr_out = {k: np.asarray(v) for k, v in mr.output.items()}

    match = True
    for g, vals in fr_out.items():
        mr_vals = mr_out.get(g)
        if mr_vals is None:
            # Groups no element mapped to never appear in Map-Reduce output;
            # FREERIDE reports them at identity. Equivalent iff identity.
            if not np.allclose(vals, 0.0):
                match = False
        elif not np.allclose(vals, mr_vals):
            match = False
    if any(k not in fr_out for k in mr_out):
        match = False
    if not match:
        raise ReproError(
            f"structural comparison {workload.name!r}: runtimes disagree — "
            "the workload's process() is probably not order-independent"
        )

    return StructuralComparison(
        name=workload.name,
        results_match=match,
        freeride_ro_updates=fr.stats.ro_updates,
        freeride_intermediate_pairs=0,
        mapreduce_pairs=mr.stats.pairs_emitted,
        mapreduce_intermediate_bytes=mr.stats.intermediate_bytes,
        mapreduce_sort_comparisons=mr.stats.sort_comparisons,
        freeride_output=fr_out,
        mapreduce_output=mr_out,
    )
