"""Phoenix-style Map-Reduce runtime — the paper's structural comparator.

Implements the right-hand side of the paper's Figure 4 with full overhead
accounting (intermediate pairs, bytes, sort comparisons), so benchmarks can
quantify exactly what FREERIDE's fused process+reduce structure avoids.
"""

from repro.mapreduce.compare import (
    GeneralizedReduction,
    StructuralComparison,
    compare_structures,
)
from repro.mapreduce.runtime import MapReduceEngine, MapReduceResult, MapReduceStats

__all__ = [
    "MapReduceEngine",
    "MapReduceResult",
    "MapReduceStats",
    "GeneralizedReduction",
    "StructuralComparison",
    "compare_structures",
]
