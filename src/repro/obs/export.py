"""Trace exporters: JSONL event logs and Chrome ``trace_event`` JSON.

Two interchange formats:

* **JSONL** — one record per line, timestamps in *seconds* since the
  tracer epoch, exactly the in-memory record shape (``Span.as_dict`` /
  ``Event.as_dict``).  Greppable, streamable, loss-free.
* **Chrome trace** — the ``trace_event`` JSON-object format understood by
  Perfetto and ``chrome://tracing``: a ``{"traceEvents": [...]}`` object
  whose events use *microsecond* timestamps, ``ph: "X"`` complete events
  for spans, ``ph: "i"`` instants, and ``ph: "M"`` thread-name metadata.

:func:`validate_chrome_trace` is a dependency-free structural check of the
subset of the format we emit (used by tests and the CI trace-smoke step).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.obs.tracer import Event, Span, Tracer

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "load_jsonl",
    "load_trace",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
]

#: ``pid`` reported in exported traces (one process; a fixed label keeps
#: traces from different runs diff-able).
TRACE_PID = 1

_RecordLike = "Span | Event | dict[str, Any]"


def _as_dict(rec: Any) -> dict[str, Any]:
    if isinstance(rec, (Span, Event)):
        return rec.as_dict()
    if isinstance(rec, dict):
        return rec
    raise TypeError(f"cannot export record of type {type(rec).__name__}")


def _coerce_records(source: Any) -> list[dict[str, Any]]:
    if isinstance(source, Tracer):
        return [r.as_dict() for r in source.records()]
    return [_as_dict(r) for r in source]


def to_chrome_trace(
    source: "Tracer | Iterable[Any]",
    metadata: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Convert records (or a whole tracer) to a Chrome trace JSON object.

    OS thread idents are compacted to small ``tid`` integers in
    first-seen order, and each thread contributes one ``ph: "M"``
    ``thread_name`` metadata event so Perfetto labels the lanes.
    """
    records = _coerce_records(source)
    tid_map: dict[int, int] = {}
    thread_names: dict[int, str] = {}
    events: list[dict[str, Any]] = []
    for rec in records:
        raw_tid = int(rec.get("tid", 0))
        tid = tid_map.setdefault(raw_tid, len(tid_map))
        thread_names.setdefault(tid, str(rec.get("thread", "")) or f"thread-{tid}")
        ev: dict[str, Any] = {
            "name": str(rec.get("name", "")),
            "cat": str(rec.get("cat", "")) or "repro",
            "ph": str(rec.get("ph", "i")),
            "ts": float(rec.get("ts", 0.0)) * 1e6,
            "pid": TRACE_PID,
            "tid": tid,
        }
        if ev["ph"] == "X":
            ev["dur"] = float(rec.get("dur", 0.0)) * 1e6
        elif ev["ph"] == "i":
            ev["s"] = "t"  # thread-scoped instant
        args = rec.get("args") or {}
        if args:
            ev["args"] = {k: _jsonable(v) for k, v in args.items()}
        events.append(ev)
    # Chrome/Perfetto tolerate out-of-order events but some trace_event
    # consumers (and diffs between runs) do not: emit spans/instants in
    # timestamp order.  The sort is stable, so records sharing a timestamp
    # keep their original (emission) order.
    events.sort(key=lambda ev: ev["ts"])
    meta_events = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": tid,
            "args": {"name": name},
        }
        for tid, name in sorted(thread_names.items())
    ]
    out: dict[str, Any] = {
        "traceEvents": meta_events + events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        out["otherData"] = {k: _jsonable(v) for k, v in metadata.items()}
    return out


def _jsonable(value: Any) -> Any:
    """Best-effort JSON coercion for span args (numpy scalars, enums, ...)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    item = getattr(value, "item", None)  # numpy scalar
    if callable(item):
        try:
            return _jsonable(item())
        except Exception:
            pass
    v = getattr(value, "value", None)  # enum
    if isinstance(v, (bool, int, float, str)):
        return v
    return str(value)


def write_chrome_trace(
    path: str | Path,
    source: "Tracer | Iterable[Any]",
    metadata: dict[str, Any] | None = None,
) -> Path:
    """Write a Chrome ``trace_event`` JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(source, metadata), indent=1))
    return path


def write_jsonl(path: str | Path, source: "Tracer | Iterable[Any]") -> Path:
    """Write one JSON record per line (timestamps in seconds)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for rec in _coerce_records(source):
            fh.write(json.dumps({k: _jsonable(v) for k, v in rec.items()}))
            fh.write("\n")
    return path


def load_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Load a JSONL event log back into record dicts."""
    records = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def load_trace(path: str | Path) -> list[dict[str, Any]]:
    """Load either export format into *Chrome-format* event dicts.

    JSONL records (second-denominated) are converted through
    :func:`to_chrome_trace`; Chrome JSON files are returned as their
    ``traceEvents`` list.  The report CLI consumes this.
    """
    path = Path(path)
    text = path.read_text()
    stripped = text.lstrip()
    if stripped.startswith("{") or stripped.startswith("["):
        try:
            obj = json.loads(text)
        except json.JSONDecodeError:
            obj = None
        if isinstance(obj, dict) and "traceEvents" in obj:
            return list(obj["traceEvents"])
        if isinstance(obj, list):
            return obj
    # fall through: JSONL (one object per line)
    return to_chrome_trace(load_jsonl(path))["traceEvents"]


# -- validation ----------------------------------------------------------------

_KNOWN_PHASES = {"X", "i", "I", "M", "B", "E", "C", "b", "e", "n", "s", "t", "f"}


def validate_chrome_trace(obj: Any) -> list[str]:
    """Structural validation of a Chrome trace object; returns error strings.

    Accepts the JSON-object format (``{"traceEvents": [...]}``) or the
    bare-array format.  An empty list means the trace is valid.
    """
    errors: list[str] = []
    if isinstance(obj, dict):
        events = obj.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level 'traceEvents' must be a list"]
    elif isinstance(obj, list):
        events = obj
    else:
        return [f"trace must be an object or array, got {type(obj).__name__}"]

    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: event must be an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or ph not in _KNOWN_PHASES:
            errors.append(f"{where}: unknown or missing 'ph' {ph!r}")
            continue
        if ph in ("X", "i", "I", "B", "E", "C"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where}: 'ts' must be a non-negative number")
            if not isinstance(ev.get("name"), str) or not ev.get("name"):
                errors.append(f"{where}: 'name' must be a non-empty string")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: 'X' event needs non-negative 'dur'")
        if ph == "M" and ev.get("name") not in (
            "thread_name",
            "process_name",
            "thread_sort_index",
            "process_sort_index",
        ):
            errors.append(f"{where}: unknown metadata event {ev.get('name')!r}")
        for key in ("pid", "tid"):
            if key in ev and not isinstance(ev[key], int):
                errors.append(f"{where}: {key!r} must be an integer")
        if "args" in ev and not isinstance(ev["args"], dict):
            errors.append(f"{where}: 'args' must be an object")
    return errors


def validate_chrome_trace_file(path: str | Path) -> list[str]:
    """Validate a trace file on disk (parse errors become one error entry)."""
    try:
        obj = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot parse {path}: {exc}"]
    return validate_chrome_trace(obj)
