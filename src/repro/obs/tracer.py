"""Low-overhead tracing primitives (spans, instant events, a global tracer).

The tracer answers the question the paper's Figures 9-13 answer with their
phase decompositions — *where did the time go* — at the granularity the
engine and compiler actually work at: one span per split attempt, per
compiler stage, per combination phase; one instant event per notable
occurrence (cache hit, batch fallback, injected fault, requeue).

Design constraints:

* **Off the hot path when disabled.**  The disabled tracer is
  :data:`NULL_TRACER`, whose ``enabled`` attribute is ``False``; hot loops
  (per-split processing) check that one attribute once per executor setup
  and install *no* instrumentation at all, so a run with tracing disabled
  executes the exact pre-observability code path.  ``NullTracer.span`` also
  returns a shared no-op context manager, so cold-path call sites may call
  it unconditionally.
* **Thread-safe.**  Spans/events are recorded from engine worker threads;
  every append takes the tracer's lock (the append itself is tiny — the
  expensive work, formatting and export, happens after the run).
* **Monotonic, run-relative timestamps.**  All timestamps are
  ``time.perf_counter()`` seconds relative to the tracer's ``epoch``, so a
  trace is self-consistent regardless of wall-clock adjustments.

Records are either :class:`Span` (``ph == "X"`` — complete, has a
duration) or :class:`Event` (``ph == "i"`` — instant).  Both carry the OS
thread ident and thread name for per-thread attribution; engine spans add
the *logical* worker id in ``args["thread_id"]``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

__all__ = [
    "Event",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
]


@dataclass
class Event:
    """An instant occurrence (Chrome ``ph: "i"``)."""

    name: str
    ts: float  # seconds since the tracer's epoch
    cat: str = ""
    tid: int = 0
    thread: str = ""
    args: dict[str, Any] = field(default_factory=dict)

    ph: str = "i"

    def as_dict(self) -> dict[str, Any]:
        return {
            "ph": "i",
            "name": self.name,
            "cat": self.cat,
            "ts": self.ts,
            "tid": self.tid,
            "thread": self.thread,
            "args": dict(self.args),
        }


@dataclass
class Span:
    """A completed interval (Chrome ``ph: "X"``, a *complete* event)."""

    name: str
    ts: float  # start, seconds since the tracer's epoch
    dur: float  # seconds
    cat: str = ""
    tid: int = 0
    thread: str = ""
    args: dict[str, Any] = field(default_factory=dict)

    ph: str = "X"

    def as_dict(self) -> dict[str, Any]:
        return {
            "ph": "X",
            "name": self.name,
            "cat": self.cat,
            "ts": self.ts,
            "dur": self.dur,
            "tid": self.tid,
            "thread": self.thread,
            "args": dict(self.args),
        }


class _SpanHandle:
    """Context manager measuring one span; records on exit.

    ``set(**kw)`` attaches extra args discovered mid-span (e.g. the
    combination strategy, an attempt's outcome).
    """

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_start", "duration")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args
        self._start: float | None = None
        self.duration: float | None = None

    def set(self, **kwargs: Any) -> "_SpanHandle":
        self._args.update(kwargs)
        return self

    def __enter__(self) -> "_SpanHandle":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        end = time.perf_counter()
        assert self._start is not None, "span exited without entering"
        if exc_type is not None and "error" not in self._args:
            self._args["error"] = repr(exc)
        self.duration = end - self._start
        t = self._tracer
        cur = threading.current_thread()
        t._record(
            Span(
                name=self._name,
                ts=self._start - t.epoch,
                dur=self.duration,
                cat=self._cat,
                tid=cur.ident or 0,
                thread=cur.name,
                args=self._args,
            )
        )
        return False


class _NullSpan:
    """Shared no-op span: safe to enter/exit/annotate, records nothing."""

    __slots__ = ()

    def set(self, **kwargs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``enabled`` is ``False`` so hot paths can skip instrumentation
    entirely; cold paths may still call :meth:`span`/:meth:`event`
    unconditionally and pay only an empty method call.
    """

    enabled = False
    epoch = 0.0

    def span(self, name: str, cat: str = "", **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, cat: str = "", **args: Any) -> None:
        return None

    def ingest(self, records: "Iterable[Span | Event]") -> int:
        return 0

    def records(self) -> list[Span | Event]:
        return []

    def spans(self) -> list[Span]:
        return []

    def events(self) -> list[Event]:
        return []

    def clear(self) -> None:
        return None


#: The process-wide disabled tracer (a singleton; identity-comparable).
NULL_TRACER = NullTracer()


class Tracer:
    """Collects :class:`Span` and :class:`Event` records in memory.

    Parameters
    ----------
    max_records:
        optional cap on the number of stored records; once reached, new
        records are counted in :attr:`dropped` instead of stored (a trace
        of a runaway loop should not exhaust memory).
    """

    enabled = True

    def __init__(self, max_records: int | None = None) -> None:
        if max_records is not None and max_records < 0:
            raise ValueError("max_records must be >= 0 or None")
        self.epoch = time.perf_counter()
        self.max_records = max_records
        self.dropped = 0
        self._lock = threading.Lock()
        self._records: list[Span | Event] = []

    # -- recording -----------------------------------------------------------

    def now(self) -> float:
        """Seconds since this tracer's epoch."""
        return time.perf_counter() - self.epoch

    def span(self, name: str, cat: str = "", **args: Any) -> _SpanHandle:
        """Start a span; use as a context manager.

        ::

            with tracer.span("split", cat="split", split_id=3) as sp:
                ...
                sp.set(outcome="ok")
        """
        return _SpanHandle(self, name, cat, args)

    def event(self, name: str, cat: str = "", **args: Any) -> None:
        """Record an instant event at the current time."""
        cur = threading.current_thread()
        self._record(
            Event(
                name=name,
                ts=self.now(),
                cat=cat,
                tid=cur.ident or 0,
                thread=cur.name,
                args=args,
            )
        )

    def _record(self, rec: Span | Event) -> None:
        with self._lock:
            if self.max_records is not None and len(self._records) >= self.max_records:
                self.dropped += 1
                return
            self._records.append(rec)

    def ingest(self, records: "Iterable[Span | Event]") -> int:
        """Append pre-built records; returns how many were stored.

        Process-mode workers build their :class:`Span`/:class:`Event`
        records locally (timestamps relative to this tracer's epoch —
        ``perf_counter`` shares its clock across processes on the platforms
        the process executor supports, ``tid`` set to the worker pid) and
        ship them back with each result; the engine merges them here so one
        trace covers the whole process tree.  Respects ``max_records``.
        """
        n = 0
        with self._lock:
            for rec in records:
                if not isinstance(rec, (Span, Event)):
                    raise TypeError(
                        f"can only ingest Span or Event records, got {type(rec)!r}"
                    )
                if (
                    self.max_records is not None
                    and len(self._records) >= self.max_records
                ):
                    self.dropped += 1
                    continue
                self._records.append(rec)
                n += 1
        return n

    # -- inspection ----------------------------------------------------------

    def records(self) -> list[Span | Event]:
        """A snapshot copy of everything recorded so far."""
        with self._lock:
            return list(self._records)

    def spans(self) -> list[Span]:
        return [r for r in self.records() if isinstance(r, Span)]

    def events(self) -> list[Event]:
        return [r for r in self.records() if isinstance(r, Event)]

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.dropped = 0


# -- the process-wide active tracer ------------------------------------------

_active: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The currently active tracer (:data:`NULL_TRACER` when disabled)."""
    return _active


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` as the active tracer; returns the previous one.

    ``None`` disables tracing (installs :data:`NULL_TRACER`).
    """
    global _active
    previous = _active
    _active = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Enable tracing for a ``with`` block; restores the previous tracer.

    ::

        with tracing() as t:
            engine.run(spec, data)
        write_chrome_trace("run.json", t)
    """
    t = tracer if tracer is not None else Tracer()
    previous = set_tracer(t)
    try:
        yield t
    finally:
        set_tracer(previous)
