"""repro.obs — end-to-end tracing and metrics for the reproduction.

The observability layer the engine, compiler, apps and benchmarks share:

* :mod:`repro.obs.tracer` — :class:`Tracer` / :class:`Span` /
  :class:`Event`, with a no-op :data:`NULL_TRACER` fast path when
  disabled and a process-wide active tracer
  (:func:`get_tracer` / :func:`set_tracer` / :func:`tracing`);
* :mod:`repro.obs.metrics` — thread-safe counters, gauges and
  fixed-bucket histograms, snapshotted into ``RunStats.metrics`` per run;
* :mod:`repro.obs.export` — JSONL event logs and Chrome ``trace_event``
  JSON (loadable in Perfetto / ``chrome://tracing``), plus a
  dependency-free schema validator;
* :mod:`repro.obs.report` — replay a trace into the per-phase /
  per-thread decomposition the paper's figures use
  (``python -m repro.trace report <file>``);
* :mod:`repro.obs.profilestore` — the persistent cross-process run
  history behind profile-guided execution and regression diffs
  (``python -m repro.profile``).

Quickstart::

    from repro.obs import trace_to

    with trace_to("kmeans_trace.json"):
        KmeansRunner(8, 4, version="opt-2", num_threads=4,
                     executor="threads").run(points, cents, 5)
    # -> kmeans_trace.json loads in Perfetto; also:
    #    python -m repro.trace report kmeans_trace.json
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.obs.export import (
    load_jsonl,
    load_trace,
    to_chrome_trace,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profilestore import (
    MAX_FOOTPRINT_CELLS,
    PROFILE_SCHEMA_VERSION,
    REPRO_PROFILE_STORE_ENV,
    ProfileStore,
    RunProfile,
    default_store_root,
    resolve_store,
    shape_class,
    split_layout_fingerprint,
    summarize_durations,
)
from repro.obs.report import (
    ThreadSummary,
    TraceReport,
    format_report,
    summarize_trace,
)
from repro.obs.tracer import (
    NULL_TRACER,
    Event,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "Event",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    "trace_to",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "load_jsonl",
    "load_trace",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "ThreadSummary",
    "TraceReport",
    "summarize_trace",
    "format_report",
    "ProfileStore",
    "RunProfile",
    "default_store_root",
    "resolve_store",
    "shape_class",
    "split_layout_fingerprint",
    "summarize_durations",
    "PROFILE_SCHEMA_VERSION",
    "REPRO_PROFILE_STORE_ENV",
    "MAX_FOOTPRINT_CELLS",
]


@contextmanager
def trace_to(
    path: "str | Path",
    tracer: Tracer | None = None,
    metadata: dict[str, Any] | None = None,
) -> Iterator[Tracer]:
    """Trace a ``with`` block and write the Chrome trace file on exit.

    The one-liner benchmarks and CLIs use to turn any run into a trace
    artifact; the file is written even if the block raises (a trace of a
    failed run is the most valuable kind).
    """
    with tracing(tracer) as t:
        try:
            yield t
        finally:
            write_chrome_trace(path, t, metadata=metadata)
