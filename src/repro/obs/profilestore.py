"""Persistent run-history profiles — the store behind profile-guided runs.

PR 4's tracer observes one engine lifetime and forgets everything at
process exit.  This module is the cross-lifetime memory: every traced or
untraced :meth:`~repro.freeride.runtime.FreerideEngine.run` with a store
attached appends one compact :class:`RunProfile` record — program digest,
technique decision, wall/phase times, split-duration summary, cache and
fault counters, and (for kernels whose group footprints are
data-dependent) the *observed* per-split group footprints sampled at
commit time.  On a later run — possibly in a different process, days
later — the engine consults this history:

* ``technique="auto"`` keys into ``(digest, shape_class)`` and lets
  persisted lock-contention and wave-width outcomes override the
  cold-start heuristic;
* observed footprints feed :func:`repro.freeride.coloring.resolve_group_sets`
  as the ``source="profile"`` tier, so a histogram whose bin index the
  effect analysis cannot bound statically still colors into conflict-free
  waves on re-runs (the PyOP2 shape: per-kernel plans cached on disk keyed
  by digest);
* ``python -m repro.profile`` renders reports, diffs two snapshots for
  regressions, and garbage-collects old records.

Storage layout
--------------
One directory (default ``~/.cache/repro-profiles``, overridden by the
``REPRO_PROFILE_STORE`` environment variable or an explicit path) holding
append-only JSONL *segments*, one per writing process
(``segment-<host>-<pid>.jsonl``).  A writer never touches another
process's segment, and each record is appended with a single
``O_APPEND`` write, so concurrent engines — threads or separate
processes — never interleave bytes within a record.  Readers merge all
segments, sort by timestamp, and *skip* partial trailing lines (a writer
killed mid-append) with a counted warning rather than crashing.

The store is entirely opt-in: an engine constructed without one performs
zero store reads or writes, and nothing in this module is imported on the
engine's per-split hot path.
"""

from __future__ import annotations

import json
import os
import socket
import time
import warnings
from dataclasses import asdict, dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Any, Iterable, Sequence

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "REPRO_PROFILE_STORE_ENV",
    "MAX_FOOTPRINT_CELLS",
    "RunProfile",
    "ProfileStore",
    "default_store_root",
    "resolve_store",
    "shape_class",
    "split_layout_fingerprint",
    "summarize_durations",
]

PROFILE_SCHEMA_VERSION = 1

#: environment override for the store root directory
REPRO_PROFILE_STORE_ENV = "REPRO_PROFILE_STORE"

#: footprints are a *compact* sample: if the total number of recorded
#: (split, group) memberships would exceed this, the profile stores no
#: footprints at all — a footprint that dense would not color into useful
#: waves anyway, and the store must stay cheap to append and scan
MAX_FOOTPRINT_CELLS = 65536


def default_store_root() -> Path:
    """The store directory: ``$REPRO_PROFILE_STORE`` or ``~/.cache/repro-profiles``."""
    env = os.environ.get(REPRO_PROFILE_STORE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-profiles"


def shape_class(n_elements: int, num_threads: int) -> str:
    """The dataset-shape bucket used to key history lookups.

    Exact element counts rarely repeat across runs (k-means on 60 000 vs
    59 999 points is the same workload); the class buckets ``n_elements``
    to its power-of-two ceiling and appends the thread count, so history
    matches runs of the same *scale* and parallelism.
    """
    n = max(1, int(n_elements))
    ceil = 1 << (n - 1).bit_length()
    return f"n{ceil}/t{int(num_threads)}"


def split_layout_fingerprint(ranges: Sequence[tuple[int, int]]) -> str:
    """Stable digest of a split layout's ``(start, end)`` pairs.

    Observed footprints are per-split; replaying them on a later run is
    only meaningful when that run cuts the data into the *same* splits, so
    footprint reuse is keyed by this fingerprint in addition to the
    program digest.
    """
    text = ";".join(f"{int(a)}:{int(b)}" for a, b in ranges)
    return sha256(text.encode()).hexdigest()[:16]


def summarize_durations(durations: Iterable[float]) -> dict[str, float] | None:
    """Compact ``{count, mean, p50, p95, max}`` summary of split durations."""
    vals = sorted(float(d) for d in durations)
    if not vals:
        return None

    def pct(q: float) -> float:
        return vals[min(len(vals) - 1, int(q * len(vals)))]

    return {
        "count": len(vals),
        "mean": sum(vals) / len(vals),
        "p50": pct(0.50),
        "p95": pct(0.95),
        "max": vals[-1],
    }


@dataclass
class RunProfile:
    """One engine run's persisted record (a single JSONL line).

    Everything is JSON-native so a record survives schema-blind readers;
    ``footprints`` is a list of ``[start, end, [group ids...]]`` triples in
    split order (``None`` when the run observed none).
    """

    schema: int = PROFILE_SCHEMA_VERSION
    ts: float = 0.0
    # -- identity / keying ------------------------------------------------
    digest: str | None = None
    spec_name: str = ""
    shape_class: str = ""
    split_fingerprint: str | None = None
    # -- configuration ----------------------------------------------------
    opt_level: int | None = None
    backend: str | None = None
    effective_backend: str | None = None
    executor: str = "serial"
    workers: int = 1
    num_nodes: int = 1
    n_elements: int = 0
    num_splits: int = 0
    split_alignment: int | None = None
    # -- technique outcome ------------------------------------------------
    technique_requested: str = ""
    technique_effective: str = ""
    decision: dict[str, Any] | None = None
    coloring: dict[str, Any] | None = None
    # -- timings ----------------------------------------------------------
    wall_seconds: float = 0.0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    split_seconds: dict[str, float] | None = None
    # -- synchronization / caches / faults --------------------------------
    lock_acquisitions: int = 0
    lock_contention_mean: float | None = None
    kernel_cache_hits: int = 0
    kernel_cache_evictions: int = 0
    native_cache: dict[str, int] | None = None
    faults: dict[str, int] = field(default_factory=dict)
    # -- observed group footprints ----------------------------------------
    footprints: list[list[Any]] | None = None

    def to_line(self) -> str:
        """The record as one newline-terminated JSONL line."""
        return json.dumps(asdict(self), separators=(",", ":")) + "\n"


class ProfileStore:
    """Append-only on-disk run history (see module docstring).

    Thread- and process-safe by construction: each process appends to its
    own segment with atomic ``O_APPEND`` writes; readers merge segments.
    """

    def __init__(self, root: "str | Path | None" = None) -> None:
        self.root = Path(root) if root is not None else default_store_root()
        #: partial/undecodable lines skipped by the most recent load()
        self.skipped_lines = 0
        self._segment_fd: int | None = None
        self._segment_path: Path | None = None
        self._pid = os.getpid()

    # -- writing ----------------------------------------------------------

    def segment_path(self) -> Path:
        """This process's private segment file."""
        host = socket.gethostname().split(".")[0] or "host"
        return self.root / f"segment-{host}-{os.getpid()}.jsonl"

    def append(self, profile: RunProfile) -> Path:
        """Append one record atomically; returns the segment written to."""
        if profile.ts == 0.0:
            profile.ts = time.time()
        line = profile.to_line().encode("utf-8")
        fd = self._fd()
        # a single write(2) on an O_APPEND descriptor: concurrent appends
        # from other processes/threads cannot interleave within the record
        os.write(fd, line)
        assert self._segment_path is not None
        return self._segment_path

    def _fd(self) -> int:
        # the fd is cached per process; after a fork the child must open
        # its own segment, never inherit (and append into) the parent's
        if self._segment_fd is not None and self._pid == os.getpid():
            return self._segment_fd
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.segment_path()
        self._segment_fd = os.open(
            path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._segment_path = path
        self._pid = os.getpid()
        return self._segment_fd

    def close(self) -> None:
        """Close the writer fd (appends reopen it on demand).  Idempotent."""
        if self._segment_fd is not None and self._pid == os.getpid():
            try:
                os.close(self._segment_fd)
            except OSError:
                pass
        self._segment_fd = None
        self._segment_path = None

    # -- reading ----------------------------------------------------------

    def segments(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("segment-*.jsonl"))

    def load(
        self,
        digest: str | None = None,
        shape: str | None = None,
        last: int | None = None,
    ) -> list[dict[str, Any]]:
        """All records (oldest first), optionally filtered and truncated.

        Partial trailing lines — a writer killed mid-append — and
        undecodable lines are skipped; the count lands in
        :attr:`skipped_lines` and a single warning reports it.
        """
        records: list[dict[str, Any]] = []
        skipped = 0
        for seg in self.segments():
            try:
                raw = seg.read_bytes()
            except OSError:
                continue
            for line in raw.split(b"\n"):
                if not line.strip():
                    continue
                try:
                    rec = json.loads(line)
                except (json.JSONDecodeError, UnicodeDecodeError):
                    skipped += 1
                    continue
                if not isinstance(rec, dict):
                    skipped += 1
                    continue
                records.append(rec)
        self.skipped_lines = skipped
        if skipped:
            warnings.warn(
                f"profile store {self.root}: skipped {skipped} partial or "
                "corrupt line(s) (a writer may have been interrupted "
                "mid-append)",
                RuntimeWarning,
                stacklevel=2,
            )
        if digest is not None:
            records = [r for r in records if r.get("digest") == digest]
        if shape is not None:
            records = [r for r in records if r.get("shape_class") == shape]
        records.sort(key=lambda r: (r.get("ts") or 0.0))
        if last is not None and last >= 0:
            records = records[len(records) - min(last, len(records)):]
        return records

    def history(
        self, digest: str | None, shape: str, last: int = 10
    ) -> list[dict[str, Any]]:
        """The most recent ``last`` records for one ``(digest, shape_class)`` key."""
        if digest is None:
            return []
        return self.load(digest=digest, shape=shape, last=last)

    def latest_footprints(
        self, digest: str | None, split_fingerprint: str
    ) -> "dict[tuple[int, int], frozenset[int]] | None":
        """Observed per-split group sets from the newest matching record.

        Returns ``{(start, end): groups}`` keyed by each split's element
        range, or ``None`` when no record of this digest carries footprints
        for exactly this split layout.
        """
        if digest is None:
            return None
        for rec in reversed(self.load(digest=digest)):
            if rec.get("split_fingerprint") != split_fingerprint:
                continue
            fps = rec.get("footprints")
            if not fps:
                continue
            try:
                return {
                    (int(start), int(end)): frozenset(int(g) for g in groups)
                    for start, end, groups in fps
                }
            except (TypeError, ValueError):
                continue
        return None

    # -- retention ---------------------------------------------------------

    def gc(
        self, max_age_days: float | None = None, keep: int | None = None
    ) -> tuple[int, int]:
        """Drop old records; returns ``(kept, dropped)``.

        ``max_age_days`` drops records older than that; ``keep`` bounds the
        survivor count (newest win).  Survivors are compacted into a fresh
        segment owned by this process and every old segment is removed —
        concurrent writers keep appending to *their* segments untouched,
        so at worst a record written during the rewrite survives alongside
        the compacted file.
        """
        records = self.load()
        total = len(records)
        if max_age_days is not None:
            cutoff = time.time() - max_age_days * 86400.0
            records = [r for r in records if (r.get("ts") or 0.0) >= cutoff]
        if keep is not None and keep >= 0:
            records = records[len(records) - min(keep, len(records)):]
        old_segments = self.segments()
        self.close()
        if records:
            self.root.mkdir(parents=True, exist_ok=True)
            compacted = self.root / (
                f"segment-gc-{os.getpid()}-{int(time.time() * 1000)}.jsonl"
            )
            with open(compacted, "w", encoding="utf-8") as fh:
                for rec in records:
                    fh.write(json.dumps(rec, separators=(",", ":")) + "\n")
        for seg in old_segments:
            try:
                seg.unlink()
            except OSError:
                pass
        return len(records), total - len(records)


def resolve_store(
    store: "ProfileStore | str | Path | bool | None",
) -> ProfileStore | None:
    """Coerce an engine's ``profile_store`` argument into a store (or None).

    ``None``/``False`` disable profiling entirely; ``True`` opens the
    default root (env override honored); a path opens that directory; an
    existing :class:`ProfileStore` passes through.
    """
    if store is None or store is False:
        return None
    if store is True:
        return ProfileStore()
    if isinstance(store, ProfileStore):
        return store
    if isinstance(store, (str, Path)):
        return ProfileStore(store)
    raise TypeError(
        "profile_store must be a ProfileStore, path, bool or None, "
        f"got {type(store).__name__}"
    )
