"""Thread-safe metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments.  The
engine creates one per traced run, workers record into it (split-duration
latency histograms, reduction-object contention), and the finished
snapshot is attached to ``RunStats.metrics`` — so every run carries the
fine-grained distribution data the coarse counters cannot express (a
straggler split is invisible in a sum, obvious in a histogram tail).

Histograms use *fixed* bucket bounds chosen at creation time (no dynamic
rebinning): observation is O(log #buckets) via bisection and the snapshot
is directly comparable across runs with the same bounds.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
]

#: Latency bounds (seconds) sized for split durations: 50µs .. 10s.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
    2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Count bounds for discrete quantities (lock acquisitions, updates/split).
DEFAULT_COUNT_BUCKETS: tuple[float, ...] = (
    0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram: counts of observations per upper bound.

    ``bounds`` are **inclusive** upper bounds in ascending order
    (Prometheus-style ``le``); one implicit overflow bucket (``+inf``)
    catches everything beyond the last bound.  A value exactly equal to a
    bound lands in *that* bound's bucket: with bounds ``(0, 1, 2)``,
    ``observe(1.0)`` increments the ``le=1`` bucket, not ``le=2``.  This is
    load-bearing for count-valued histograms — ``observe(0)`` of a
    lock-free split must land in the ``le=0`` bucket so "zero contention"
    is distinguishable from "contention in (0, 1]".
    """

    __slots__ = ("name", "bounds", "_lock", "_counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Iterable[float]) -> None:
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise ValueError(f"histogram {self.name!r} needs at least one bound")
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(
                f"histogram {self.name!r} bounds must be strictly ascending"
            )
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)  # + overflow
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        v = float(value)
        idx = bisect_left(self.bounds, v)  # bounds are inclusive upper bounds
        with self._lock:
            self._counts[idx] += 1
            self.count += 1
            self.total += v
            if self.min is None or v < self.min:
                self.min = v
            if self.max is None or v > self.max:
                self.max = v

    @property
    def counts(self) -> list[int]:
        """Per-bucket counts; the last entry is the ``+inf`` overflow."""
        with self._lock:
            return list(self._counts)

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "count": self.count,
                "sum": self.total,
                "min": self.min,
                "max": self.max,
                "mean": self.total / self.count if self.count else 0.0,
            }


class MetricsRegistry:
    """Named instruments, created on first use.

    Asking for an existing name returns the same instrument; asking for a
    name registered as a different kind raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind: type, factory) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise TypeError(
                        f"metric {name!r} is a {type(existing).__name__}, "
                        f"not a {kind.__name__}"
                    )
                return existing
            created = factory()
            self._metrics[name] = created
            return created

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, bounds: Iterable[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(name, bounds))

    def snapshot(self) -> dict[str, Any]:
        """``{"counters": {...}, "gauges": {...}, "histograms": {...}}``."""
        with self._lock:
            metrics = dict(self._metrics)
        out: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, m in sorted(metrics.items()):
            if isinstance(m, Counter):
                out["counters"][name] = m.value
            elif isinstance(m, Gauge):
                out["gauges"][name] = m.value
            else:
                out["histograms"][name] = m.snapshot()
        return out

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()
