"""Trace analysis: replay an exported trace into summary tables.

Consumes Chrome-format events (see :func:`repro.obs.export.load_trace`)
and produces the decomposition the paper's figures use — time per engine
phase, work per thread, compiler-stage costs — so a trace file answers
"where did the time go" without opening a trace viewer.

``python -m repro.trace report <file>`` renders :func:`format_report`.
"""

from __future__ import annotations

import textwrap
from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = [
    "ThreadSummary",
    "TraceReport",
    "summarize_trace",
    "format_report",
    "format_profile_join",
]


@dataclass
class ThreadSummary:
    """Per-worker split accounting (one row of the per-thread table)."""

    label: str
    splits: int = 0  # committed/successful attempts
    attempts: int = 0  # all attempts, including retries
    retries: int = 0  # attempts beyond a split's first
    failures: int = 0  # attempts that did not succeed
    elements: int = 0
    busy_seconds: float = 0.0


@dataclass
class TraceReport:
    """Aggregated view of one trace file."""

    #: seconds per engine phase (cat == "phase"), e.g. local / finalize
    phases: dict[str, float] = field(default_factory=dict)
    #: per-thread split work (cat == "split"), keyed by worker label
    threads: dict[str, ThreadSummary] = field(default_factory=dict)
    #: seconds + call counts per compiler/linearize stage
    compiler: dict[str, tuple[int, float]] = field(default_factory=dict)
    #: seconds + counts per combination span
    combination: dict[str, tuple[int, float]] = field(default_factory=dict)
    #: instant-event tallies by name
    events: dict[str, int] = field(default_factory=dict)
    #: ``technique.decision`` event args in trace order — one record per
    #: run where the engine had to decide (``auto``) or degrade a request
    #: (``colored`` without exact group bounds); carries requested/chosen,
    #: the reason, and every heuristic input
    decisions: list[dict[str, Any]] = field(default_factory=list)
    #: ``batch_gather_proof`` / ``batch_gather_refuted`` event args — the
    #: batch backend's verdict per lane-varying access-site index
    gathers: list[dict[str, Any]] = field(default_factory=list)
    #: ``kernel_backend`` event args in trace order — one record per
    #: compiled kernel with the requested vs. effective backend tier
    #: (native/batch/scalar) and the recorded fallback reason, if any
    backends: list[dict[str, Any]] = field(default_factory=list)
    #: ``native_cache.hit`` / ``native_cache.miss`` event args — one per
    #: native compile request, distinguishing a disk-cache dlopen from a
    #: fresh toolchain invocation
    native_cache: list[dict[str, Any]] = field(default_factory=list)
    #: one record per ``delta.apply`` span (cat == "delta"): the epoch,
    #: Δ sizes, replay scope, checkpoint counters, rollback flag and
    #: seconds — incremental runs render as their own table so a reader
    #: can tell an O(|Δ|) pass from a full reduction at a glance
    deltas: list[dict[str, Any]] = field(default_factory=list)
    #: engine.run span count (= reduction passes in the trace)
    runs: int = 0
    #: one record per ``engine.run`` span: its args (spec, executor,
    #: technique, program ``digest``) plus ``seconds`` — the join key for
    #: comparing a trace against persisted profile-store history
    run_spans: list[dict[str, Any]] = field(default_factory=list)
    total_spans: int = 0
    total_events: int = 0


def _thread_label(ev: dict[str, Any]) -> str:
    args = ev.get("args") or {}
    if "thread_id" in args:
        return f"thread {args['thread_id']}"
    return f"tid {ev.get('tid', '?')}"


def summarize_trace(events: Iterable[dict[str, Any]]) -> TraceReport:
    """Aggregate Chrome-format events (µs timestamps) into a report."""
    report = TraceReport()
    tallies: TallyCounter[str] = TallyCounter()
    for ev in events:
        ph = ev.get("ph")
        if ph == "i":
            report.total_events += 1
            name = str(ev.get("name", ""))
            tallies[name] += 1
            if name == "technique.decision":
                report.decisions.append(dict(ev.get("args") or {}))
            elif name in ("batch_gather_proof", "batch_gather_refuted"):
                rec = dict(ev.get("args") or {})
                rec["proven"] = name == "batch_gather_proof"
                report.gathers.append(rec)
            elif name == "kernel_backend":
                report.backends.append(dict(ev.get("args") or {}))
            elif name in ("native_cache.hit", "native_cache.miss"):
                rec = dict(ev.get("args") or {})
                rec["hit"] = name == "native_cache.hit"
                report.native_cache.append(rec)
            continue
        if ph != "X":
            continue
        report.total_spans += 1
        name = str(ev.get("name", ""))
        cat = str(ev.get("cat", ""))
        dur_s = float(ev.get("dur", 0.0)) / 1e6
        if cat == "phase":
            report.phases[name] = report.phases.get(name, 0.0) + dur_s
        elif cat == "split":
            args = ev.get("args") or {}
            t = report.threads.setdefault(
                _thread_label(ev), ThreadSummary(label=_thread_label(ev))
            )
            t.attempts += 1
            t.busy_seconds += dur_s
            outcome = args.get("outcome", "ok")
            if outcome == "ok":
                t.splits += 1
                t.elements += int(args.get("elements", 0))
            else:
                t.failures += 1
            if int(args.get("attempt", 1)) > 1:
                t.retries += 1
        elif cat in ("compiler", "linearize", "cache"):
            count, secs = report.compiler.get(name, (0, 0.0))
            report.compiler[name] = (count + 1, secs + dur_s)
        elif cat == "combination":
            count, secs = report.combination.get(name, (0, 0.0))
            report.combination[name] = (count + 1, secs + dur_s)
        elif cat == "delta" and name == "delta.apply":
            rec = dict(ev.get("args") or {})
            rec["seconds"] = dur_s
            report.deltas.append(rec)
        elif cat == "engine" and name == "engine.run":
            report.runs += 1
            rec = dict(ev.get("args") or {})
            rec["seconds"] = dur_s
            report.run_spans.append(rec)
    report.events = dict(sorted(tallies.items()))
    return report


def _fmt_seconds(s: float) -> str:
    return f"{s:.6f}"


def format_report(report: TraceReport) -> str:
    """Render the per-phase / per-thread / compiler tables as text."""
    lines: list[str] = []
    lines.append(
        f"trace: {report.total_spans} spans, {report.total_events} events, "
        f"{report.runs} engine run(s)"
    )

    if report.phases:
        lines.append("")
        lines.append("engine phases (cat=phase)")
        lines.append(f"  {'phase':<24} {'seconds':>12}")
        total = 0.0
        for name, secs in sorted(report.phases.items()):
            lines.append(f"  {name:<24} {_fmt_seconds(secs):>12}")
            total += secs
        lines.append(f"  {'total':<24} {_fmt_seconds(total):>12}")

    if report.threads:
        lines.append("")
        lines.append("per-thread split work (cat=split)")
        header = (
            f"  {'worker':<12} {'splits':>7} {'attempts':>9} {'retries':>8} "
            f"{'failed':>7} {'elements':>10} {'busy_s':>12}"
        )
        lines.append(header)
        for label in sorted(report.threads):
            t = report.threads[label]
            lines.append(
                f"  {label:<12} {t.splits:>7} {t.attempts:>9} {t.retries:>8} "
                f"{t.failures:>7} {t.elements:>10} {_fmt_seconds(t.busy_seconds):>12}"
            )

    if report.compiler:
        lines.append("")
        lines.append("compiler & linearization (cat=compiler|linearize|cache)")
        lines.append(f"  {'stage':<24} {'calls':>7} {'seconds':>12}")
        for name, (count, secs) in sorted(report.compiler.items()):
            lines.append(f"  {name:<24} {count:>7} {_fmt_seconds(secs):>12}")

    if report.combination:
        lines.append("")
        lines.append("combination (cat=combination)")
        lines.append(f"  {'span':<24} {'count':>7} {'seconds':>12}")
        for name, (count, secs) in sorted(report.combination.items()):
            lines.append(f"  {name:<24} {count:>7} {_fmt_seconds(secs):>12}")

    if report.deltas:
        lines.append("")
        lines.append("incremental delta runs (cat=delta)")
        header = (
            f"  {'epoch':>5} {'+elems':>8} {'-elems':>8} {'replayed':>9} "
            f"{'re-elems':>9} {'cp saves':>9} {'seconds':>12}"
        )
        lines.append(header)
        for d in report.deltas:
            rolled = bool(d.get("rolled_back"))
            lines.append(
                f"  {d.get('epoch', '?'):>5} {d.get('appended', 0):>8} "
                f"{d.get('retracted', 0):>8} {d.get('groups_replayed', 0):>9} "
                f"{d.get('replay_elements', 0):>9} "
                f"{d.get('checkpoint_saves', 0):>9} "
                f"{_fmt_seconds(d.get('seconds', 0.0)):>12}"
                + ("  ROLLED BACK" if rolled else "")
            )
            if d.get("epochs_retained") is not None:
                lines.append(
                    f"        checkpoint ring retains "
                    f"{d['epochs_retained']} epoch(s)"
                )

    if report.decisions:
        lines.append("")
        lines.append("technique decisions (event=technique.decision)")
        for d in report.decisions:
            node = d.get("node", 0)
            lines.append(
                f"  node {node}: requested {d.get('requested', '?')!r}"
                f" -> ran {d.get('chosen', '?')!r}"
            )
            inputs = [
                f"{key}={d[key]}"
                for key in (
                    "colorable",
                    "max_wave_width",
                    "num_splits",
                    "replication_bytes",
                    "lock_contention_mean",
                )
                if d.get(key) is not None
            ]
            if inputs:
                lines.append(f"    inputs: {', '.join(inputs)}")
            for wrapped in textwrap.wrap(str(d.get("reason", "")), width=66):
                lines.append(f"    {wrapped}")

    if report.gathers:
        lines.append("")
        lines.append("batch gather proofs (event=batch_gather_proof|_refuted)")
        for g in report.gathers:
            verdict = "vectorized" if g.get("proven") else "refuted"
            lines.append(f"  {g.get('site', '?')}: {verdict}")
            if g.get("proven"):
                detail = f"    index {g.get('index')} bounded {g.get('bounds')}"
                if g.get("extent") is not None:
                    detail += f" within extent {g.get('extent')}"
                lines.append(detail)
            else:
                for wrapped in textwrap.wrap(str(g.get("reason", "")), width=66):
                    lines.append(f"    {wrapped}")

    if report.backends:
        lines.append("")
        lines.append("kernel backend decisions (event=kernel_backend)")
        # the last native_cache verdict per (reduction, opt_level) tells a
        # reader whether the native tier compiled or attached from disk
        cache_by_key: dict[tuple[Any, Any], str] = {}
        for c in report.native_cache:
            cache_by_key[(c.get("reduction"), c.get("opt_level"))] = (
                "disk-cache hit" if c.get("hit") else "compiled"
            )
        for b in report.backends:
            requested = b.get("requested", "?")
            effective = b.get("effective", "?")
            line = (
                f"  {b.get('reduction', '?')} [opt{b.get('opt_level', '?')}]: "
                f"requested {requested!r} -> ran {effective!r}"
            )
            if effective == "native":
                verdict = cache_by_key.get(
                    (b.get("reduction"), b.get("opt_level"))
                )
                if verdict:
                    line += f" ({verdict})"
            lines.append(line)
            if b.get("reason"):
                for wrapped in textwrap.wrap(str(b["reason"]), width=66):
                    lines.append(f"    {wrapped}")

    if report.events:
        lines.append("")
        lines.append("events")
        for name, count in report.events.items():
            lines.append(f"  {name:<32} {count:>7}")

    return "\n".join(lines)


def format_profile_join(report: TraceReport, store: Any, last: int = 10) -> str:
    """Join a trace's ``engine.run`` spans against profile-store history.

    ``store`` is a :class:`repro.obs.profilestore.ProfileStore`.  Each run
    span carrying a program ``digest`` is compared against the median wall
    time of the last ``last`` persisted records of the same digest — "this
    run vs what this program usually costs on this machine".
    """
    lines: list[str] = [f"profile-store comparison (store: {store.root})"]
    if not report.run_spans:
        lines.append("  trace holds no engine.run spans")
        return "\n".join(lines)
    for rec in report.run_spans:
        spec = rec.get("spec", "?")
        digest = rec.get("digest")
        seconds = rec.get("seconds", 0.0)
        if not digest:
            lines.append(
                f"  {spec}: {seconds:.6f}s — no program digest in the trace "
                "(hand-written spec?); cannot join against history"
            )
            continue
        history = [
            r for r in store.load(digest=digest, last=last)
            if isinstance(r.get("wall_seconds"), (int, float))
        ]
        label = f"{spec} [{digest[:12]}]"
        if not history:
            lines.append(
                f"  {label}: {seconds:.6f}s — no persisted history for this "
                "program"
            )
            continue
        walls = sorted(r["wall_seconds"] for r in history)
        mid = len(walls) // 2
        median = (
            walls[mid]
            if len(walls) % 2
            else (walls[mid - 1] + walls[mid]) / 2.0
        )
        delta = (seconds - median) / median * 100.0 if median > 0 else 0.0
        lines.append(
            f"  {label}: this run {seconds:.6f}s vs median "
            f"{median:.6f}s of last {len(history)} -> {delta:+.1f}%"
        )
        latest = history[-1]
        decision = latest.get("decision") or {}
        coloring = latest.get("coloring") or {}
        detail = (
            f"    latest record: technique {latest.get('technique_effective', '?')}"
        )
        if decision.get("source"):
            detail += f" (decision source {decision['source']})"
        if coloring.get("max_wave_width") is not None:
            detail += f", max wave width {coloring['max_wave_width']}"
        lines.append(detail)
    return "\n".join(lines)
