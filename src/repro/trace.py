"""``python -m repro.trace`` — trace-file tooling.

Subcommands::

    python -m repro.trace report <trace>          # per-phase/per-thread tables
    python -m repro.trace report <trace> --profile [STORE]
                                                  # + join vs profile store
    python -m repro.trace validate <trace>        # Chrome trace schema check
    python -m repro.trace convert <in.jsonl> <out.json>   # JSONL -> Chrome

``report`` and ``validate`` accept either export format (Chrome
``trace_event`` JSON or the JSONL event log); ``convert`` turns a JSONL
log into a Chrome trace loadable in Perfetto / ``chrome://tracing``.

Exit status: ``0`` on success; ``validate`` exits ``1`` when the trace is
structurally invalid (each problem is printed on its own line).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.obs import (
    format_report,
    load_jsonl,
    load_trace,
    summarize_trace,
    to_chrome_trace,
    validate_chrome_trace,
)

__all__ = ["main"]


def _cmd_report(args: argparse.Namespace) -> int:
    events = load_trace(args.trace)
    report = summarize_trace(events)
    print(format_report(report))
    if args.profile is not None:
        # imported lazily: the store is opt-in tooling, plain reports must
        # not touch it
        from repro.obs.profilestore import ProfileStore, default_store_root
        from repro.obs.report import format_profile_join

        store = ProfileStore(args.profile or default_store_root())
        print()
        print(format_profile_join(report, store))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    path = Path(args.trace)
    try:
        text = path.read_text()
    except OSError as exc:
        print(f"cannot read {path}: {exc}", file=sys.stderr)
        return 1
    stripped = text.lstrip()
    try:
        if stripped.startswith("{") or stripped.startswith("["):
            obj = json.loads(text)
            if isinstance(obj, dict) and "traceEvents" not in obj:
                # a one-record JSONL file also parses as a JSON object;
                # mirror load_trace and validate through the conversion
                obj = to_chrome_trace(load_jsonl(path))
        else:  # JSONL: validate through the Chrome conversion
            obj = to_chrome_trace(load_jsonl(path))
    except (json.JSONDecodeError, TypeError) as exc:
        print(f"cannot parse {path}: {exc}", file=sys.stderr)
        return 1
    errors = validate_chrome_trace(obj)
    if errors:
        for err in errors:
            print(err, file=sys.stderr)
        print(f"{path}: INVALID ({len(errors)} problem(s))", file=sys.stderr)
        return 1
    n = len(obj["traceEvents"]) if isinstance(obj, dict) else len(obj)
    print(f"{path}: valid Chrome trace ({n} events)")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    records = load_jsonl(args.source)
    out = Path(args.dest)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(to_chrome_trace(records), indent=1))
    print(f"wrote {out} ({len(records)} records)")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Inspect, validate and convert repro trace files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser(
        "report",
        help="print the per-phase / per-thread / compiler breakdown",
    )
    p_report.add_argument("trace", help="trace file (Chrome JSON or JSONL)")
    p_report.add_argument(
        "--profile", nargs="?", const="", default=None, metavar="STORE",
        help="join engine runs against profile-store history (optional "
             "store directory; default: $REPRO_PROFILE_STORE or "
             "~/.cache/repro-profiles)",
    )
    p_report.set_defaults(func=_cmd_report)

    p_validate = sub.add_parser(
        "validate", help="schema-check a Chrome trace (exit 1 when invalid)"
    )
    p_validate.add_argument("trace", help="trace file (Chrome JSON or JSONL)")
    p_validate.set_defaults(func=_cmd_validate)

    p_convert = sub.add_parser(
        "convert", help="convert a JSONL event log to a Chrome trace"
    )
    p_convert.add_argument("source", help="JSONL event log")
    p_convert.add_argument("dest", help="output Chrome trace JSON path")
    p_convert.set_defaults(func=_cmd_convert)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `... report trace.json | head`
        sys.exit(0)
