"""Iterative expressions over Chapel arrays.

Chapel allows reductions over *expressions*, not just arrays — the paper's
example is ``min reduce A+B`` (find the minimum elementwise sum).  An
:class:`IterExpr` is a lazy elementwise expression tree over arrays and
scalars; reductions iterate it, and the linearizer can materialize it
("for an iterative expression like A+B ... the linearization function is
invoked iteratively on each sum of corresponding elements").
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Iterator

import numpy as np

from repro.chapel.domains import Domain
from repro.chapel.values import ChapelArray
from repro.util.errors import ChapelTypeError

__all__ = ["IterExpr", "ArrayRef", "BinOpExpr", "UnaryOpExpr", "as_expr"]

_BINOPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "%": operator.mod,
    "**": operator.pow,
}

_UNOPS: dict[str, Callable[[Any], Any]] = {
    "-": operator.neg,
    "abs": abs,
}


class IterExpr:
    """Base class for lazy elementwise expressions.

    Subclasses expose the iteration :attr:`domain`, elementwise iteration
    (:meth:`__iter__`), per-index evaluation (:meth:`at`), and a vectorized
    :meth:`evaluate` producing a numpy array when the leaves are
    primitive-typed.
    """

    @property
    def domain(self) -> Domain:
        raise NotImplementedError

    def at(self, index: Any) -> Any:
        """Evaluate the expression at one Chapel index."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[Any]:
        for idx in self.domain:
            yield self.at(idx)

    def __len__(self) -> int:
        return self.domain.size

    def evaluate(self) -> np.ndarray:
        """Materialize the whole expression as a numpy array."""
        raise NotImplementedError

    # -- operator sugar -----------------------------------------------------
    def __add__(self, other: Any) -> "BinOpExpr":
        return BinOpExpr("+", self, as_expr(other, like=self))

    def __radd__(self, other: Any) -> "BinOpExpr":
        return BinOpExpr("+", as_expr(other, like=self), self)

    def __sub__(self, other: Any) -> "BinOpExpr":
        return BinOpExpr("-", self, as_expr(other, like=self))

    def __rsub__(self, other: Any) -> "BinOpExpr":
        return BinOpExpr("-", as_expr(other, like=self), self)

    def __mul__(self, other: Any) -> "BinOpExpr":
        return BinOpExpr("*", self, as_expr(other, like=self))

    def __rmul__(self, other: Any) -> "BinOpExpr":
        return BinOpExpr("*", as_expr(other, like=self), self)

    def __truediv__(self, other: Any) -> "BinOpExpr":
        return BinOpExpr("/", self, as_expr(other, like=self))

    def __neg__(self) -> "UnaryOpExpr":
        return UnaryOpExpr("-", self)


class ArrayRef(IterExpr):
    """A leaf referencing a Chapel array (or bare numpy array)."""

    def __init__(self, array: ChapelArray | np.ndarray) -> None:
        if isinstance(array, np.ndarray):
            self._np: np.ndarray | None = array
            self._chapel: ChapelArray | None = None
            self._domain = Domain(*(int(s) for s in array.shape))
        elif isinstance(array, ChapelArray):
            self._chapel = array
            self._np = None
            self._domain = array.domain
        else:
            raise ChapelTypeError(f"cannot reference {type(array)} as an array")

    @property
    def domain(self) -> Domain:
        return self._domain

    def at(self, index: Any) -> Any:
        if self._chapel is not None:
            return self._chapel[index]
        idx = index if isinstance(index, tuple) else (index,)
        return self._np[tuple(i - r.low for i, r in zip(idx, self._domain.ranges))]

    def evaluate(self) -> np.ndarray:
        if self._np is not None:
            return self._np
        return self._chapel.as_numpy()  # type: ignore[union-attr]


class ScalarExpr(IterExpr):
    """A scalar broadcast over a domain."""

    def __init__(self, value: Any, domain: Domain) -> None:
        self._value = value
        self._domain = domain

    @property
    def domain(self) -> Domain:
        return self._domain

    def at(self, index: Any) -> Any:
        return self._value

    def evaluate(self) -> np.ndarray:
        return np.full(self._domain.shape, self._value)


class BinOpExpr(IterExpr):
    """An elementwise binary operation between two conforming expressions."""

    def __init__(self, op: str, left: IterExpr, right: IterExpr) -> None:
        if op not in _BINOPS:
            raise ChapelTypeError(f"unknown elementwise operator {op!r}")
        if left.domain.shape != right.domain.shape:
            raise ChapelTypeError(
                f"non-conforming operands: {left.domain} vs {right.domain}"
            )
        self.op = op
        self.left = left
        self.right = right

    @property
    def domain(self) -> Domain:
        return self.left.domain

    def at(self, index: Any) -> Any:
        return _BINOPS[self.op](self.left.at(index), self.right.at(index))

    def evaluate(self) -> np.ndarray:
        return _BINOPS[self.op](self.left.evaluate(), self.right.evaluate())


class UnaryOpExpr(IterExpr):
    """An elementwise unary operation."""

    def __init__(self, op: str, operand: IterExpr) -> None:
        if op not in _UNOPS:
            raise ChapelTypeError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand

    @property
    def domain(self) -> Domain:
        return self.operand.domain

    def at(self, index: Any) -> Any:
        return _UNOPS[self.op](self.operand.at(index))

    def evaluate(self) -> np.ndarray:
        result = self.operand.evaluate()
        return -result if self.op == "-" else np.abs(result)


def as_expr(value: Any, like: IterExpr | None = None) -> IterExpr:
    """Coerce a value to an :class:`IterExpr`.

    Arrays become :class:`ArrayRef`; scalars broadcast over ``like``'s domain.
    """
    if isinstance(value, IterExpr):
        return value
    if isinstance(value, (ChapelArray, np.ndarray)):
        return ArrayRef(value)
    if isinstance(value, (int, float, bool, np.generic)):
        if like is None:
            raise ChapelTypeError("cannot broadcast a scalar without a domain")
        return ScalarExpr(value, like.domain)
    raise ChapelTypeError(f"cannot treat {type(value)} as an iterative expression")
