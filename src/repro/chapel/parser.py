"""Recursive-descent parser for the mini-Chapel subset.

Grammar (EBNF-ish)::

    program     := (record_decl | class_decl)*
    record_decl := "record" IDENT "{" var_decl* "}"
    class_decl  := "class" IDENT (":" IDENT)? "{" (var_decl | method_decl)* "}"
    var_decl    := "var" IDENT (":" type_expr)? ("=" expr)? ";"
    method_decl := "def" IDENT "(" params? ")" block
    params      := param ("," param)*
    param       := IDENT ":" type_expr
    type_expr   := "[" range ("," range)* "]" type_expr | IDENT
    range       := expr ".." expr
    block       := "{" stmt* "}"
    stmt        := var_decl | for_stmt | if_stmt | return_stmt
                 | assign_or_expr ";"
    for_stmt    := "for" IDENT "in" range block
    if_stmt     := "if" "(" expr ")" block ("else" (if_stmt | block))?
    return_stmt := "return" expr? ";"
    assign_or_expr := expr (("=" | "+=" | "-=" | "*=" | "/=") expr)?
    expr        := precedence-climbing over || && == != < <= > >= + - * / %
    primary     := literal | IDENT | call | "(" expr ")" | "-" primary
                 | "!" primary; postfix: "[" exprs "]" and "." IDENT

Operator precedence follows Chapel's (and C's) conventional ordering.
"""

from __future__ import annotations

from repro.chapel import ast as A
from repro.chapel.lexer import Token, tokenize
from repro.util.errors import ChapelSyntaxError

__all__ = ["parse_program", "parse_expression", "Parser"]

_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}

_COMPOUND_ASSIGN = {"+=", "-=", "*=", "/="}


class Parser:
    """Token-stream parser; one instance per source text."""

    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers -------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def check(self, kind: str, text: str | None = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.peek()
        if not self.check(kind, text):
            want = text or kind
            raise ChapelSyntaxError(
                f"expected {want!r}, found {tok.text!r}", tok.line, tok.column
            )
        return self.advance()

    # -- declarations -----------------------------------------------------------

    def parse_program(self) -> A.Program:
        records: list[A.RecordDecl] = []
        classes: list[A.ClassDecl] = []
        while not self.check("EOF"):
            if self.check("KEYWORD", "record"):
                records.append(self.parse_record())
            elif self.check("KEYWORD", "class"):
                classes.append(self.parse_class())
            else:
                tok = self.peek()
                raise ChapelSyntaxError(
                    f"expected 'record' or 'class', found {tok.text!r}",
                    tok.line,
                    tok.column,
                )
        return A.Program(records=tuple(records), classes=tuple(classes))

    def parse_record(self) -> A.RecordDecl:
        kw = self.expect("KEYWORD", "record")
        name = self.expect("IDENT").text
        self.expect("LBRACE")
        fields: list[A.VarDecl] = []
        while not self.accept("RBRACE"):
            fields.append(self.parse_var_decl())
        return A.RecordDecl(
            name=name, fields=tuple(fields), line=kw.line, col=kw.column
        )

    def parse_class(self) -> A.ClassDecl:
        kw = self.expect("KEYWORD", "class")
        name = self.expect("IDENT").text
        parent = None
        if self.accept("COLON"):
            parent = self.expect("IDENT").text
        self.expect("LBRACE")
        fields: list[A.VarDecl] = []
        methods: list[A.MethodDecl] = []
        while not self.accept("RBRACE"):
            if self.check("KEYWORD", "var"):
                fields.append(self.parse_var_decl())
            elif self.check("KEYWORD", "def"):
                methods.append(self.parse_method())
            else:
                tok = self.peek()
                raise ChapelSyntaxError(
                    f"expected 'var' or 'def' in class body, found {tok.text!r}",
                    tok.line,
                    tok.column,
                )
        return A.ClassDecl(
            name=name,
            parent=parent,
            fields=tuple(fields),
            methods=tuple(methods),
            line=kw.line,
            col=kw.column,
        )

    def parse_var_decl(self) -> A.VarDecl:
        kw = self.expect("KEYWORD", "var")
        name = self.expect("IDENT").text
        typ = None
        init = None
        if self.accept("COLON"):
            typ = self.parse_type_expr()
        if self.accept("OP", "="):
            init = self.parse_expr()
        self.expect("SEMI")
        if typ is None and init is None:
            raise ChapelSyntaxError(f"var {name} needs a type or an initializer")
        return A.VarDecl(name=name, type=typ, init=init, line=kw.line, col=kw.column)

    def parse_method(self) -> A.MethodDecl:
        kw = self.expect("KEYWORD", "def")
        name = self.expect("IDENT").text
        self.expect("LPAREN")
        params: list[A.Param] = []
        if not self.check("RPAREN"):
            while True:
                pname = self.expect("IDENT").text
                self.expect("COLON")
                ptype = self.parse_type_expr()
                params.append(A.Param(name=pname, type=ptype))
                if not self.accept("COMMA"):
                    break
        self.expect("RPAREN")
        body = self.parse_block()
        return A.MethodDecl(
            name=name, params=tuple(params), body=body, line=kw.line, col=kw.column
        )

    def parse_type_expr(self) -> A.TypeExpr:
        if self.accept("LBRACKET"):
            ranges = [self.parse_range()]
            while self.accept("COMMA"):
                ranges.append(self.parse_range())
            self.expect("RBRACKET")
            elt = self.parse_type_expr()
            return A.ArrayTypeExpr(ranges=tuple(ranges), elt=elt)
        tok = self.expect("IDENT")
        return A.NamedTypeExpr(name=tok.text)

    def parse_range(self) -> A.RangeExpr:
        lo = self.parse_expr()
        self.expect("DOTDOT")
        hi = self.parse_expr()
        return A.RangeExpr(lo=lo, hi=hi)

    # -- statements -----------------------------------------------------------

    def parse_block(self) -> A.Block:
        self.expect("LBRACE")
        stmts: list[A.Stmt] = []
        while not self.accept("RBRACE"):
            stmts.append(self.parse_stmt())
        return A.Block(stmts=tuple(stmts))

    def parse_stmt(self) -> A.Stmt:
        if self.check("KEYWORD", "var"):
            decl = self.parse_var_decl()
            return A.VarDeclStmt(decl=decl, line=decl.line, col=decl.col)
        if self.check("KEYWORD", "for"):
            return self.parse_for()
        if self.check("KEYWORD", "if"):
            return self.parse_if()
        if self.check("KEYWORD", "return"):
            kw = self.advance()
            value = None
            if not self.check("SEMI"):
                value = self.parse_expr()
            self.expect("SEMI")
            return A.ReturnStmt(value=value, line=kw.line, col=kw.column)
        # assignment or expression statement
        start = self.peek()
        expr = self.parse_expr()
        tok = self.peek()
        if tok.kind == "OP" and tok.text == "=":
            self.advance()
            value = self.parse_expr()
            self.expect("SEMI")
            self._check_lvalue(expr)
            return A.Assign(
                target=expr, value=value, op=None, line=start.line, col=start.column
            )
        if tok.kind == "OP" and tok.text in _COMPOUND_ASSIGN:
            self.advance()
            value = self.parse_expr()
            self.expect("SEMI")
            self._check_lvalue(expr)
            return A.Assign(
                target=expr,
                value=value,
                op=tok.text[0],
                line=start.line,
                col=start.column,
            )
        self.expect("SEMI")
        return A.ExprStmt(expr=expr, line=start.line, col=start.column)

    @staticmethod
    def _check_lvalue(expr: A.Expr) -> None:
        if not isinstance(expr, (A.Ident, A.Index, A.Member)):
            raise ChapelSyntaxError(f"invalid assignment target {expr}")

    def parse_for(self) -> A.ForStmt:
        kw = self.expect("KEYWORD", "for")
        var = self.expect("IDENT").text
        self.expect("KEYWORD", "in")
        rng = self.parse_range()
        body = self.parse_block()
        return A.ForStmt(var=var, range=rng, body=body, line=kw.line, col=kw.column)

    def parse_if(self) -> A.IfStmt:
        kw = self.expect("KEYWORD", "if")
        self.expect("LPAREN")
        cond = self.parse_expr()
        self.expect("RPAREN")
        then = self.parse_block()
        orelse: A.Block | None = None
        if self.accept("KEYWORD", "else"):
            if self.check("KEYWORD", "if"):
                orelse = A.Block(stmts=(self.parse_if(),))
            else:
                orelse = self.parse_block()
        return A.IfStmt(
            cond=cond, then=then, orelse=orelse, line=kw.line, col=kw.column
        )

    # -- expressions -------------------------------------------------------------

    def parse_expr(self, min_prec: int = 1) -> A.Expr:
        left = self.parse_unary()
        while True:
            tok = self.peek()
            if tok.kind != "OP" or tok.text not in _BINARY_PRECEDENCE:
                break
            prec = _BINARY_PRECEDENCE[tok.text]
            if prec < min_prec:
                break
            self.advance()
            right = self.parse_expr(prec + 1)
            left = A.BinOp(
                op=tok.text, left=left, right=right, line=left.line, col=left.col
            )
        return left

    def parse_unary(self) -> A.Expr:
        tok = self.peek()
        if self.accept("OP", "-"):
            return A.UnaryOp(
                op="-", operand=self.parse_unary(), line=tok.line, col=tok.column
            )
        if self.accept("OP", "!"):
            return A.UnaryOp(
                op="!", operand=self.parse_unary(), line=tok.line, col=tok.column
            )
        return self.parse_postfix()

    def parse_postfix(self) -> A.Expr:
        expr = self.parse_primary()
        while True:
            if self.accept("LBRACKET"):
                indices = [self.parse_expr()]
                while self.accept("COMMA"):
                    indices.append(self.parse_expr())
                self.expect("RBRACKET")
                expr = A.Index(
                    base=expr, indices=tuple(indices), line=expr.line, col=expr.col
                )
            elif self.check("OP", "."):
                self.advance()
                name = self.expect("IDENT").text
                expr = A.Member(base=expr, name=name, line=expr.line, col=expr.col)
            else:
                return expr

    def parse_primary(self) -> A.Expr:
        tok = self.peek()
        if tok.kind == "INT":
            self.advance()
            return A.IntLit(value=int(tok.text), line=tok.line, col=tok.column)
        if tok.kind == "REAL":
            self.advance()
            return A.RealLit(value=float(tok.text), line=tok.line, col=tok.column)
        if tok.kind == "KEYWORD" and tok.text in ("true", "false"):
            self.advance()
            return A.BoolLit(
                value=tok.text == "true", line=tok.line, col=tok.column
            )
        if tok.kind == "IDENT":
            self.advance()
            if self.check("LPAREN"):
                self.advance()
                args: list[A.Expr] = []
                if not self.check("RPAREN"):
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept("COMMA"):
                            break
                self.expect("RPAREN")
                return A.Call(
                    name=tok.text, args=tuple(args), line=tok.line, col=tok.column
                )
            return A.Ident(name=tok.text, line=tok.line, col=tok.column)
        if tok.kind == "LPAREN":
            self.advance()
            inner = self.parse_expr()
            self.expect("RPAREN")
            return inner
        raise ChapelSyntaxError(
            f"unexpected token {tok.text!r} in expression", tok.line, tok.column
        )


def parse_program(source: str) -> A.Program:
    """Parse a mini-Chapel program (records + reduction classes)."""
    parser = Parser(source)
    return parser.parse_program()


def parse_expression(source: str) -> A.Expr:
    """Parse a single expression (used by tests and the REPL-ish tools)."""
    parser = Parser(source)
    expr = parser.parse_expr()
    parser.expect("EOF")
    return expr
