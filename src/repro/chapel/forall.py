"""Reference evaluator for Chapel ``reduce`` expressions and forall loops.

This implements the paper's Figure 1 execution model *directly on the nested
Chapel data structures*: the input is split among tasks, each task applies
``accumulate`` element-by-element over its split (the local reduction), and
the per-task states are merged with ``combine`` (the global reduction) before
``generate`` produces the result.

This module is the semantic oracle for the whole reproduction: every
compiled/optimized/FREERIDE-executed version must produce the same result as
:func:`reduce_expr` on the same data.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.chapel.expr import IterExpr
from repro.chapel.reduce_op import ReduceScanOp, get_reduce_op
from repro.chapel.values import ChapelArray
from repro.util.errors import ChapelError
from repro.util.validation import check_positive_int

__all__ = ["split_evenly", "reduce_expr", "scan_expr", "forall"]


def split_evenly(items: Sequence[Any], num_tasks: int) -> list[Sequence[Any]]:
    """Split a sequence into ``num_tasks`` contiguous, balanced splits.

    Mirrors Chapel's default block distribution of a forall over a range: the
    first ``len % num_tasks`` splits get one extra element.  Splits may be
    empty when there are more tasks than elements.
    """
    check_positive_int(num_tasks, "num_tasks")
    n = len(items)
    base, extra = divmod(n, num_tasks)
    splits: list[Sequence[Any]] = []
    start = 0
    for t in range(num_tasks):
        size = base + (1 if t < extra else 0)
        splits.append(items[start : start + size])
        start += size
    return splits


def _as_sequence(data: Any) -> Sequence[Any]:
    if isinstance(data, (ChapelArray, IterExpr)):
        return list(data)
    if isinstance(data, Sequence):
        return data
    if isinstance(data, Iterable):
        return list(data)
    raise ChapelError(f"cannot reduce over {type(data)}")


def reduce_expr(
    op: str | type[ReduceScanOp] | ReduceScanOp,
    data: Any,
    num_tasks: int = 1,
) -> Any:
    """Evaluate ``op reduce data`` with the two-stage Chapel semantics.

    ``op`` may be a reduce-expression spelling (``"+"``, ``"min"``), a
    :class:`ReduceScanOp` subclass, or a prototype instance (cloned per
    task).  ``data`` may be a Chapel array, an iterative expression such as
    ``ArrayRef(A) + ArrayRef(B)``, or any Python iterable.
    """
    items = _as_sequence(data)
    proto = get_reduce_op(op)
    locals_: list[ReduceScanOp] = []
    for split in split_evenly(items, num_tasks):
        task_op = proto.clone()
        task_op.accumulate_many(split)
        locals_.append(task_op)
    result = locals_[0]
    for other in locals_[1:]:
        result.combine(other)
    return result.generate()


def scan_expr(
    op: str | type[ReduceScanOp] | ReduceScanOp,
    data: Any,
    num_tasks: int = 1,
) -> list[Any]:
    """Evaluate ``op scan data`` (inclusive scan).

    Chapel's ``ReduceScanOp`` supports scans with the same accumulate
    logic.  With ``num_tasks > 1`` the classic two-phase parallel scan is
    modeled: each task scans its split locally, the per-split totals are
    combined into exclusive prefixes, and each task's local results are
    adjusted by its prefix — requiring exactly the associativity the op
    contract guarantees.  The result is identical to the sequential scan.
    """
    items = _as_sequence(data)
    proto = get_reduce_op(op)
    if num_tasks <= 1:
        return _scan_sequential(proto, items)

    splits = split_evenly(items, num_tasks)
    # Phase 1: local inclusive scans, snapshotting the op state per element.
    local_states: list[list[ReduceScanOp]] = []
    totals: list[ReduceScanOp] = []
    for split in splits:
        acc = proto.clone()
        states: list[ReduceScanOp] = []
        for x in split:
            acc.accumulate(x)
            states.append(acc.snapshot())
        local_states.append(states)
        totals.append(acc)
    # Phase 2: exclusive prefixes of the split totals (combine order matters
    # only up to associativity, which the op contract guarantees).
    prefixes: list[ReduceScanOp] = [proto.clone()]
    for total in totals[:-1]:
        nxt = prefixes[-1].snapshot()
        nxt.combine(total)
        prefixes.append(nxt)
    # Phase 3: adjust every local state by its split's prefix.
    result: list[Any] = []
    for prefix, states in zip(prefixes, local_states):
        for state in states:
            adjusted = prefix.snapshot()
            adjusted.combine(state)
            result.append(adjusted.generate())
    return result


def _scan_sequential(proto: ReduceScanOp, items: Sequence[Any]) -> list[Any]:
    acc = proto.clone()
    out: list[Any] = []
    for x in items:
        acc.accumulate(x)
        out.append(acc.generate())
    return out


def forall(
    domain: Iterable[Any],
    body: Callable[[Any], Any],
    num_tasks: int = 1,
) -> list[Any]:
    """A forall loop collecting per-index results (deterministic order).

    The mini-Chapel forall is sequential per task but models the task split;
    it exists so tests can express Figure 8-style loop nests uniformly.
    """
    items = _as_sequence(domain)
    results: list[Any] = []
    for split in split_evenly(items, num_tasks):
        for idx in split:
            results.append(body(idx))
    return results
