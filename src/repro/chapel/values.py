"""Runtime values for the mini-Chapel substrate.

These model the *nested, pointer-rich* data structures the paper's
linearization exists to eliminate: a ``ChapelArray`` of ``ChapelRecord``s of
``ChapelArray``s is a genuinely indirected object graph (Python lists of
objects holding dicts), so accessing ``data[i].b1[j].a1[k]`` really does chase
pointers — exactly the cost the opt-2 transformation removes.

Arrays over primitive element types are backed by numpy for speed; arrays of
composite elements are backed by Python object lists, preserving the
indirection structure.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from repro.chapel.domains import Domain
from repro.chapel.types import (
    ArrayType,
    ChapelType,
    EnumType,
    PrimitiveType,
    RecordType,
    StringType,
    TupleType,
)
from repro.util.errors import ChapelTypeError, DomainError

__all__ = [
    "ChapelArray",
    "ChapelRecord",
    "ChapelTuple",
    "default_value",
    "from_python",
    "to_python",
    "get_path",
    "set_path",
]


class ChapelArray:
    """A Chapel array value: a domain plus element storage.

    Indexing uses Chapel indices (whatever the domain declares, typically
    1-based): ``a[1]``, ``m[2, 3]``.
    """

    __slots__ = ("type", "_storage", "_numpy_backed")

    def __init__(self, typ: ArrayType, storage: object | None = None) -> None:
        self.type = typ
        self._numpy_backed = typ.elt.is_primitive
        if storage is not None:
            self._storage = storage
            return
        if self._numpy_backed:
            dtype = typ.elt.dtype  # type: ignore[union-attr]
            self._storage = np.zeros(typ.domain.size, dtype=dtype)
        else:
            self._storage = [default_value(typ.elt) for _ in range(typ.domain.size)]

    @property
    def domain(self) -> Domain:
        return self.type.domain

    def _flat(self, index: object) -> int:
        idx = index if isinstance(index, tuple) else (index,)
        if idx not in self.domain and index not in self.domain:
            raise DomainError(f"index {index!r} not in domain {self.domain}")
        return self.domain.flat_position(
            index if isinstance(index, (tuple, int)) else tuple(index)  # type: ignore[arg-type]
        )

    def __getitem__(self, index: object) -> Any:
        flat = self._flat(index)
        if self._numpy_backed:
            raw = self._storage[flat]
            return raw.item() if hasattr(raw, "item") else raw
        return self._storage[flat]

    def __setitem__(self, index: object, value: Any) -> None:
        flat = self._flat(index)
        if self._numpy_backed:
            elt = self.type.elt
            if isinstance(elt, (PrimitiveType, StringType, EnumType)):
                value = elt.coerce(value)
            self._storage[flat] = value
        else:
            self._storage[flat] = value

    def __len__(self) -> int:
        return self.domain.size

    def elements(self) -> Iterator[Any]:
        """Yield elements in row-major (linearization) order."""
        if self._numpy_backed:
            for raw in self._storage:
                yield raw.item() if hasattr(raw, "item") else raw
        else:
            yield from self._storage

    def __iter__(self) -> Iterator[Any]:
        return self.elements()

    def as_numpy(self) -> np.ndarray:
        """Return the backing numpy array (primitive element types only)."""
        if not self._numpy_backed:
            raise ChapelTypeError(
                f"array of {self.type.elt} has no dense numpy backing"
            )
        return self._storage.reshape(self.domain.shape)

    def fill_from(self, values: Sequence[Any] | np.ndarray) -> "ChapelArray":
        """Fill in row-major order from a flat sequence; returns self."""
        vals = list(values) if not isinstance(values, np.ndarray) else values
        if len(vals) != self.domain.size:
            raise ChapelTypeError(
                f"expected {self.domain.size} values, got {len(vals)}"
            )
        if self._numpy_backed:
            self._storage[:] = np.asarray(vals).reshape(-1)
        else:
            self._storage = list(vals)
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChapelArray):
            return NotImplemented
        if self.type != other.type:
            return False
        if self._numpy_backed:
            return bool(np.array_equal(self._storage, other._storage))
        return list(self.elements()) == list(other.elements())

    def __repr__(self) -> str:
        return f"ChapelArray({self.type}, n={len(self)})"


class ChapelRecord:
    """A Chapel record value: typed named members, attribute access."""

    __slots__ = ("type", "_fields")

    def __init__(self, typ: RecordType, **values: Any) -> None:
        object.__setattr__(self, "type", typ)
        fields = {name: default_value(ftype) for name, ftype in typ.fields}
        object.__setattr__(self, "_fields", fields)
        for name, value in values.items():
            setattr(self, name, value)

    def __getattr__(self, name: str) -> Any:
        fields = object.__getattribute__(self, "_fields")
        if name in fields:
            return fields[name]
        raise AttributeError(f"record {self.type.name} has no field {name!r}")

    def __setattr__(self, name: str, value: Any) -> None:
        if name not in self._fields:
            raise AttributeError(f"record {self.type.name} has no field {name!r}")
        ftype = self.type.field_type(name)
        if isinstance(ftype, (PrimitiveType, StringType, EnumType)):
            value = ftype.coerce(value)
        self._fields[name] = value

    def field(self, name: str) -> Any:
        return getattr(self, name)

    # ``__slots__`` plus the guarded ``__setattr__`` breaks pickle's default
    # slot-state restore (it setattrs before ``_fields`` exists); records
    # must pickle cleanly because process-mode kernel extras carry them.
    def __getstate__(self) -> tuple[Any, dict[str, Any]]:
        return (self.type, object.__getattribute__(self, "_fields"))

    def __setstate__(self, state: tuple[Any, dict[str, Any]]) -> None:
        typ, fields = state
        object.__setattr__(self, "type", typ)
        object.__setattr__(self, "_fields", fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChapelRecord):
            return NotImplemented
        return self.type == other.type and all(
            getattr(self, n) == getattr(other, n) for n in self.type.field_names
        )

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={getattr(self, n)!r}" for n in self.type.field_names)
        return f"{self.type.name}({inner})"


class ChapelTuple:
    """A Chapel tuple value with 0-based component access."""

    __slots__ = ("type", "_elts")

    def __init__(self, typ: TupleType, values: Sequence[Any] | None = None) -> None:
        self.type = typ
        if values is None:
            self._elts = [default_value(t) for t in typ.elts]
        else:
            if len(values) != len(typ.elts):
                raise ChapelTypeError(
                    f"tuple of arity {len(typ.elts)} given {len(values)} values"
                )
            self._elts = []
            for t, v in zip(typ.elts, values):
                if isinstance(t, (PrimitiveType, StringType, EnumType)):
                    v = t.coerce(v)
                self._elts.append(v)

    def __getitem__(self, index: int) -> Any:
        return self._elts[index]

    def __setitem__(self, index: int, value: Any) -> None:
        t = self.type.elts[index]
        if isinstance(t, (PrimitiveType, StringType, EnumType)):
            value = t.coerce(value)
        self._elts[index] = value

    def __len__(self) -> int:
        return len(self._elts)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._elts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChapelTuple):
            return NotImplemented
        return self.type == other.type and self._elts == other._elts

    def __repr__(self) -> str:
        return "(" + ", ".join(repr(e) for e in self._elts) + ")"


def default_value(typ: ChapelType) -> Any:
    """Chapel's default-initialized value for a type (zeros everywhere)."""
    if isinstance(typ, StringType):
        return b"\x00" * typ.width
    if isinstance(typ, EnumType):
        return 0
    if isinstance(typ, PrimitiveType):
        return typ.coerce(0)
    if isinstance(typ, ArrayType):
        return ChapelArray(typ)
    if isinstance(typ, RecordType):
        return ChapelRecord(typ)
    if isinstance(typ, TupleType):
        return ChapelTuple(typ)
    raise ChapelTypeError(f"no default value for {typ!r}")


def from_python(typ: ChapelType, obj: Any) -> Any:
    """Build a Chapel value of ``typ`` from plain Python data.

    Lists/arrays fill Chapel arrays in row-major order, dicts fill records,
    tuples/lists fill tuples, scalars coerce to primitives.
    """
    if isinstance(typ, (PrimitiveType, StringType, EnumType)):
        return typ.coerce(obj)
    if isinstance(typ, ArrayType):
        arr = ChapelArray(typ)
        flat = _flatten_for_array(typ, obj)
        if typ.elt.is_primitive:
            arr.fill_from([typ.elt.coerce(v) for v in flat])  # type: ignore[union-attr]
        else:
            arr.fill_from([from_python(typ.elt, v) for v in flat])
        return arr
    if isinstance(typ, RecordType):
        if not isinstance(obj, dict):
            raise ChapelTypeError(f"record {typ.name} needs a dict, got {type(obj)}")
        rec = ChapelRecord(typ)
        for name, _ in typ.fields:
            if name not in obj:
                raise ChapelTypeError(f"missing field {name!r} for record {typ.name}")
            rec._fields[name] = from_python(typ.field_type(name), obj[name])
        return rec
    if isinstance(typ, TupleType):
        seq = list(obj)
        return ChapelTuple(typ, [from_python(t, v) for t, v in zip(typ.elts, seq)])
    raise ChapelTypeError(f"cannot build value of type {typ!r}")


def _flatten_for_array(typ: ArrayType, obj: Any) -> list[Any]:
    if isinstance(obj, np.ndarray):
        obj = obj.tolist()
    if not isinstance(obj, (list, tuple)):
        raise ChapelTypeError(f"array {typ} needs a sequence, got {type(obj)}")
    shape = typ.domain.shape
    if len(shape) == 1:
        flat = list(obj)
    else:
        flat = []
        stack: list[tuple[Any, int]] = [(obj, 0)]
        # Depth-first, preserving row-major order.
        def walk(node: Any, dim: int) -> None:
            if dim == len(shape):
                flat.append(node)
                return
            if not isinstance(node, (list, tuple)) or len(node) != shape[dim]:
                raise ChapelTypeError(
                    f"array {typ}: expected length-{shape[dim]} sequence at dim {dim}"
                )
            for child in node:
                walk(child, dim + 1)

        del stack
        walk(obj, 0)
    if len(flat) != typ.domain.size:
        raise ChapelTypeError(
            f"array {typ}: expected {typ.domain.size} values, got {len(flat)}"
        )
    return flat


def to_python(value: Any) -> Any:
    """Convert a Chapel value back to plain Python data (row-major lists)."""
    if isinstance(value, ChapelArray):
        flat = [to_python(v) for v in value.elements()]
        return _reshape(flat, value.domain.shape)
    if isinstance(value, ChapelRecord):
        return {n: to_python(getattr(value, n)) for n in value.type.field_names}
    if isinstance(value, ChapelTuple):
        return tuple(to_python(v) for v in value)
    return value


def _reshape(flat: list[Any], shape: tuple[int, ...]) -> list[Any]:
    if len(shape) == 1:
        return flat
    inner = 1
    for s in shape[1:]:
        inner *= s
    return [
        _reshape(flat[i * inner : (i + 1) * inner], shape[1:]) for i in range(shape[0])
    ]


def get_path(value: Any, path: tuple[tuple[str, object], ...]) -> Any:
    """Follow a :class:`~repro.chapel.types.ScalarSlot` path into a value."""
    cur = value
    for kind, key in path:
        if kind == "field":
            cur = getattr(cur, key)  # type: ignore[arg-type]
        elif kind == "index":
            cur = cur[key]
        elif kind == "component":
            cur = cur[key]  # type: ignore[index]
        else:
            raise ChapelTypeError(f"unknown path step {kind!r}")
    return cur


def set_path(value: Any, path: tuple[tuple[str, object], ...], new: Any) -> None:
    """Set the scalar at a path (inverse of :func:`get_path`)."""
    if not path:
        raise ChapelTypeError("cannot set an empty path")
    parent = get_path(value, path[:-1])
    kind, key = path[-1]
    if kind == "field":
        setattr(parent, key, new)  # type: ignore[arg-type]
    elif kind in ("index", "component"):
        parent[key] = new
    else:
        raise ChapelTypeError(f"unknown path step {kind!r}")
