"""Mini-Chapel substrate: types, domains, values, reductions, expressions.

This subpackage stands in for the Chapel language/runtime in the paper.  It
models exactly the surface the Chapel-to-FREERIDE translation consumes:
nested data structures (arrays/records/tuples over primitives), the
``ReduceScanOp`` reduction-class protocol, reduce/scan expressions over
arrays and iterative expressions, and (in :mod:`repro.chapel.parser`) a
textual frontend for the reduction-class subset shown in the paper's
Figures 2 and 3.
"""

from repro.chapel.domains import Domain, Range
from repro.chapel.expr import ArrayRef, BinOpExpr, IterExpr, UnaryOpExpr, as_expr
from repro.chapel.forall import forall, reduce_expr, scan_expr, split_evenly
from repro.chapel.reduce_op import (
    REDUCE_OPS,
    BitwiseAndReduceScanOp,
    BitwiseOrReduceScanOp,
    BitwiseXorReduceScanOp,
    LogicalAndReduceScanOp,
    LogicalOrReduceScanOp,
    MaxLocReduceScanOp,
    MaxReduceScanOp,
    MinLocReduceScanOp,
    MinReduceScanOp,
    ProductReduceScanOp,
    ReduceScanOp,
    SumReduceScanOp,
    get_reduce_op,
    register_reduce_op,
)
from repro.chapel.types import (
    BOOL,
    INT,
    INT32,
    REAL,
    REAL32,
    UINT,
    ArrayType,
    ChapelType,
    EnumType,
    PrimitiveType,
    RecordType,
    ScalarSlot,
    StringType,
    TupleType,
    array_of,
    record,
    scalar_layout,
)
from repro.chapel.localview import Comm, Locale, LocalViewReduction, Message
from repro.chapel.userdef import reduce_op_from_source
from repro.chapel.values import (
    ChapelArray,
    ChapelRecord,
    ChapelTuple,
    default_value,
    from_python,
    get_path,
    set_path,
    to_python,
)

__all__ = [
    # domains
    "Domain",
    "Range",
    # types
    "ChapelType",
    "PrimitiveType",
    "StringType",
    "EnumType",
    "ArrayType",
    "RecordType",
    "TupleType",
    "ScalarSlot",
    "INT",
    "INT32",
    "UINT",
    "REAL",
    "REAL32",
    "BOOL",
    "array_of",
    "record",
    "scalar_layout",
    # values
    "ChapelArray",
    "ChapelRecord",
    "ChapelTuple",
    "default_value",
    "from_python",
    "to_python",
    "get_path",
    "set_path",
    # expressions
    "IterExpr",
    "ArrayRef",
    "BinOpExpr",
    "UnaryOpExpr",
    "as_expr",
    # reductions
    "ReduceScanOp",
    "SumReduceScanOp",
    "ProductReduceScanOp",
    "MinReduceScanOp",
    "MaxReduceScanOp",
    "MinLocReduceScanOp",
    "MaxLocReduceScanOp",
    "LogicalAndReduceScanOp",
    "LogicalOrReduceScanOp",
    "BitwiseAndReduceScanOp",
    "BitwiseOrReduceScanOp",
    "BitwiseXorReduceScanOp",
    "REDUCE_OPS",
    "get_reduce_op",
    "register_reduce_op",
    "reduce_op_from_source",
    # evaluation
    "reduce_expr",
    "scan_expr",
    "forall",
    "split_evenly",
    # local-view abstraction
    "LocalViewReduction",
    "Locale",
    "Comm",
    "Message",
]
