"""The mini-Chapel type system.

Only the parts of Chapel's type system that the paper's translation needs are
modeled: primitive types (numeric, bool, string, enumerated), rectangular
arrays over domains, records (Chapel ``record``, compiled to a C ``struct``),
and tuples.  Every type knows its **packed byte size**, because FREERIDE views
data as a dense memory buffer and the linearization algorithms (Algorithms 1
and 2 in the paper) are defined in terms of byte sizes and byte offsets.

The layout is packed (no alignment padding): the paper's ``linearizeIt``
copies values one after another into a contiguous allocation, which is
exactly a packed layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator

import numpy as np

from repro.chapel.domains import Domain
from repro.util.errors import ChapelTypeError

__all__ = [
    "ChapelType",
    "PrimitiveType",
    "StringType",
    "EnumType",
    "ArrayType",
    "RecordType",
    "TupleType",
    "INT",
    "INT32",
    "UINT",
    "REAL",
    "REAL32",
    "BOOL",
    "array_of",
    "record",
    "scalar_layout",
    "ScalarSlot",
]


class ChapelType:
    """Base class for all mini-Chapel types."""

    @property
    def sizeof(self) -> int:
        """Packed size of one value of this type, in bytes."""
        raise NotImplementedError

    @property
    def is_primitive(self) -> bool:
        return False

    @property
    def is_iterative(self) -> bool:
        """True for collection types iterated by ``linearizeIt`` (arrays)."""
        return False

    @property
    def is_structure(self) -> bool:
        """True for member-carrying types (records, tuples)."""
        return False

    def __str__(self) -> str:  # pragma: no cover - overridden everywhere
        return self.__class__.__name__


@dataclass(frozen=True)
class PrimitiveType(ChapelType):
    """A fixed-width scalar type mapped directly to a numpy dtype.

    The paper: "The linearization of primitive types in Chapel, such as
    numeric (int, real), bool, string, and enumerated is straightforward, as
    these are single elements that are mapped directly to the intermediate C
    code."
    """

    name: str
    dtype: np.dtype

    def __init__(self, name: str, dtype: str | np.dtype) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "dtype", np.dtype(dtype))

    @property
    def sizeof(self) -> int:
        return self.dtype.itemsize

    @property
    def is_primitive(self) -> bool:
        return True

    def coerce(self, value: object) -> object:
        """Coerce a Python value to this type's scalar domain."""
        return self.dtype.type(value).item()

    def __str__(self) -> str:
        return self.name


#: Chapel ``int`` (default 64-bit).
INT = PrimitiveType("int", np.int64)
#: Chapel ``int(32)``.
INT32 = PrimitiveType("int(32)", np.int32)
#: Chapel ``uint``.
UINT = PrimitiveType("uint", np.uint64)
#: Chapel ``real`` (default 64-bit).
REAL = PrimitiveType("real", np.float64)
#: Chapel ``real(32)``.
REAL32 = PrimitiveType("real(32)", np.float32)
#: Chapel ``bool`` (one byte, like C99 ``_Bool``).
BOOL = PrimitiveType("bool", np.uint8)


@dataclass(frozen=True)
class StringType(ChapelType):
    """A fixed-width string.

    Chapel strings are variable length; FREERIDE's dense-buffer view needs a
    fixed width, so the translator pads/truncates to ``width`` bytes.  This is
    the standard substitution for fixed-record middleware and is documented in
    DESIGN.md.  Note: numpy ``S``-dtype backed arrays strip trailing NULs on
    read, so the logical value of an array element is the unpadded content;
    the linearized buffer always holds the full fixed-width slot.
    """

    width: int = 32

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ChapelTypeError("string width must be positive")

    @property
    def sizeof(self) -> int:
        return self.width

    @property
    def is_primitive(self) -> bool:
        return True

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(f"S{self.width}")

    def coerce(self, value: object) -> bytes:
        raw = value.encode() if isinstance(value, str) else bytes(value)  # type: ignore[arg-type]
        return raw[: self.width].ljust(self.width, b"\x00")

    def __str__(self) -> str:
        return f"string({self.width})"


@dataclass(frozen=True)
class EnumType(ChapelType):
    """A Chapel enumerated type, stored as a 64-bit ordinal."""

    name: str
    members: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise ChapelTypeError(f"enum {self.name} needs at least one member")
        if len(set(self.members)) != len(self.members):
            raise ChapelTypeError(f"enum {self.name} has duplicate members")

    @property
    def sizeof(self) -> int:
        return INT.sizeof

    @property
    def is_primitive(self) -> bool:
        return True

    @property
    def dtype(self) -> np.dtype:
        return INT.dtype

    def ordinal(self, member: str) -> int:
        try:
            return self.members.index(member)
        except ValueError:
            raise ChapelTypeError(f"{member!r} is not a member of enum {self.name}")

    def member(self, ordinal: int) -> str:
        if not 0 <= ordinal < len(self.members):
            raise ChapelTypeError(f"ordinal {ordinal} out of range for {self.name}")
        return self.members[ordinal]

    def coerce(self, value: object) -> int:
        if isinstance(value, str):
            return self.ordinal(value)
        if isinstance(value, int) and not isinstance(value, bool):
            self.member(value)
            return value
        raise ChapelTypeError(f"cannot coerce {value!r} to enum {self.name}")

    def __str__(self) -> str:
        return f"enum {self.name}"


@dataclass(frozen=True)
class ArrayType(ChapelType):
    """A rectangular Chapel array ``[domain] eltType``."""

    domain: Domain
    elt: ChapelType

    @property
    def sizeof(self) -> int:
        return self.domain.size * self.elt.sizeof

    @property
    def is_iterative(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"[{self.domain}] {self.elt}"


@dataclass(frozen=True)
class RecordType(ChapelType):
    """A Chapel ``record``: named, typed members with packed layout.

    ``field_offset`` is what the paper calls ``unitOffset`` for a level: the
    byte offset of each member inside one packed record instance.
    """

    name: str
    fields: tuple[tuple[str, ChapelType], ...]

    def __init__(self, name: str, fields: object) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "fields", tuple((str(n), t) for n, t in fields))
        seen: set[str] = set()
        for fname, ftype in self.fields:
            if fname in seen:
                raise ChapelTypeError(f"record {name}: duplicate field {fname!r}")
            seen.add(fname)
            if not isinstance(ftype, ChapelType):
                raise ChapelTypeError(
                    f"record {name}: field {fname!r} has non-Chapel type {ftype!r}"
                )
        if not self.fields:
            raise ChapelTypeError(f"record {name} needs at least one field")

    @property
    def sizeof(self) -> int:
        return sum(t.sizeof for _, t in self.fields)

    @property
    def is_structure(self) -> bool:
        return True

    @cached_property
    def field_names(self) -> tuple[str, ...]:
        return tuple(n for n, _ in self.fields)

    @cached_property
    def field_offsets(self) -> dict[str, int]:
        """Byte offset of every field in the packed layout."""
        offsets: dict[str, int] = {}
        off = 0
        for fname, ftype in self.fields:
            offsets[fname] = off
            off += ftype.sizeof
        return offsets

    def field_type(self, name: str) -> ChapelType:
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        raise ChapelTypeError(f"record {self.name} has no field {name!r}")

    def field_offset(self, name: str) -> int:
        try:
            return self.field_offsets[name]
        except KeyError:
            raise ChapelTypeError(f"record {self.name} has no field {name!r}")

    def field_position(self, name: str) -> int:
        """0-based member position — the paper's ``position[][]`` entries."""
        try:
            return self.field_names.index(name)
        except ValueError:
            raise ChapelTypeError(f"record {self.name} has no field {name!r}")

    def __str__(self) -> str:
        return f"record {self.name}"


@dataclass(frozen=True)
class TupleType(ChapelType):
    """A Chapel tuple — structurally a record with positional members."""

    elts: tuple[ChapelType, ...]

    def __init__(self, elts: object) -> None:
        object.__setattr__(self, "elts", tuple(elts))
        if not self.elts:
            raise ChapelTypeError("tuple needs at least one component")
        for t in self.elts:
            if not isinstance(t, ChapelType):
                raise ChapelTypeError(f"non-Chapel tuple component {t!r}")

    @property
    def sizeof(self) -> int:
        return sum(t.sizeof for t in self.elts)

    @property
    def is_structure(self) -> bool:
        return True

    def component_offset(self, index: int) -> int:
        if not 0 <= index < len(self.elts):
            raise ChapelTypeError(f"tuple has no component {index}")
        return sum(t.sizeof for t in self.elts[:index])

    def __str__(self) -> str:
        return "(" + ", ".join(str(t) for t in self.elts) + ")"


def array_of(elt: ChapelType, *ranges: object) -> ArrayType:
    """Convenience constructor: ``array_of(REAL, 10)`` is ``[1..10] real``."""
    return ArrayType(Domain(*ranges), elt)  # type: ignore[arg-type]


def record(name: str, /, **fields: ChapelType) -> RecordType:
    """Convenience constructor using keyword order as declaration order."""
    return RecordType(name, tuple(fields.items()))


@dataclass(frozen=True)
class ScalarSlot:
    """One primitive scalar inside a nested type's packed layout.

    ``path`` is a tuple of access steps: ``("field", name)`` for record
    members, ``("component", i)`` for tuple components and
    ``("index", chapel_index)`` for array elements.
    """

    path: tuple[tuple[str, object], ...]
    prim: PrimitiveType | StringType | EnumType
    offset: int


def scalar_layout(typ: ChapelType, base: int = 0) -> Iterator[ScalarSlot]:
    """Yield every primitive slot of ``typ`` in packed layout order.

    This is the declarative specification of what Algorithms 1 and 2 compute
    operationally; tests use it as the oracle for the linearizer.
    """
    if typ.is_primitive:
        yield ScalarSlot((), typ, base)  # type: ignore[arg-type]
    elif isinstance(typ, ArrayType):
        off = base
        for idx in typ.domain:
            for slot in scalar_layout(typ.elt, off):
                yield ScalarSlot((("index", idx),) + slot.path, slot.prim, slot.offset)
            off += typ.elt.sizeof
    elif isinstance(typ, RecordType):
        for fname, ftype in typ.fields:
            foff = base + typ.field_offset(fname)
            for slot in scalar_layout(ftype, foff):
                yield ScalarSlot(
                    (("field", fname),) + slot.path, slot.prim, slot.offset
                )
    elif isinstance(typ, TupleType):
        for i, ctype in enumerate(typ.elts):
            coff = base + typ.component_offset(i)
            for slot in scalar_layout(ctype, coff):
                yield ScalarSlot(
                    (("component", i),) + slot.path, slot.prim, slot.offset
                )
    else:  # pragma: no cover - unreachable for well-formed types
        raise ChapelTypeError(f"cannot lay out type {typ!r}")
