"""Tokenizer for the mini-Chapel subset."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.util.errors import ChapelSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "record",
    "class",
    "var",
    "def",
    "for",
    "in",
    "if",
    "else",
    "return",
    "true",
    "false",
}

# Order matters: longer operators first.
_SPEC = [
    ("COMMENT", r"//[^\n]*|/\*.*?\*/"),
    ("REAL", r"\d+\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+"),
    ("INT", r"\d+"),
    ("DOTDOT", r"\.\."),
    ("OP", r"==|!=|<=|>=|&&|\|\||\+=|-=|\*=|/=|[-+*/%<>=!.]"),
    ("LBRACE", r"\{"),
    ("RBRACE", r"\}"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("LBRACKET", r"\["),
    ("RBRACKET", r"\]"),
    ("COMMA", r","),
    ("SEMI", r";"),
    ("COLON", r":"),
    ("IDENT", r"[A-Za-z_]\w*"),
    ("NEWLINE", r"\n"),
    ("SKIP", r"[ \t\r]+"),
    ("MISMATCH", r"."),
]

_MASTER = re.compile("|".join(f"(?P<{n}>{p})" for n, p in _SPEC), re.DOTALL)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str  # IDENT, INT, REAL, KEYWORD, OP, DOTDOT, LBRACE, ..., EOF
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Tokenize mini-Chapel source; raises ChapelSyntaxError on bad input."""
    tokens: list[Token] = []
    line = 1
    line_start = 0
    for m in _MASTER.finditer(source):
        kind = m.lastgroup or "MISMATCH"
        text = m.group()
        column = m.start() - line_start + 1
        if kind in ("SKIP",):
            continue
        if kind == "NEWLINE":
            line += 1
            line_start = m.end()
            continue
        if kind == "COMMENT":
            line += text.count("\n")
            if "\n" in text:
                line_start = m.start() + text.rindex("\n") + 1
            continue
        if kind == "MISMATCH":
            raise ChapelSyntaxError(f"unexpected character {text!r}", line, column)
        if kind == "IDENT" and text in KEYWORDS:
            kind = "KEYWORD"
        tokens.append(Token(kind, text, line, column))
    tokens.append(Token("EOF", "", line, 1))
    return tokens
