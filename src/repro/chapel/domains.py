"""Chapel-style ranges and rectangular domains.

Chapel arrays are declared over *domains* built from inclusive, possibly
strided ranges (``[1..n]``, ``[0..9 by 2]``).  The linearization algorithms in
:mod:`repro.compiler.linearize` walk these domains to compute dense layouts,
so the domain abstraction must expose both Chapel-style (1-based, inclusive)
indices and 0-based dense positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.util.errors import DomainError

__all__ = ["Range", "Domain"]


@dataclass(frozen=True)
class Range:
    """An inclusive, optionally strided integer range: ``low..high by stride``.

    Mirrors Chapel's bounded range type.  ``stride`` must be positive; Chapel
    negative strides are not needed by any reduction in the paper.
    """

    low: int
    high: int
    stride: int = 1

    def __post_init__(self) -> None:
        if self.stride <= 0:
            raise DomainError(f"range stride must be positive, got {self.stride}")

    def __len__(self) -> int:
        if self.high < self.low:
            return 0
        return (self.high - self.low) // self.stride + 1

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.low, self.high + 1, self.stride))

    def __contains__(self, index: object) -> bool:
        if not isinstance(index, int) or isinstance(index, bool):
            return False
        if index < self.low or index > self.high:
            return False
        return (index - self.low) % self.stride == 0

    def position_of(self, index: int) -> int:
        """Return the 0-based dense position of a member index.

        This is the inverse of :meth:`index_at`; the linearizer uses it to
        turn Chapel indices into offsets into the packed buffer.
        """
        if index not in self:
            raise DomainError(f"index {index} not in range {self}")
        return (index - self.low) // self.stride

    def index_at(self, position: int) -> int:
        """Return the Chapel index at a 0-based dense position."""
        if not 0 <= position < len(self):
            raise DomainError(
                f"position {position} out of bounds for range of size {len(self)}"
            )
        return self.low + position * self.stride

    def __str__(self) -> str:
        if self.stride == 1:
            return f"{self.low}..{self.high}"
        return f"{self.low}..{self.high} by {self.stride}"


@dataclass(frozen=True)
class Domain:
    """A rectangular domain: the cross product of one or more ranges.

    Iteration order is row-major (last dimension fastest), matching both
    Chapel's default iteration order for rectangular domains and the memory
    order produced by linearization.
    """

    ranges: tuple[Range, ...]

    def __init__(self, *ranges: Range | tuple[int, int] | int) -> None:
        normalized: list[Range] = []
        for r in ranges:
            if isinstance(r, Range):
                normalized.append(r)
            elif isinstance(r, tuple) and len(r) == 2:
                normalized.append(Range(r[0], r[1]))
            elif isinstance(r, int) and not isinstance(r, bool):
                # Chapel idiom: `[1..n]`; a bare int n means 1..n.
                normalized.append(Range(1, r))
            else:
                raise DomainError(f"cannot build a range from {r!r}")
        if not normalized:
            raise DomainError("a domain needs at least one range")
        object.__setattr__(self, "ranges", tuple(normalized))

    @property
    def rank(self) -> int:
        return len(self.ranges)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(len(r) for r in self.ranges)

    @property
    def size(self) -> int:
        n = 1
        for r in self.ranges:
            n *= len(r)
        return n

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[tuple[int, ...] | int]:
        """Yield indices; rank-1 domains yield bare ints like Chapel."""
        if self.rank == 1:
            yield from self.ranges[0]
            return
        yield from self._iter_rec((), 0)

    def _iter_rec(
        self, prefix: tuple[int, ...], dim: int
    ) -> Iterator[tuple[int, ...]]:
        if dim == self.rank:
            yield prefix
            return
        for i in self.ranges[dim]:
            yield from self._iter_rec(prefix + (i,), dim + 1)

    def __contains__(self, index: object) -> bool:
        idx = self._as_tuple(index)
        if idx is None or len(idx) != self.rank:
            return False
        return all(i in r for i, r in zip(idx, self.ranges))

    @staticmethod
    def _as_tuple(index: object) -> tuple[int, ...] | None:
        if isinstance(index, int) and not isinstance(index, bool):
            return (index,)
        if isinstance(index, tuple) and all(
            isinstance(i, int) and not isinstance(i, bool) for i in index
        ):
            return index
        return None

    def flat_position(self, index: int | Sequence[int]) -> int:
        """Row-major 0-based dense position of a Chapel index tuple."""
        idx = self._as_tuple(tuple(index) if isinstance(index, Sequence) else index)
        if idx is None or len(idx) != self.rank:
            raise DomainError(f"index {index!r} has wrong rank for {self}")
        pos = 0
        for i, r in zip(idx, self.ranges):
            pos = pos * len(r) + r.position_of(i)
        return pos

    def index_at(self, position: int) -> int | tuple[int, ...]:
        """Chapel index at a row-major dense position (inverse of above)."""
        if not 0 <= position < self.size:
            raise DomainError(
                f"position {position} out of bounds for domain of size {self.size}"
            )
        out: list[int] = []
        for r in reversed(self.ranges):
            position, p = divmod(position, len(r))
            out.append(r.index_at(p))
        out.reverse()
        if self.rank == 1:
            return out[0]
        return tuple(out)

    def __str__(self) -> str:
        return "{" + ", ".join(str(r) for r in self.ranges) + "}"
