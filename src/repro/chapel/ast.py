"""AST for the mini-Chapel subset the translator consumes.

The subset covers what the paper's Figures 2 and 3 use: ``record``
declarations, reduction classes inheriting ``ReduceScanOp`` with
``accumulate``/``combine``/``generate`` methods, ``var`` declarations with
array/record types over ``lo..hi`` domains, ``for``/``if`` statements,
arithmetic and comparison expressions, member access and indexing.

Reduction-object updates are expressed with the intrinsics ``roAdd``,
``roMin`` and ``roMax`` (group, element, value) — the explicit reduction
object of the FREERIDE model surfaced into the language.  This is the one
deliberate deviation from real Chapel syntax and is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Node",
    "Expr",
    "IntLit",
    "RealLit",
    "BoolLit",
    "Ident",
    "BinOp",
    "UnaryOp",
    "Index",
    "Member",
    "Call",
    "RangeExpr",
    "TypeExpr",
    "NamedTypeExpr",
    "ArrayTypeExpr",
    "Stmt",
    "Block",
    "VarDeclStmt",
    "Assign",
    "ForStmt",
    "IfStmt",
    "ExprStmt",
    "ReturnStmt",
    "Param",
    "MethodDecl",
    "VarDecl",
    "RecordDecl",
    "ClassDecl",
    "Program",
    "RO_INTRINSICS",
]

#: Intrinsic reduction-object update functions and their accumulate ops.
RO_INTRINSICS = {"roAdd": "add", "roMin": "min", "roMax": "max"}


@dataclass(frozen=True)
class Node:
    """Base class; ``line``/``col`` carry source positions for diagnostics.

    Positions are keyword-only with ``0`` meaning "unknown", and excluded
    from equality/repr so structural AST comparisons are unaffected.  The
    parser fills them in; programmatically-built nodes may leave them unset.
    """

    line: int = field(default=0, kw_only=True, compare=False, repr=False)
    col: int = field(default=0, kw_only=True, compare=False, repr=False)

    @property
    def span(self) -> tuple[int, int]:
        """``(line, col)`` of the node, ``(0, 0)`` when unknown."""
        return (self.line, self.col)


# ---------------------------------------------------------------- expressions


@dataclass(frozen=True)
class Expr(Node):
    pass


@dataclass(frozen=True)
class IntLit(Expr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class RealLit(Expr):
    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class Ident(Expr):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str
    operand: Expr

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class Index(Expr):
    base: Expr
    indices: tuple[Expr, ...]

    def __str__(self) -> str:
        return f"{self.base}[{', '.join(map(str, self.indices))}]"


@dataclass(frozen=True)
class Member(Expr):
    base: Expr
    name: str

    def __str__(self) -> str:
        return f"{self.base}.{self.name}"


@dataclass(frozen=True)
class Call(Expr):
    name: str
    args: tuple[Expr, ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class RangeExpr(Node):
    """``lo..hi`` (inclusive, unit stride)."""

    lo: Expr
    hi: Expr

    def __str__(self) -> str:
        return f"{self.lo}..{self.hi}"


# ----------------------------------------------------------------- type exprs


@dataclass(frozen=True)
class TypeExpr(Node):
    pass


@dataclass(frozen=True)
class NamedTypeExpr(TypeExpr):
    """``real``, ``int``, ``bool``, or a record name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayTypeExpr(TypeExpr):
    """``[lo..hi, ...] eltType``."""

    ranges: tuple[RangeExpr, ...]
    elt: TypeExpr

    def __str__(self) -> str:
        return f"[{', '.join(map(str, self.ranges))}] {self.elt}"


# ----------------------------------------------------------------- statements


@dataclass(frozen=True)
class Stmt(Node):
    pass


@dataclass(frozen=True)
class Block(Stmt):
    stmts: tuple[Stmt, ...]


@dataclass(frozen=True)
class VarDecl(Node):
    name: str
    type: TypeExpr | None
    init: Expr | None


@dataclass(frozen=True)
class VarDeclStmt(Stmt):
    decl: VarDecl


@dataclass(frozen=True)
class Assign(Stmt):
    """``target = value`` or compound ``target op= value`` (op in +,-,*,/)."""

    target: Expr
    value: Expr
    op: str | None = None  # None for plain '='


@dataclass(frozen=True)
class ForStmt(Stmt):
    var: str
    range: RangeExpr
    body: Block


@dataclass(frozen=True)
class IfStmt(Stmt):
    cond: Expr
    then: Block
    orelse: Block | None


@dataclass(frozen=True)
class ExprStmt(Stmt):
    expr: Expr


@dataclass(frozen=True)
class ReturnStmt(Stmt):
    value: Expr | None


# ---------------------------------------------------------------- declarations


@dataclass(frozen=True)
class Param(Node):
    name: str
    type: TypeExpr


@dataclass(frozen=True)
class MethodDecl(Node):
    name: str
    params: tuple[Param, ...]
    body: Block


@dataclass(frozen=True)
class RecordDecl(Node):
    name: str
    fields: tuple[VarDecl, ...]


@dataclass(frozen=True)
class ClassDecl(Node):
    name: str
    parent: str | None
    fields: tuple[VarDecl, ...]
    methods: tuple[MethodDecl, ...]

    def method(self, name: str) -> MethodDecl | None:
        for m in self.methods:
            if m.name == name:
                return m
        return None


@dataclass(frozen=True)
class Program(Node):
    records: tuple[RecordDecl, ...]
    classes: tuple[ClassDecl, ...]

    def record(self, name: str) -> RecordDecl | None:
        for r in self.records:
            if r.name == name:
                return r
        return None

    def reduction_class(self, name: str | None = None) -> ClassDecl | None:
        for c in self.classes:
            if name is None or c.name == name:
                return c
        return None
