"""The local-view reduction abstraction (paper §II-A).

"In the local-view abstraction, the programmer needs to manage data
distribution as well as communication between different processors
explicitly.  It is a lower-level reduction model, with the obvious tradeoff
that it is very straight-forward for a compiler to implement.  Chapel also
supports a global-view abstraction model, which is a higher-level model and
hides the data distribution and communication details."

This module makes the contrast executable: :class:`LocalViewReduction`
requires the programmer to (1) distribute the data over locales, (2) run
per-locale accumulation, and (3) schedule the combination messages
explicitly through a :class:`Comm` whose log records every transfer the
global-view model (``reduce_expr``) hides.  Both models produce identical
results; the tests and examples show exactly what the higher-level
abstraction is abstracting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.chapel.forall import split_evenly
from repro.chapel.reduce_op import ReduceScanOp, get_reduce_op
from repro.util.errors import ChapelError
from repro.util.validation import check_one_of, check_positive_int

__all__ = ["Message", "Comm", "Locale", "LocalViewReduction"]


@dataclass(frozen=True)
class Message:
    """One explicit transfer of a partial reduction state."""

    src: int
    dst: int
    payload: Any


@dataclass
class Comm:
    """The communication fabric the local-view programmer drives by hand."""

    num_locales: int
    log: list[Message] = field(default_factory=list)
    _inboxes: dict[int, list[Any]] = field(default_factory=dict)

    def send(self, src: int, dst: int, payload: Any) -> None:
        self._check(src)
        self._check(dst)
        if src == dst:
            raise ChapelError("a locale does not send to itself")
        self.log.append(Message(src, dst, payload))
        self._inboxes.setdefault(dst, []).append(payload)

    def recv_all(self, dst: int) -> list[Any]:
        self._check(dst)
        items = self._inboxes.get(dst, [])
        self._inboxes[dst] = []
        return items

    def _check(self, locale: int) -> None:
        if not 0 <= locale < self.num_locales:
            raise ChapelError(
                f"locale {locale} out of range (have {self.num_locales})"
            )

    @property
    def messages_sent(self) -> int:
        return len(self.log)


@dataclass
class Locale:
    """One locale's explicitly-managed state."""

    locale_id: int
    data: Sequence[Any]
    op: ReduceScanOp

    def accumulate_local(self) -> ReduceScanOp:
        """The per-locale local reduction the programmer writes."""
        self.op.accumulate_many(self.data)
        return self.op


class LocalViewReduction:
    """Explicitly-managed reduction over ``num_locales`` locales."""

    def __init__(self, num_locales: int) -> None:
        self.num_locales = check_positive_int(num_locales, "num_locales")
        self.comm = Comm(num_locales)
        self.locales: list[Locale] = []

    # -- step 1: the programmer distributes the data -------------------------

    def distribute(
        self,
        op: str | type[ReduceScanOp] | ReduceScanOp,
        data: Sequence[Any],
    ) -> list[Locale]:
        """Block-distribute the data; the programmer owns this choice."""
        proto = get_reduce_op(op)
        self.locales = [
            Locale(i, split, proto.clone())
            for i, split in enumerate(split_evenly(list(data), self.num_locales))
        ]
        return self.locales

    # -- step 2: per-locale local reductions ------------------------------------

    def accumulate_all(self) -> None:
        if not self.locales:
            raise ChapelError("distribute() must run before accumulation")
        for locale in self.locales:
            locale.accumulate_local()

    # -- step 3: the programmer schedules the combination ------------------------

    def combine_all_to_one(self) -> Any:
        """Every locale ships its partial to locale 0 (p - 1 messages)."""
        self._require_accumulated()
        root = self.locales[0].op
        for locale in self.locales[1:]:
            self.comm.send(locale.locale_id, 0, locale.op)
        for partial in self.comm.recv_all(0):
            root.combine(partial)
        return root.generate()

    def combine_tree(self) -> Any:
        """Binary-tree combination (ceil(log2 p) rounds, p - 1 messages)."""
        self._require_accumulated()
        live = list(range(self.num_locales))
        while len(live) > 1:
            nxt: list[int] = []
            for i in range(0, len(live) - 1, 2):
                dst, src = live[i], live[i + 1]
                self.comm.send(src, dst, self.locales[src].op)
                for partial in self.comm.recv_all(dst):
                    self.locales[dst].op.combine(partial)
                nxt.append(dst)
            if len(live) % 2 == 1:
                nxt.append(live[-1])
            live = nxt
        return self.locales[live[0]].op.generate()

    def run(
        self,
        op: str | type[ReduceScanOp] | ReduceScanOp,
        data: Sequence[Any],
        schedule: str = "all_to_one",
    ) -> Any:
        """Drive all three steps (still explicitly, just in order)."""
        check_one_of(schedule, ("all_to_one", "tree"), "schedule")
        self.distribute(op, data)
        self.accumulate_all()
        if schedule == "tree":
            return self.combine_tree()
        return self.combine_all_to_one()

    def _require_accumulated(self) -> None:
        if not self.locales:
            raise ChapelError("nothing distributed/accumulated yet")

    @property
    def expected_messages(self) -> int:
        """Both schedules move p - 1 partials; they differ in rounds."""
        return self.num_locales - 1

    def tree_rounds(self) -> int:
        return math.ceil(math.log2(self.num_locales)) if self.num_locales > 1 else 0
