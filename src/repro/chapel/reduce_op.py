"""Chapel's ``ReduceScanOp`` reduction-class model (paper Figure 2).

Both built-in and user-defined reductions are subclasses of
:class:`ReduceScanOp` with the paper's three stages:

``accumulate``
    the local reduction function, applied per input element by each task;
``combine``
    the global reduction function, merging two task-local states;
``generate``
    the post-processing step producing the final result.

Instances are *stateful accumulators*; :meth:`ReduceScanOp.clone` produces a
fresh identity-state instance for a new task, mirroring how the Chapel
runtime instantiates one op per task.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.util.errors import ChapelError

__all__ = [
    "ReduceScanOp",
    "SumReduceScanOp",
    "ProductReduceScanOp",
    "MinReduceScanOp",
    "MaxReduceScanOp",
    "LogicalAndReduceScanOp",
    "LogicalOrReduceScanOp",
    "BitwiseAndReduceScanOp",
    "BitwiseOrReduceScanOp",
    "BitwiseXorReduceScanOp",
    "MinLocReduceScanOp",
    "MaxLocReduceScanOp",
    "REDUCE_OPS",
    "get_reduce_op",
    "register_reduce_op",
    "supports_retract",
]


class ReduceScanOp:
    """Base class for Chapel reduction/scan operations.

    Subclasses set :attr:`identity` (a value or zero-argument callable) and
    implement :meth:`accumulate` and :meth:`combine`; :meth:`generate`
    defaults to returning the accumulated state.
    """

    #: Identity element; a value or a zero-argument callable producing one.
    identity: Any = None

    def __init__(self) -> None:
        ident = self.identity
        self.value: Any = ident() if callable(ident) else ident

    def clone(self) -> "ReduceScanOp":
        """Return a fresh accumulator of the same operation (identity state)."""
        return type(self)()

    def snapshot(self) -> "ReduceScanOp":
        """Return a deep copy *including* the accumulated state.

        Used by the parallel scan, which needs per-position states it can
        later combine with split prefixes.
        """
        import copy

        return copy.deepcopy(self)

    def accumulate(self, x: Any) -> None:
        """Fold one input element into the local state."""
        raise NotImplementedError

    def accumulate_many(self, xs: Iterable[Any]) -> "ReduceScanOp":
        """Fold every element of an iterable; returns self for chaining."""
        for x in xs:
            self.accumulate(x)
        return self

    def combine(self, other: "ReduceScanOp") -> None:
        """Merge another task's local state into this one."""
        raise NotImplementedError

    def retract(self, x: Any) -> None:
        """Remove a previously accumulated element from the local state.

        Only *invertible* operations (sum, xor, ...) can implement this;
        the base raises so :func:`supports_retract` can tell the delta
        executor to fall back to per-group re-reduction instead.
        """
        raise NotImplementedError(
            f"{type(self).__name__} is not invertible: no retract()"
        )

    def generate(self) -> Any:
        """Produce the final result from the accumulated state."""
        return self.value

    def __repr__(self) -> str:
        return f"{type(self).__name__}(value={self.value!r})"


class SumReduceScanOp(ReduceScanOp):
    """``+ reduce`` — the paper's Figure 2 example."""

    identity = 0

    def accumulate(self, x: Any) -> None:
        self.value = self.value + x

    def combine(self, other: ReduceScanOp) -> None:
        self.value = self.value + other.value

    def retract(self, x: Any) -> None:
        self.value = self.value - x


class ProductReduceScanOp(ReduceScanOp):
    """``* reduce``."""

    identity = 1

    def accumulate(self, x: Any) -> None:
        self.value = self.value * x

    def combine(self, other: ReduceScanOp) -> None:
        self.value = self.value * other.value


class MinReduceScanOp(ReduceScanOp):
    """``min reduce``; identity is +infinity (None until first element).

    NaN poisons the result (like :func:`numpy.minimum`, and like the
    RO-level ``min`` groups): ``x != x`` catches NaN on either side of
    the comparison, so the fold is order-independent even on NaN data.
    """

    identity = None

    def accumulate(self, x: Any) -> None:
        if self.value is None or x < self.value or x != x:
            self.value = x

    def combine(self, other: ReduceScanOp) -> None:
        if other.value is not None:
            self.accumulate(other.value)


class MaxReduceScanOp(ReduceScanOp):
    """``max reduce``; identity is -infinity (None until first element).

    NaN poisons the result, mirroring :class:`MinReduceScanOp`.
    """

    identity = None

    def accumulate(self, x: Any) -> None:
        if self.value is None or x > self.value or x != x:
            self.value = x

    def combine(self, other: ReduceScanOp) -> None:
        if other.value is not None:
            self.accumulate(other.value)


class LogicalAndReduceScanOp(ReduceScanOp):
    """``&& reduce``."""

    identity = True

    def accumulate(self, x: Any) -> None:
        self.value = bool(self.value and x)

    def combine(self, other: ReduceScanOp) -> None:
        self.value = bool(self.value and other.value)


class LogicalOrReduceScanOp(ReduceScanOp):
    """``|| reduce``."""

    identity = False

    def accumulate(self, x: Any) -> None:
        self.value = bool(self.value or x)

    def combine(self, other: ReduceScanOp) -> None:
        self.value = bool(self.value or other.value)


class BitwiseAndReduceScanOp(ReduceScanOp):
    """``& reduce`` over 64-bit integers."""

    identity = -1  # all ones in two's complement

    def accumulate(self, x: Any) -> None:
        self.value = self.value & int(x)

    def combine(self, other: ReduceScanOp) -> None:
        self.value = self.value & other.value


class BitwiseOrReduceScanOp(ReduceScanOp):
    """``| reduce``."""

    identity = 0

    def accumulate(self, x: Any) -> None:
        self.value = self.value | int(x)

    def combine(self, other: ReduceScanOp) -> None:
        self.value = self.value | other.value


class BitwiseXorReduceScanOp(ReduceScanOp):
    """``^ reduce``."""

    identity = 0

    def accumulate(self, x: Any) -> None:
        self.value = self.value ^ int(x)

    def combine(self, other: ReduceScanOp) -> None:
        self.value = self.value ^ other.value

    def retract(self, x: Any) -> None:
        self.value = self.value ^ int(x)  # xor is its own inverse


class _LocReduceScanOp(ReduceScanOp):
    """Shared machinery for minloc/maxloc: elements are (value, index).

    Ties on the value break toward the *lowest index*, as in Chapel; this
    makes the op commutative (and hence safe under any combine order, which
    the middleware does not fix).
    """

    identity = None

    def _better(self, a: tuple[Any, Any], b: tuple[Any, Any]) -> bool:
        raise NotImplementedError

    def accumulate(self, x: Any) -> None:
        try:
            val, loc = x
        except (TypeError, ValueError):
            raise ChapelError(
                f"{type(self).__name__} expects (value, index) pairs, got {x!r}"
            )
        if self.value is None or self._better((val, loc), self.value):
            self.value = (val, loc)

    def combine(self, other: ReduceScanOp) -> None:
        if other.value is not None:
            self.accumulate(other.value)


class MinLocReduceScanOp(_LocReduceScanOp):
    """``minloc reduce zip(A, A.domain)`` — minimum value with its index."""

    def _better(self, a: tuple[Any, Any], b: tuple[Any, Any]) -> bool:
        return a[0] < b[0] or (a[0] == b[0] and a[1] < b[1])


class MaxLocReduceScanOp(_LocReduceScanOp):
    """``maxloc reduce zip(A, A.domain)``."""

    def _better(self, a: tuple[Any, Any], b: tuple[Any, Any]) -> bool:
        return a[0] > b[0] or (a[0] == b[0] and a[1] < b[1])


#: Registry mapping Chapel reduce-expression spellings to op classes.
REDUCE_OPS: dict[str, type[ReduceScanOp]] = {
    "+": SumReduceScanOp,
    "sum": SumReduceScanOp,
    "*": ProductReduceScanOp,
    "product": ProductReduceScanOp,
    "min": MinReduceScanOp,
    "max": MaxReduceScanOp,
    "&&": LogicalAndReduceScanOp,
    "||": LogicalOrReduceScanOp,
    "&": BitwiseAndReduceScanOp,
    "|": BitwiseOrReduceScanOp,
    "^": BitwiseXorReduceScanOp,
    "minloc": MinLocReduceScanOp,
    "maxloc": MaxLocReduceScanOp,
}


def get_reduce_op(op: str | type[ReduceScanOp] | ReduceScanOp) -> ReduceScanOp:
    """Resolve a reduce-op spelling/class/instance to a fresh accumulator."""
    if isinstance(op, ReduceScanOp):
        return op.clone()
    if isinstance(op, type) and issubclass(op, ReduceScanOp):
        return op()
    if isinstance(op, str):
        try:
            return REDUCE_OPS[op]()
        except KeyError:
            raise ChapelError(f"unknown reduction operation {op!r}")
    raise ChapelError(f"cannot resolve reduction op from {op!r}")


def _mutable_shared_identity(cls: type[ReduceScanOp]) -> str | None:
    """Describe why the identity aliases mutable state across clones."""
    ident = cls.__dict__.get("identity", cls.identity)
    if isinstance(ident, (list, dict, set, bytearray)):
        return f"identity is a shared mutable {type(ident).__name__}"
    if callable(ident):
        try:
            a, b = ident(), ident()
        except Exception:
            return None
        if a is b and isinstance(a, (list, dict, set, bytearray)):
            return "identity() returns the same mutable object on every call"
    return None


def supports_retract(op: "str | type[ReduceScanOp] | ReduceScanOp") -> bool:
    """Does the op implement an element inverse (``retract``)?

    True for invertible reductions (sum, xor, user ops registered with a
    verified ``inverse=`` hook); False for ops that can only re-reduce
    (min/max/minloc/maxloc and anything left at the base ``retract``).
    """
    if isinstance(op, ReduceScanOp):
        cls: type[ReduceScanOp] = type(op)
    elif isinstance(op, type) and issubclass(op, ReduceScanOp):
        cls = op
    elif isinstance(op, str):
        resolved = REDUCE_OPS.get(op)
        if resolved is None:
            return False
        cls = resolved
    else:
        return False
    return getattr(cls, "retract", None) is not ReduceScanOp.retract


def register_reduce_op(
    name: str,
    cls: type[ReduceScanOp],
    inverse: "Callable[[Any, Any], Any] | None" = None,
) -> None:
    """Register a user-defined reduction under a reduce-expression name.

    Rejects ops whose identity element is mutable state aliased across
    :meth:`~ReduceScanOp.clone` calls — every task would fold into the
    same accumulator, corrupting all parallel runs (diagnostic RS010).

    ``inverse`` optionally declares the op invertible: a callable
    ``inverse(state, x) -> state`` undoing one ``accumulate(x)``.  The
    hook is installed as the class's :meth:`~ReduceScanOp.retract` and
    *verified* with seeded ``op(inv(op(a, x), x)) == a`` trials before the
    registration is accepted; a hook that fails the trials is refused with
    diagnostic RS037 (never silently accepted), so the delta executor can
    trust every registered retract path.
    """
    if not (isinstance(cls, type) and issubclass(cls, ReduceScanOp)):
        raise ChapelError(f"{cls!r} is not a ReduceScanOp subclass")
    reason = _mutable_shared_identity(cls)
    if reason is not None:
        raise ChapelError(
            f"[RS010] cannot register {name!r}: {reason}; tasks cloned from "
            "it would share accumulator state. Use a zero-argument callable "
            "building a fresh value (e.g. identity = list)."
        )
    if inverse is not None:
        if not callable(inverse):
            raise ChapelError(
                f"[RS037] cannot register {name!r}: inverse= must be a "
                "callable (state, x) -> state"
            )

        def _retract(self: ReduceScanOp, x: Any, _inv=inverse) -> None:
            self.value = _inv(self.value, x)

        prior = cls.__dict__.get("retract")
        cls.retract = _retract  # type: ignore[method-assign]
        # deferred import: repro.analysis.algebra imports this module
        from repro.analysis.algebra import check_invertibility

        bad = [
            d
            for d in check_invertibility(cls, name=name)
            if d.code == "RS037"
        ]
        if bad:
            # do not leave a known-wrong hook installed
            if prior is None:
                del cls.retract
            else:
                cls.retract = prior  # type: ignore[method-assign]
            raise ChapelError(f"[RS037] cannot register {name!r}: {bad[0].message}")
    REDUCE_OPS[name] = cls
